#!/usr/bin/env python3
"""The paper's prober simulator (§5.1), as a standalone tool.

Probes a set of Shadowsocks implementations with random payloads of the
GFW's own lengths, prints the Figure-10-style reaction matrix, then
plays attacker (§5.2.2): from reactions alone, infers each server's
construction, IV/salt length, and compatible implementations.

Run:  python examples/probe_simulator.py
"""

from repro.analysis import render_table
from repro.probesim import (
    PROBE_LENGTH_SCHEDULE,
    build_random_probe_row,
    identify_server,
    summarize_transitions,
)

SERVERS = [
    ("ss-libev-3.1.3", "chacha20"),                 # stream, 8-byte IV
    ("ss-libev-3.1.3", "chacha20-ietf"),            # stream, 12-byte IV
    ("ss-libev-3.1.3", "aes-256-ctr"),              # stream, 16-byte IV
    ("ss-libev-3.1.3", "aes-128-gcm"),              # AEAD, 16-byte salt
    ("ss-libev-3.3.1", "aes-256-gcm"),              # AEAD, timeout-style
    ("outline-1.0.6", "chacha20-ietf-poly1305"),    # the FIN/ACK-at-50 quirk
    ("outline-1.0.7", "chacha20-ietf-poly1305"),    # hardened Outline
]


def main():
    print("Probing each server with random payloads of the GFW's lengths...\n")
    rows = []
    idents = []
    for profile, method in SERVERS:
        trials = 8 if "ctr" in method or "chacha20" == method.split("-")[0] else 4
        row = build_random_probe_row(profile, method, PROBE_LENGTH_SCHEDULE,
                                     trials=trials, seed=1)
        transitions = summarize_transitions(row)
        rows.append((profile, method,
                     "; ".join(f"{l}B:{lab}" for l, lab in transitions[:5])))
        idents.append((profile, method, identify_server(row)))

    print(render_table(["server", "method", "reaction transitions (first 5)"],
                       rows))

    print("\nAttacker's inference from the reactions alone:\n")
    inferred = []
    for profile, method, ident in idents:
        inferred.append((
            profile,
            ident.construction or "?",
            ident.nonce_len if ident.nonce_len is not None else "?",
            ident.cipher_hint or "-",
            ", ".join(ident.compatible_profiles[:3])
            + ("..." if len(ident.compatible_profiles) > 3 else ""),
        ))
    print(render_table(
        ["truth", "construction", "IV/salt", "cipher hint", "compatible with"],
        inferred))

    print("\nNote how the post-fix servers (libev >=3.3.1, Outline >=1.0.7)")
    print("yield only TIMEOUT and cannot be told apart — the consistent-")
    print("reaction defense of §7.2 at work.")


if __name__ == "__main__":
    main()
