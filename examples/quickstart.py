#!/usr/bin/env python3
"""Quickstart: a Shadowsocks tunnel under the eye of the Great Firewall.

Builds a three-host world — a client in Beijing, a Shadowsocks server
abroad, and a public website — with the GFW middlebox on the border
path.  The client browses through the tunnel; the GFW passively flags
connections and sends active probes to the server, which we then list.

Run:  python examples/quickstart.py
"""

import random

from repro.experiments import build_world
from repro.gfw import DetectorConfig
from repro.net import lookup_asn
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
from repro.workloads import CurlDriver


def main():
    # A world whose GFW flags aggressively, so a short demo draws probes.
    world = build_world(
        seed=7,
        detector_config=DetectorConfig(base_rate=0.9),
        websites=["www.wikipedia.org", "example.com", "gfw.report"],
    )

    server_host = world.add_server("ss-server", region="uk")
    client_host = world.add_client("laptop-in-beijing")

    ShadowsocksServer(server_host, 8388, "my-password",
                      "chacha20-ietf-poly1305", "outline-1.0.7")
    client = ShadowsocksClient(client_host, server_host.ip, 8388,
                               "my-password", "chacha20-ietf-poly1305")

    print(f"Shadowsocks server at {server_host.ip}:8388 (OutlineVPN v1.0.7)")
    print(f"client at {client_host.ip} (inside China)\n")

    # Fetch one page through the tunnel and show the reply.
    session = client.open("example.com", 80, b"GET / HTTP/1.1\r\n\r\n")
    world.sim.run(until=10)
    print(f"fetched through tunnel: {bytes(session.reply)[:40]!r}...\n")

    # Keep browsing for a (simulated) hour; the GFW watches the border.
    driver = CurlDriver(client, rng=random.Random(7))
    driver.run_schedule(count=40, interval=60.0)
    world.sim.run(until=5 * 3600)

    print(f"connections made: 41")
    print(f"connections the GFW flagged: {world.gfw.flagged_connections}")
    print(f"active probes sent: {len(world.gfw.probe_log)}\n")

    print("probe log (first 12):")
    print(f"{'time':>9}  {'type':<4} {'len':>4}  {'from':<16} {'AS':<7} reaction")
    for record in world.gfw.probe_log[:12]:
        asn = lookup_asn(record.src_ip)
        print(f"{record.time_sent:>8.1f}s  {record.probe_type:<4}"
              f" {len(record.probe.payload):>4}  {record.src_ip:<16}"
              f" AS{asn:<5} {record.reaction}")

    replays = [r for r in world.gfw.probe_log if r.probe.is_replay]
    if replays:
        delays = sorted(r.delay for r in replays if r.delay is not None)
        print(f"\nreplay delays: min {delays[0]:.2f}s,"
              f" median {delays[len(delays) // 2]:.0f}s,"
              f" max {delays[-1] / 3600:.1f}h")


if __name__ == "__main__":
    main()
