#!/usr/bin/env python3
"""Blocking during a politically sensitive period (§6).

Deploys a fleet of vantage-point servers running different Shadowsocks
implementations, schedules a sensitive window during which the GFW's
human operators act on the confirmed-server list, and reports who got
probed, who got blocked (by port or by IP), and when the blocks lapse.

Run:  python examples/blocking_timeline.py
"""

from repro.experiments import BlockingExperimentConfig, run_blocking_experiment


def main():
    config = BlockingExperimentConfig(
        seed=5,
        duration=6 * 24 * 3600.0,
        sensitive_periods=((2 * 24 * 3600.0, 3 * 24 * 3600.0),),
        block_probability=0.5,
    )
    print("6 simulated days; day 3 is politically sensitive...\n")
    result = run_blocking_experiment(config)

    print(f"{'server':<16} {'implementation':<18} {'probes':>6}  status")
    blocked_ips = {e.ip: e for e in result.block_events}
    for ip, profile in result.server_profiles.items():
        probes = result.probes_per_server.get(ip, 0)
        if ip in blocked_ips:
            event = blocked_ips[ip]
            how = "by IP" if event.port is None else f"port {event.port}"
            status = (f"BLOCKED {how} at day {event.time / 86400:.1f}, "
                      f"lapses day {event.unblock_time / 86400:.1f}")
        else:
            status = "probed but never blocked"
        print(f"{ip:<16} {profile:<18} {probes:>6}  {status}")

    print(f"\nblocked fraction: {result.blocked_fraction:.0%}"
          " (the paper saw 3 of 63 vantage points)")
    print("Only the replay-vulnerable, RST-on-error implementations")
    print("(ShadowsocksR, Shadowsocks-python) accumulate conclusive evidence;")
    print("timeout-style servers are probed intensively yet stay up.")
    print("Unblocking is silent: no recheck probes precede it (§6).")


if __name__ == "__main__":
    main()
