#!/usr/bin/env python3
"""Deploying brdgrd to stop GFW probing (§7.1, Figure 11).

Runs a Shadowsocks server under constant client load, lets the GFW probe
it, then enables brdgrd mid-experiment and shows probing collapse — and
resume after brdgrd is disabled again.

Run:  python examples/brdgrd_defense.py
"""

from repro.experiments import BrdgrdExperimentConfig, run_brdgrd_experiment


def main():
    config = BrdgrdExperimentConfig(
        seed=3,
        duration=36 * 3600.0,
        brdgrd_windows=((12 * 3600.0, 24 * 3600.0),),
        burst_size=4,
        burst_interval=600.0,
    )
    print("Running 36 simulated hours: brdgrd enabled for hours 12-24...\n")
    result = run_brdgrd_experiment(config)

    print("prober SYNs per hour at the guarded server:")
    for hour, count in enumerate(result.hourly_counts()):
        state = "BRDGRD ON " if 12 <= hour < 24 else "          "
        print(f"  h{hour:>2} {state} {count:>3} {'#' * min(count, 50)}")

    active, inactive = result.window_rates()
    print(f"\nprobes/hour while brdgrd active:   {active:.2f}")
    print(f"probes/hour while brdgrd inactive: {inactive:.2f}")
    print(f"control server (no brdgrd) total:  {len(result.control_syn_times)}")
    print("\nWhy it works: the GFW flags connections by the length of the")
    print("first data packet (160-700 bytes); brdgrd clamps the TCP window")
    print("in the server's SYN/ACK, so the client's first segment carries")
    print("only a few dozen bytes and never matches the classifier.")


if __name__ == "__main__":
    main()
