#!/usr/bin/env python3
"""The Shadowsocks UDP relay: tunnelling DNS-style traffic.

Not part of the paper's measurements (the GFW study is TCP-only), but
part of the protocol a deployed server speaks.  Shows per-datagram
encryption, NAT-style associations, and UDP's key difference for
probers: invalid packets are dropped *silently* — there is no RST or
FIN/ACK reaction surface to fingerprint.

Run:  python examples/udp_tunnel.py
"""

import random

from repro.net import Host, Network, Simulator
from repro.shadowsocks import UdpShadowsocksClient, UdpShadowsocksServer


def main():
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, net, "198.51.100.70", "ss-server")
    client_host = Host(sim, net, "192.0.2.70", "laptop")
    resolver_host = Host(sim, net, "198.18.0.70", "resolver")
    net.register_name("dns.example", resolver_host.ip)

    # A toy DNS responder.
    resolver = resolver_host.udp_bind(53)
    resolver.on_datagram = lambda dgram: resolver.send(
        dgram.src_ip, dgram.src_port,
        b"A 93.184.216.34 for " + dgram.payload)

    server = UdpShadowsocksServer(server_host, 8388, "pw",
                                  "chacha20-ietf-poly1305")
    client = UdpShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                                  "chacha20-ietf-poly1305")

    queries = [b"example.com?", b"wikipedia.org?", b"gfw.report?"]
    for i, query in enumerate(queries):
        sim.schedule(i * 0.5, client.send, "dns.example", 53, query)
    sim.run(until=5)

    print("tunnelled UDP exchanges:")
    for host, port, payload in client.replies:
        print(f"  from {host}:{port}  {payload.decode('latin-1')}")
    print(f"\nserver associations: {len(server.associations)} "
          "(one relay port per client)")

    # A prober's view: garbage datagrams vanish without a trace.
    prober = client_host.udp_bind()
    reactions = []
    prober.on_datagram = lambda dgram: reactions.append(dgram)
    prober.send(server_host.ip, 8388, bytes(random.Random(0).randrange(256)
                                            for _ in range(221)))
    sim.run(until=10)
    print(f"\nprobe of 221 random bytes -> {len(reactions)} reactions "
          "(UDP gives the censor nothing to fingerprint)")
    print(f"server silently dropped packets: {server.decode_failures}")


if __name__ == "__main__":
    main()
