#!/usr/bin/env python3
"""Why stream ciphers had to die (§2.1, §7.2).

Demonstrates the two historical attacks against the Shadowsocks stream
construction that the paper recounts, end to end:

1. BreakWa11's 2015 ATYP scan — distinguish a Shadowsocks server (and
   its ATYP mask) by flipping one byte of a recorded connection;
2. Zhiniang Peng's 2020 redirect oracle — recover the *plaintext* of a
   recorded connection, without the password, by making the server
   deliver it to the attacker.

Then shows the mitigations: the Bloom replay filter blunts both, and
AEAD ciphers eliminate the malleability they rely on.

Run:  python examples/decrypt_recorded_traffic.py
"""

from repro.probesim import ProberSimulator, atyp_scan, redirect_attack

VICTIM_REQUEST = (b"GET /account HTTP/1.1\r\nHost: target.example\r\n"
                  b"Cookie: sessionid=hunter2; csrftoken=swordfish\r\n\r\n")


def main():
    print("A victim browses through a ShadowsocksR server (aes-256-ctr,")
    print("stream construction, no replay filter); the wire is recorded.\n")
    sim = ProberSimulator("ssr", "aes-256-ctr", seed=99)
    recorded = sim.record_legitimate_payload(VICTIM_REQUEST,
                                             target=("target.example", 80))
    print(f"recorded ciphertext: {len(recorded)} bytes, "
          f"IV {recorded[:16].hex()}\n")

    print("--- BreakWa11 ATYP scan (1 byte flipped, 96 variants) ---")
    scan = atyp_scan(sim, recorded, deltas=list(range(1, 97)))
    print(f"RST fraction: {scan.rst_fraction:.2f} -> "
          f"{'masked ATYP (13/16)' if scan.infers_mask() else 'unmasked'}; "
          "this is a Shadowsocks stream server.\n")

    print("--- Peng redirect oracle ---")
    result = redirect_attack(sim, recorded, "target.example", 80,
                             VICTIM_REQUEST)
    if result.succeeded:
        print("the server decrypted the recording and sent it to us:")
        for line in result.recovered_plaintext.split(b"\r\n"):
            if line:
                print(f"    {line.decode('latin-1')}")
    print()

    print("--- the same oracle against Shadowsocks-libev (Bloom filter) ---")
    sim2 = ProberSimulator("ss-libev-3.1.3", "aes-256-ctr", seed=100)
    recorded2 = sim2.record_legitimate_payload(VICTIM_REQUEST,
                                               target=("target.example", 80))
    result2 = redirect_attack(sim2, recorded2, "target.example", 80,
                              VICTIM_REQUEST)
    print(f"outcome: {result2.reaction} — the reused IV is caught by the "
          "replay filter; nothing is recovered.\n")

    print("--- and against AEAD ciphers ---")
    try:
        redirect_attack(ProberSimulator("ss-libev-3.1.3", "aes-256-gcm"),
                        b"x" * 120, "target.example", 80, VICTIM_REQUEST)
    except ValueError as exc:
        print(f"not even applicable: {exc}")
    print("\nHence §7.2: use AEAD ciphers exclusively, and deprecate")
    print("unauthenticated constructions entirely.")


if __name__ == "__main__":
    main()
