#!/usr/bin/env python3
"""Fingerprinting the probing infrastructure (§3.3-3.4).

Runs the §3.1 experiment, then plays measurement researcher: classifies
the probes seen at one server's capture, recovers the shared TSval
processes behind the thousands of source addresses, summarizes source
ports / TTLs / ASes, and exports the probe packets to a real .pcap you
can open in Wireshark.

Run:  python examples/fingerprint_probers.py
"""

import collections
import tempfile

from repro.analysis import (
    cluster_tsval_sequences,
    extract_probes,
    ip_id_statistics,
    port_statistics,
    render_table,
    ttl_statistics,
)
from repro.experiments import ShadowsocksExperimentConfig, run_shadowsocks_experiment
from repro.net import export_capture, lookup_asn


def main():
    print("Running the Shadowsocks experiment (scaled to ~7 days)...\n")
    result = run_shadowsocks_experiment(ShadowsocksExperimentConfig(
        connections_per_pair=300, duration=7 * 24 * 3600.0, seed=12))
    log = result.probe_log
    print(f"{len(log)} probes from {len(set(result.prober_ips))} source IPs\n")

    # 1. Probe classification at one server's capture.
    name = "outline0-server"
    probes = result.server_probes[name]
    counts = collections.Counter(p.probe_type for p in probes)
    print(f"probe types observed at {name} (classified from its capture):")
    for probe_type, n in counts.most_common():
        print(f"  {probe_type:<4} {n}")

    # 2. Shared TSval processes (Figure 6).
    clusters = cluster_tsval_sequences([(r.time_sent, r.tsval) for r in log])
    big = [c for c in clusters if c.size >= 5]
    print(f"\nTSval processes recovered: {len(big)} "
          f"(vs {len(set(result.prober_ips))} source IPs)")
    for i, cluster in enumerate(big):
        print(f"  process {i + 1}: {cluster.size} probes, "
              f"slope {cluster.measured_rate():.1f} Hz")

    # 3. Port / TTL / IP-ID fingerprints.
    ports = port_statistics([r.src_port for r in log])
    server_host = result.world.hosts[name]
    ttls = ttl_statistics([
        rec.segment.ttl for rec in server_host.capture.syns_received()
        if lookup_asn(rec.segment.src_ip) is not None
    ])
    ip_ids = ip_id_statistics([
        rec.segment.ip_id for rec in server_host.capture.received()
        if lookup_asn(rec.segment.src_ip) is not None
    ])
    print(f"\nsource ports: {ports['linux_range_share']:.0%} in 32768-60999, "
          f"min {ports['min']}")
    print(f"SYN TTLs at server: {ttls['min']}-{ttls['max']} (paper: 46-50)")
    print(f"IP IDs: {ip_ids['distinct_fraction']:.0%} distinct, "
          f"lag-1 autocorrelation {ip_ids['lag1_autocorr']:.3f}")

    # 4. AS attribution.
    per_as = collections.Counter(lookup_asn(ip) for ip in set(result.prober_ips))
    rows = [(f"AS{asn}", n) for asn, n in per_as.most_common(5)]
    print("\nprober IPs per AS (top 5):")
    print(render_table(["AS", "unique IPs"], rows))

    # 5. Export the probe traffic for Wireshark.
    with tempfile.NamedTemporaryFile(suffix=".pcap", delete=False) as f:
        path = f.name
    n = export_capture(path, server_host.capture, received_only=True)
    print(f"\nwrote {n} packets to {path} (open with wireshark/tcpdump)")


if __name__ == "__main__":
    main()
