"""VMess protocol model — the paper's §9 future work.

Implements the legacy VMess handshake and the 2020-disclosed
active-probing weaknesses (replay within the auth window, the
unauthenticated header-length oracle), plus the hardened v4.23 behaviour,
so the GFW model's probing machinery can be evaluated against a second
fully-encrypted protocol.
"""

from .client import VmessClient, VmessSession
from .protocol import (
    AUTH_WINDOW,
    VMESS_MAGIC,
    VmessRequest,
    auth_for,
    build_request,
    command_iv,
    command_key,
    fnv1a32,
    parse_command,
)
from .server import VMESS_PROFILES, VmessServer

__all__ = [
    "AUTH_WINDOW",
    "VMESS_MAGIC",
    "VMESS_PROFILES",
    "VmessClient",
    "VmessRequest",
    "VmessServer",
    "VmessSession",
    "auth_for",
    "build_request",
    "command_iv",
    "command_key",
    "fnv1a32",
    "parse_command",
]
