"""VMess client: opens tunnelled connections to a VMess server."""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..crypto.modes import CFBMode
from .protocol import build_request

__all__ = ["VmessClient", "VmessSession"]


class VmessClient:
    """Factory for VMess connections to one server."""

    def __init__(self, host, server_ip: str, server_port: int, user_id: bytes,
                 *, rng: Optional[random.Random] = None):
        if len(user_id) != 16:
            raise ValueError("user_id must be a 16-byte UUID")
        self.host = host
        self.server_ip = server_ip
        self.server_port = server_port
        self.user_id = user_id
        self.rng = rng or random.Random(0x3E55C)

    def open(self, target_host: str, target_port: int, payload: bytes = b"",
             on_reply: Optional[Callable[[bytes], None]] = None) -> "VmessSession":
        return VmessSession(self, target_host, target_port, payload, on_reply)


class VmessSession:
    def __init__(self, client: VmessClient, target_host: str, target_port: int,
                 payload: bytes, on_reply: Optional[Callable[[bytes], None]]):
        self.client = client
        self.reply = bytearray()
        self.on_reply = on_reply or (lambda data: None)
        self.closed = False
        self.reset = False
        self.request_head: bytes = b""

        self.conn = client.host.connect(client.server_ip, client.server_port)

        def on_connected():
            timestamp = int(client.host.sim.now)
            head, request = build_request(
                client.user_id, timestamp, target_host, target_port,
                rng=client.rng)
            self.request_head = head
            self._response_cipher = CFBMode(request.response_key,
                                            request.response_iv, encrypt=False)
            self._body_cipher = CFBMode(request.response_key,
                                        request.response_iv, encrypt=True)
            self.conn.send(head + self._body_cipher.encrypt(payload))

        def on_data(data: bytes):
            plain = self._response_cipher.decrypt(data)
            self.reply.extend(plain)
            self.on_reply(plain)

        def on_data_run(chunks):
            # CFB decryption is position-keyed: decrypting the run's
            # concatenation equals per-segment decrypts back to back.
            self.reply.extend(self._response_cipher.decrypt(b"".join(chunks)))

        def on_fin():
            self.closed = True
            self.conn.close()

        def on_reset():
            self.closed = True
            self.reset = True

        self.conn.on_connected = on_connected
        self.conn.on_data = on_data
        if on_reply is None:
            # No reply observer: decrypt whole in-order runs in one pass
            # (see ShadowsocksClient.ClientSession for the contract).
            self.conn.on_data_run = on_data_run
        self.conn.on_remote_fin = on_fin
        self.conn.on_reset = on_reset

    def send(self, data: bytes) -> None:
        self.conn.send(self._body_cipher.encrypt(data))

    def close(self) -> None:
        self.conn.close()
