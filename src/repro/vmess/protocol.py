"""VMess-style protocol (the paper's §9 future work).

VMess (V2Ray's native protocol) is, like Shadowsocks, a fully encrypted
proxy protocol — which is exactly why the paper expects the GFW's
random-data trigger to catch it too.  This module implements the legacy
(pre-AEAD) header format closely enough to reproduce the two
vulnerability classes disclosed in 2020 (V2Ray issues #2523 and the
"Summary on Recently Discovered V2Ray Weaknesses" the paper cites):

* **replay within the timestamp window** — the 16-byte auth is
  HMAC-MD5(user-id, timestamp) and valid for ±2 minutes, so recorded
  handshakes can be replayed inside that window;
* **unauthenticated header-length oracle** — the command section is
  encrypted with AES-CFB (malleable, no MAC before v4.23.4), and the
  padding-length nibble is *decrypted and acted on before any integrity
  check*, so an attacker can measure how many bytes the server consumes
  before it gives up.

Wire format (client -> server)::

    [16-byte auth = HMAC-MD5(uuid, 8-byte BE unix time)]
    [AES-128-CFB encrypted command section:]
        [1  version]
        [16 response key][16 response IV][1 response auth byte]
        [1  options][1 padding_len<<4 | security][1 reserved][1 command]
        [2  port][1 addr type][address...]
        [padding_len bytes of padding]
        [4  FNV1a-32 hash of the section so far]

The command key is MD5(uuid || magic); the command IV is
MD5(ts || ts || ts || ts).
"""

from __future__ import annotations

import hashlib
import hmac
import random
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..crypto.modes import CFBMode
from ..randutil import byte_draws

__all__ = ["VMESS_MAGIC", "auth_for", "command_key", "command_iv",
           "fnv1a32", "VmessRequest", "build_request", "parse_command"]

VMESS_MAGIC = b"c48619fe-8f02-49e0-b9e9-edf763e17e21"
AUTH_WINDOW = 120.0  # seconds of clock skew the server tolerates

ATYP_IPV4 = 0x01
ATYP_HOSTNAME = 0x02  # VMess numbering differs from SOCKS


def auth_for(user_id: bytes, timestamp: int) -> bytes:
    """The 16-byte authentication header."""
    return hmac.new(user_id, struct.pack(">Q", timestamp), hashlib.md5).digest()


def command_key(user_id: bytes) -> bytes:
    return hashlib.md5(user_id + VMESS_MAGIC).digest()


def command_iv(timestamp: int) -> bytes:
    ts = struct.pack(">Q", timestamp)
    return hashlib.md5(ts * 4).digest()


def fnv1a32(data: bytes) -> int:
    value = 0x811C9DC5
    for byte in data:
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value


@dataclass
class VmessRequest:
    """Decoded command section."""

    version: int
    response_key: bytes
    response_iv: bytes
    response_auth: int
    options: int
    padding_len: int
    security: int
    command: int
    port: int
    atyp: int
    host: str


def build_request(
    user_id: bytes,
    timestamp: int,
    host: str,
    port: int,
    rng: Optional[random.Random] = None,
    padding_len: Optional[int] = None,
) -> Tuple[bytes, VmessRequest]:
    """Encode the full request head (auth + encrypted command section)."""
    rng = rng or random.Random()
    if padding_len is None:
        padding_len = rng.randint(0, 15)
    if not 0 <= padding_len <= 15:
        raise ValueError("padding_len must fit in a nibble")
    response_key = byte_draws(rng, 16)
    response_iv = byte_draws(rng, 16)
    response_auth = rng.randrange(256)

    if _is_ipv4(host):
        atyp, address = ATYP_IPV4, bytes(int(p) for p in host.split("."))
    else:
        name = host.encode("ascii")
        atyp, address = ATYP_HOSTNAME, bytes([len(name)]) + name

    section = bytearray()
    section.append(1)  # version
    section += response_key + response_iv
    section.append(response_auth)
    section.append(0x01)  # options: standard stream
    security = 0x03  # "aes-128-cfb" legacy marker
    section.append((padding_len << 4) | security)
    section.append(0)  # reserved
    section.append(0x01)  # command: TCP
    section += struct.pack(">H", port)
    section.append(atyp)
    section += address
    section += byte_draws(rng, padding_len)
    section += struct.pack(">I", fnv1a32(bytes(section)))

    cipher = CFBMode(command_key(user_id), command_iv(timestamp), encrypt=True)
    request = VmessRequest(
        version=1, response_key=response_key, response_iv=response_iv,
        response_auth=response_auth, options=0x01, padding_len=padding_len,
        security=security, command=0x01, port=port, atyp=atyp, host=host,
    )
    return auth_for(user_id, timestamp) + cipher.encrypt(bytes(section)), request


# Fixed-size prefix of the command section, through the address-type byte.
_FIXED_PREFIX = 1 + 16 + 16 + 1 + 1 + 1 + 1 + 1 + 2 + 1


def parse_command(user_id: bytes, timestamp: int, ciphertext: bytes
                  ) -> Tuple[str, Optional[VmessRequest], int]:
    """Incrementally parse an encrypted command section.

    Returns (status, request, bytes_needed): status is "ok", "need_more",
    or "bad_hash".  ``bytes_needed`` is the minimum total section length
    implied so far — the quantity the length-oracle attack measures.
    """
    cipher = CFBMode(command_key(user_id), command_iv(timestamp), encrypt=False)
    plain = cipher.decrypt(ciphertext)
    if len(plain) < _FIXED_PREFIX:
        return "need_more", None, _FIXED_PREFIX
    # Section layout: 0 version | 1..32 resp key+IV | 33 resp auth |
    # 34 options | 35 padding<<4|security | 36 reserved | 37 command |
    # 38..39 port | 40 atyp | 41.. address
    padding_len = plain[35] >> 4
    atyp = plain[40]
    if atyp == ATYP_IPV4:
        addr_len = 4
    elif atyp == ATYP_HOSTNAME:
        if len(plain) < _FIXED_PREFIX + 1:
            return "need_more", None, _FIXED_PREFIX + 1
        addr_len = 1 + plain[41]
    else:
        # Unknown address type: the legacy server still trusts the padding
        # nibble and waits for the implied total before checking the hash.
        addr_len = 0
    total = _FIXED_PREFIX + addr_len + padding_len + 4
    if len(plain) < total:
        return "need_more", None, total
    body, received_hash = plain[: total - 4], struct.unpack(
        ">I", plain[total - 4 : total])[0]
    if fnv1a32(body) != received_hash:
        return "bad_hash", None, total
    if atyp == ATYP_IPV4:
        host = ".".join(str(b) for b in plain[41:45])
    elif atyp == ATYP_HOSTNAME:
        host = plain[42 : 42 + plain[41]].decode("latin-1")
    else:
        host = ""
    request = VmessRequest(
        version=plain[0],
        response_key=bytes(plain[1:17]),
        response_iv=bytes(plain[17:33]),
        response_auth=plain[33],
        options=plain[34],
        padding_len=padding_len,
        security=plain[35] & 0x0F,
        command=plain[37],
        port=struct.unpack(">H", plain[38:40])[0],
        atyp=atyp,
        host=host,
    )
    return "ok", request, total


def _is_ipv4(host: str) -> bool:
    parts = host.split(".")
    return len(parts) == 4 and all(p.isdigit() and 0 <= int(p) <= 255 for p in parts)
