"""VMess server models: legacy (probe-able) and hardened.

Two behaviour profiles, mirroring the 2020 disclosures:

* ``v2ray-legacy`` — validates the 16-byte auth against every recent
  timestamp (±2 min), keeps **no** replay cache, and acts on the
  unauthenticated padding-length nibble: after exactly the implied
  number of bytes it either proceeds (hash ok) or drops the connection
  (hash bad).  Both the replay and the byte-counting oracle of V2Ray
  issue #2523 work against it.
* ``v2ray-4.23`` — adds the replay cache (auth seen before -> drain) and
  reads forever on any error, killing the oracle.

The server proxies like the Shadowsocks engine: target spec -> outbound
connection -> pipe; replies are encrypted with the response key/IV from
the request (modeled as an opaque CFB stream).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from ..crypto.modes import CFBMode
from .protocol import AUTH_WINDOW, ATYP_HOSTNAME, ATYP_IPV4, auth_for, parse_command

__all__ = ["VmessServer", "VMESS_PROFILES"]

VMESS_PROFILES = ("v2ray-legacy", "v2ray-4.23")


class VmessServer:
    """A VMess server bound to one host:port."""

    def __init__(self, host, port: int, user_id: bytes,
                 profile: str = "v2ray-legacy", *,
                 rng: Optional[random.Random] = None,
                 connect_timeout: float = 6.0):
        if profile not in VMESS_PROFILES:
            raise ValueError(f"unknown VMess profile {profile!r}")
        if len(user_id) != 16:
            raise ValueError("user_id must be a 16-byte UUID")
        self.host = host
        self.port = port
        self.user_id = user_id
        self.profile = profile
        self.rng = rng or random.Random(0x3E55)
        self.connect_timeout = connect_timeout
        self.replay_cache: Set[bytes] = set()
        self.sessions = []
        host.listen(port, self._accept)

    @property
    def hardened(self) -> bool:
        return self.profile == "v2ray-4.23"

    def _accept(self, conn) -> None:
        self.sessions.append(_VmessSession(self, conn))

    def auth_timestamp(self, auth: bytes, now: float) -> Optional[int]:
        """Which recent timestamp (if any) this auth header matches."""
        center = int(now)
        for delta in range(int(AUTH_WINDOW) + 1):
            for ts in (center - delta, center + delta):
                if ts >= 0 and auth_for(self.user_id, ts) == auth:
                    return ts
        return None


class _VmessSession:
    def __init__(self, server: VmessServer, conn):
        self.server = server
        self.conn = conn
        self.buffer = bytearray()
        self.state = "auth"
        self.timestamp: Optional[int] = None
        self.remote = None
        self.request = None
        self._response_cipher = None
        conn.on_data = self._on_data
        conn.on_remote_fin = self._client_fin
        conn.on_reset = self._client_reset
        # Legacy servers time out idle connections; hardened ones too, but
        # only ever with a FIN after a long idle period.
        self._idle = server.host.sim.schedule(300.0, self._idle_close)

    # ----------------------------------------------------------- lifecycle

    def _idle_close(self) -> None:
        if self.state not in ("done",):
            self.state = "done"
            self.conn.close()

    def _client_fin(self) -> None:
        if self.remote is not None and self.remote.is_open:
            self.remote.close()
        self.state = "done"
        self.conn.close()
        self._idle.cancel()

    def _client_reset(self) -> None:
        self.state = "done"
        self._idle.cancel()
        if self.remote is not None and self.remote.is_open:
            self.remote.abort()

    def _drop(self) -> None:
        """Terminate on error: legacy closes immediately (observable!),
        hardened drains forever."""
        if self.server.hardened:
            self.state = "drain"
        else:
            self.state = "done"
            self._idle.cancel()
            self.conn.abort()

    # ----------------------------------------------------------- data path

    def _on_data(self, data: bytes) -> None:
        if self.state in ("done", "drain"):
            return
        if self.state == "proxy":
            if self.remote is not None:
                self.remote.send(self._body_decipher.decrypt(data))
            return
        self.buffer.extend(data)
        if self.state == "auth":
            if len(self.buffer) < 16:
                return
            auth = bytes(self.buffer[:16])
            now = self.server.host.sim.now
            self.timestamp = self.server.auth_timestamp(auth, now)
            if self.timestamp is None:
                self._drop()
                return
            if self.server.hardened:
                if auth in self.server.replay_cache:
                    self.state = "drain"
                    return
                self.server.replay_cache.add(auth)
            del self.buffer[:16]
            self.state = "command"
        if self.state == "command":
            status, request, needed = parse_command(
                self.server.user_id, self.timestamp, bytes(self.buffer))
            if status == "need_more":
                return
            if status == "bad_hash":
                self._drop()
                return
            self.request = request
            del self.buffer[:needed]
            self._connect(request)

    def _connect(self, request) -> None:
        self.state = "connecting"
        network = self.server.host.network
        if request.atyp == ATYP_HOSTNAME:
            ip = network.resolve(request.host)
        elif request.atyp == ATYP_IPV4:
            ip = request.host
        else:
            ip = None
        if ip is None:
            self.server.host.sim.schedule(0.05, self._connect_failed)
            return
        try:
            self.remote = self.server.host.connect(ip, request.port)
        except ValueError:
            self.server.host.sim.schedule(0.0, self._connect_failed)
            return
        self.remote.on_connected = self._connected
        self.remote.on_reset = self._connect_failed
        self._connect_timer = self.server.host.sim.schedule(
            self.server.connect_timeout, self._connect_failed)

    def _connect_failed(self) -> None:
        if self.state != "connecting":
            return
        self.state = "done"
        self._idle.cancel()
        self.conn.close()

    def _connected(self) -> None:
        self._connect_timer.cancel()
        self.state = "proxy"
        # Body ciphers: one per direction, keyed from the request header
        # (a simplification of VMess's request/response body keys — the
        # wire observables, lengths and entropy, are identical).
        self._response_cipher = CFBMode(self.request.response_key,
                                        self.request.response_iv, encrypt=True)
        self._body_decipher = CFBMode(self.request.response_key,
                                      self.request.response_iv, encrypt=False)
        self.remote.on_data = lambda data: self.conn.send(
            self._response_cipher.encrypt(data))
        self.remote.on_remote_fin = self._client_fin
        if self.buffer:
            self.remote.send(self._body_decipher.decrypt(bytes(self.buffer)))
            self.buffer.clear()
