"""Performance harness: benchmarks, baselines, and regression gates.

``python -m repro bench`` drives this package.  It measures six layers
of the reproduction — cipher throughput, simulator event throughput,
streaming-analysis throughput, detector-stage throughput, end-to-end
tunnel packet throughput, and flow-sharded scale-1m throughput at
several worker counts — and writes machine-readable
``BENCH_crypto.json`` / ``BENCH_sim.json`` / ``BENCH_analysis.json`` /
``BENCH_detector.json`` / ``BENCH_e2e.json`` / ``BENCH_shard.json``
files so the performance trajectory of the codebase is recorded
alongside its correctness.  ``compare_entries`` gates a fresh run against a committed
baseline and is what CI's bench-smoke job calls.
"""

from .bench import (
    BenchEntry,
    append_history,
    bench_analysis,
    bench_crypto,
    bench_detector,
    bench_e2e,
    bench_shard,
    bench_sim,
    git_rev,
    host_fingerprint,
    write_entries,
)
from .compare import compare_entries, format_comparison, load_entries

__all__ = [
    "BenchEntry",
    "append_history",
    "bench_analysis",
    "bench_crypto",
    "bench_detector",
    "bench_e2e",
    "bench_shard",
    "bench_sim",
    "compare_entries",
    "format_comparison",
    "git_rev",
    "host_fingerprint",
    "load_entries",
    "write_entries",
]
