"""Baseline comparison and regression gating for bench results.

All bench values are higher-is-better, so the gate is uniform: an entry
regresses when ``current < tolerance * baseline``.  Entries present on
only one side are reported but never fail the gate (new benchmarks must
not break CI retroactively, and retired ones must not pin the baseline
forever).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from .bench import BenchEntry

__all__ = ["Comparison", "compare_entries", "format_comparison", "load_entries"]


def load_entries(path) -> List[BenchEntry]:
    """Load a BENCH_*.json array (or a concatenation of several)."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, list):
        raise ValueError(f"{path}: expected a JSON array of bench entries")
    entries = []
    for item in doc:
        entries.append(BenchEntry(
            name=item["name"], unit=item["unit"], value=float(item["value"]),
            params=item.get("params", {}),
            host_fingerprint=item.get("host_fingerprint", ""),
            git_rev=item.get("git_rev", ""),
        ))
    return entries


@dataclass
class Comparison:
    """Outcome of gating ``current`` entries against a baseline."""

    rows: List[dict]
    regressions: List[str]
    tolerance: float

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_entries(current: List[BenchEntry], baseline: List[BenchEntry],
                    tolerance: float = 0.8) -> Comparison:
    """Gate ``current`` against ``baseline``: fail below tolerance×baseline."""
    if not 0 < tolerance:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    base_by_name: Dict[str, BenchEntry] = {e.name: e for e in baseline}
    cur_names = {e.name for e in current}
    rows = []
    regressions = []
    for entry in current:
        base = base_by_name.get(entry.name)
        ratio: Optional[float] = None
        status = "new"
        if base is not None:
            ratio = entry.value / base.value if base.value else float("inf")
            if ratio < tolerance:
                status = "REGRESSION"
                regressions.append(entry.name)
            else:
                status = "ok"
        rows.append({
            "name": entry.name,
            "unit": entry.unit,
            "current": entry.value,
            "baseline": base.value if base is not None else None,
            "ratio": ratio,
            "status": status,
        })
    for name in sorted(base_by_name.keys() - cur_names):
        base = base_by_name[name]
        rows.append({
            "name": name, "unit": base.unit, "current": None,
            "baseline": base.value, "ratio": None, "status": "missing",
        })
    return Comparison(rows=rows, regressions=regressions, tolerance=tolerance)


def format_comparison(comparison: Comparison) -> str:
    """Human-readable table of a comparison, one row per entry."""
    lines = [f"{'benchmark':<40} {'current':>12} {'baseline':>12} "
             f"{'ratio':>8}  status"]
    for row in comparison.rows:
        cur = f"{row['current']:.3f}" if row["current"] is not None else "-"
        base = f"{row['baseline']:.3f}" if row["baseline"] is not None else "-"
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "-"
        lines.append(f"{row['name']:<40} {cur:>12} {base:>12} "
                     f"{ratio:>8}  {row['status']}")
    verdict = ("OK" if comparison.ok
               else f"{len(comparison.regressions)} regression(s)")
    lines.append(f"tolerance {comparison.tolerance:g}: {verdict}")
    return "\n".join(lines)
