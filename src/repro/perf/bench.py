"""Benchmark suites for the crypto, simulator, and end-to-end layers.

Every measurement is emitted as a :class:`BenchEntry` with the schema

    {name, unit, value, params, host_fingerprint, git_rev}

where ``value`` is always higher-is-better (MB/s, events/s, packets/s),
so a single tolerance rule — ``current >= tolerance * baseline`` —
covers every entry in :mod:`repro.perf.compare`.

Timing discipline: each measurement runs ``repeats`` times and keeps the
*best* wall-clock (the standard way to suppress scheduler noise for
throughput numbers); buffers are deterministic pseudo-random bytes so
runs are comparable across hosts and revisions.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "BenchEntry",
    "append_history",
    "bench_analysis",
    "bench_crypto",
    "bench_detector",
    "bench_e2e",
    "bench_shard",
    "bench_sim",
    "git_rev",
    "host_fingerprint",
    "write_entries",
]


@dataclass
class BenchEntry:
    """One benchmark measurement (higher ``value`` is always better)."""

    name: str
    unit: str
    value: float
    params: Dict[str, Any] = field(default_factory=dict)
    host_fingerprint: str = ""
    git_rev: str = ""

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "unit": self.unit,
            "value": self.value,
            "params": self.params,
            "host_fingerprint": self.host_fingerprint,
            "git_rev": self.git_rev,
        }


def host_fingerprint() -> str:
    """Coarse host identity so baselines aren't compared across machines."""
    return "|".join([
        platform.system(),
        platform.machine(),
        platform.python_implementation(),
        platform.python_version(),
    ])


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=str(Path(__file__).resolve().parent),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def write_entries(path, entries: Iterable[BenchEntry]) -> None:
    """Write one BENCH_*.json file: a JSON array of entry objects."""
    doc = [e.to_json_dict() for e in entries]
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def append_history(path, entries: Iterable[BenchEntry], *,
                   keep_last: int = 200) -> int:
    """Append one JSON line per measurement to the bench history log.

    ``BENCH_*.json`` snapshots are overwritten every run; the history
    file keeps the perf trajectory in-repo.  Each line is the minimal
    durable schema ``{name, value, git_rev, timestamp}`` (timestamp in
    Unix seconds, UTC) so lines from different revisions stay
    comparable.  Returns the number of lines appended.

    The log is bounded: after appending, only the newest ``keep_last``
    lines per metric name survive (oldest rotate out, relative order
    preserved), so the in-repo file cannot grow without limit.  Lines
    that fail to parse are kept as-is rather than silently destroyed.
    Pass ``keep_last=0`` to disable rotation.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    stamp = int(time.time())
    lines = [
        json.dumps({"name": e.name, "value": e.value, "git_rev": e.git_rev,
                    "timestamp": stamp}, sort_keys=True)
        for e in entries
    ]
    with path.open("a") as fh:
        fh.write("".join(line + "\n" for line in lines))
    if keep_last > 0:
        _rotate_history(path, keep_last)
    return len(lines)


def _rotate_history(path: Path, keep_last: int) -> None:
    """Trim the history log to the newest ``keep_last`` lines per name."""
    all_lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
    counts: Dict[str, int] = {}
    kept = [False] * len(all_lines)
    for i in range(len(all_lines) - 1, -1, -1):
        try:
            name = json.loads(all_lines[i]).get("name")
        except ValueError:
            name = None
        if not isinstance(name, str):
            kept[i] = True
            continue
        if counts.get(name, 0) < keep_last:
            counts[name] = counts.get(name, 0) + 1
            kept[i] = True
    if all(kept):
        return
    survivors = [ln for ln, keep in zip(all_lines, kept) if keep]
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text("".join(ln + "\n" for ln in survivors))
    tmp.replace(path)


def _best_of(fn: Callable[[], int], repeats: int) -> float:
    """Run ``fn`` (returning a work count) ``repeats`` times; best rate.

    Each repeat starts from a collected heap and runs with the cyclic GC
    paused, so collection pauses land between measurements instead of
    inside them — standard hygiene for wall-clock throughput numbers.
    """
    best = 0.0
    for _ in range(max(1, repeats)):
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            work = fn()
            elapsed = time.perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        if elapsed > 0:
            best = max(best, work / elapsed)
    return best


def _best_of_staged(setup: Callable[[], object],
                    drive: Callable[[object], int], repeats: int) -> float:
    """Best rate of ``drive(setup())`` with only the drive on the clock.

    The warm-cache e2e methodology (EXPERIMENTS.md): ``setup`` builds the
    world — topology, sessions, schedules, none of it packet processing —
    outside the timed region; ``drive`` then runs the event loop and
    returns the work count.  GC hygiene matches :func:`_best_of` (collect
    before, cyclic GC paused during the timed drive).  A short busy spin
    precedes each timed drive so frequency scaling has ramped the core
    up before the clock starts (the drive itself is tens of
    milliseconds — far shorter than typical governor ramp times — so
    without the spin the measurement is dominated by the idle clock).
    """
    best = 0.0
    for _ in range(max(1, repeats)):
        state = setup()
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            spin_until = time.perf_counter() + 0.15
            x = 0
            while time.perf_counter() < spin_until:
                for _spin in range(5000):
                    x += 1
            start = time.perf_counter()
            work = drive(state)
            elapsed = time.perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        if elapsed > 0:
            best = max(best, work / elapsed)
    return best


def _stamp(entries: List[BenchEntry]) -> List[BenchEntry]:
    host = host_fingerprint()
    rev = git_rev()
    for e in entries:
        e.host_fingerprint = host
        e.git_rev = rev
    return entries


# ------------------------------------------------------------------ crypto


def bench_crypto(*, size: int = 262144, repeats: int = 3,
                 backend: Optional[str] = None,
                 only: Optional[str] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> List[BenchEntry]:
    """Throughput of every registered cipher through the public factories.

    Stream ciphers report ``encrypt`` and ``decrypt`` MB/s; AEADs report
    ``seal`` and ``open`` MB/s (AEAD messages are sealed in 16 KiB
    chunks, the shape of Shadowsocks AEAD tunnel traffic at max payload).
    ``backend`` pins the crypto backend for the measurement (``fast`` or
    ``reference``); ``only`` substring-filters cipher names.

    The AEAD record memo is disabled for the duration: this suite reports
    primitive throughput, and 16 KiB chunks would otherwise become dict
    hits after the first repeat.
    """
    from repro.crypto import (CIPHERS, CipherKind, current_backend, new_aead,
                              new_stream_cipher, set_backend)
    from repro.crypto import recordcache

    rng = random.Random(0xBE7C4)
    data = rng.randbytes(size)
    entries: List[BenchEntry] = []
    prev = current_backend()
    memo_was = recordcache.enabled()
    recordcache.set_enabled(False)
    set_backend(backend or prev)
    try:
        bname = current_backend()
        for spec in CIPHERS.values():
            if only and only not in spec.name:
                continue
            if progress:
                progress(f"crypto: {spec.name} [{bname}]")
            key = rng.randbytes(spec.key_len)
            params = {"size": size, "backend": bname}
            if spec.kind == CipherKind.STREAM:
                iv = rng.randbytes(spec.iv_len)

                def enc() -> int:
                    cipher = new_stream_cipher(spec.name, key, iv, True)
                    cipher.process(data)
                    return size

                def dec() -> int:
                    cipher = new_stream_cipher(spec.name, key, iv, False)
                    cipher.process(data)
                    return size

                for op, fn in (("encrypt", enc), ("decrypt", dec)):
                    entries.append(BenchEntry(
                        name=f"crypto.{spec.name}.{op}", unit="MB/s",
                        value=_best_of(fn, repeats) / 1e6, params=dict(params)))
            else:
                nonce = rng.randbytes(12)
                chunk = 16384
                chunks = [data[i : i + chunk] for i in range(0, size, chunk)]
                aead_params = dict(params, chunk=chunk)

                def seal() -> int:
                    aead = new_aead(spec.name, key)
                    for piece in chunks:
                        aead.seal(nonce, piece)
                    return size

                sealed = [new_aead(spec.name, key).seal(nonce, piece)
                          for piece in chunks]

                def opener() -> int:
                    aead = new_aead(spec.name, key)
                    for piece in sealed:
                        aead.open(nonce, piece)
                    return size

                for op, fn in (("seal", seal), ("open", opener)):
                    entries.append(BenchEntry(
                        name=f"crypto.{spec.name}.{op}", unit="MB/s",
                        value=_best_of(fn, repeats) / 1e6,
                        params=dict(aead_params)))
        if not only or only in "cfb_encrypt":
            # Dedicated CFB-encrypt straggler entry (ARCHITECTURE
            # "Batched datapath"): CFB encryption is inherently
            # sequential — keystream block i is E(ciphertext block i-1)
            # — so unlike CTR/GCM/ChaCha it cannot batch across blocks
            # and is accepted as-is.  Tracked under its own name so
            # bench triage sees the acceptance instead of re-deriving
            # it from the per-cipher entries.
            if progress:
                progress(f"crypto: cfb_encrypt straggler [{bname}]")
            cfb_key = rng.randbytes(16)
            cfb_iv = rng.randbytes(16)

            def cfb_enc() -> int:
                cipher = new_stream_cipher("aes-128-cfb", cfb_key, cfb_iv, True)
                cipher.process(data)
                return size

            entries.append(BenchEntry(
                name="crypto.cfb_encrypt", unit="MB/s",
                value=_best_of(cfb_enc, repeats) / 1e6,
                params={"size": size, "backend": bname,
                        "cipher": "aes-128-cfb", "sequential": True}))
    finally:
        set_backend(prev)
        recordcache.set_enabled(memo_was)
    return _stamp(entries)


# --------------------------------------------------------------- simulator


def bench_sim(*, events: int = 200000, fanout: int = 4,
              repeats: int = 3,
              progress: Optional[Callable[[str], None]] = None,
              ) -> List[BenchEntry]:
    """Raw event-loop throughput on a synthetic self-rescheduling load.

    ``fanout`` timer chains reschedule themselves with deterministic
    jittered delays until ``events`` callbacks have run — the same
    schedule/pop/dispatch path every simulated segment takes.
    """
    from repro.net.sim import Simulator

    if progress:
        progress(f"sim: {events} events, fanout={fanout}")

    def run() -> int:
        sim = Simulator()
        rng = random.Random(1234)

        def tick(chain: int) -> None:
            sim.schedule(0.001 + rng.random() * 0.01, tick, chain)

        for chain in range(fanout):
            sim.schedule(rng.random() * 0.01, tick, chain)
        return sim.run(max_events=events)

    rate = _best_of(run, repeats)
    return _stamp([BenchEntry(
        name="sim.event_loop", unit="events/s", value=rate,
        params={"events": events, "fanout": fanout})])


# ---------------------------------------------------------------- analysis


def bench_analysis(*, events: int = 200000, repeats: int = 3,
                   progress: Optional[Callable[[str], None]] = None,
                   ) -> List[BenchEntry]:
    """Streaming-analyzer throughput over a synthetic event stream.

    Pre-builds a deterministic mix of ``probe``/``payload``/
    ``flow.flagged`` records, then times a full
    :class:`~repro.analysis.pipeline.AnalysisPipeline` — bus attach,
    per-event ``observe`` across a representative analyzer set, and
    ``finalize`` — reporting analysis events/s.
    """
    from repro.analysis.pipeline import (
        AnalysisPipeline,
        EcdfAnalyzer,
        FlaggedConnections,
        ProbeTally,
        RandomDataStats,
        ReplayDelays,
    )
    from repro.runtime.events import EventBus

    if progress:
        progress(f"analysis: {events} events")

    rng = random.Random(0xA11A)
    payloads = [rng.randbytes(rng.randint(16, 220)) for _ in range(64)]
    stream = []
    for i in range(events):
        roll = rng.random()
        if roll < 0.5:
            stream.append(("payload", {
                "time": i * 0.01,
                "payload": payloads[rng.randrange(len(payloads))],
            }))
        elif roll < 0.85:
            payload = payloads[rng.randrange(len(payloads))]
            stream.append(("probe", {
                "time": i * 0.01,
                "src_ip": f"10.{rng.randrange(256)}.{rng.randrange(256)}.7",
                "src_port": rng.randrange(1024, 65536),
                "server_ip": "203.0.113.5",
                "server_port": 8388,
                "probe_type": rng.choice(["replay", "rand", "rand-len"]),
                "is_replay": rng.random() < 0.5,
                "payload": payload,
                "source_payload": payload,
                "delay": rng.random() * 400.0,
            }))
        else:
            stream.append(("flow.flagged", {"time": i * 0.01}))

    def run() -> int:
        bus = EventBus()
        pipeline = AnalysisPipeline({
            "probes": ProbeTally(),
            "flagged": FlaggedConnections(),
            "replay_delays": ReplayDelays(),
            "random_data": RandomDataStats(bins=8),
            "delay_ecdf": EcdfAnalyzer(event="probe", field="delay",
                                       quantiles=(0.5, 0.9, 0.99)),
        }).attach(bus)
        for kind, event in stream:
            bus.emit(kind, event)
        pipeline.outputs()
        pipeline.detach()
        return len(stream)

    rate = _best_of(run, repeats)
    return _stamp([BenchEntry(
        name="analysis.pipeline", unit="events/s", value=rate,
        params={"events": events, "analyzers": 5})])


# ---------------------------------------------------------------- detector


def bench_detector(*, packets: int = 20000, repeats: int = 3,
                   progress: Optional[Callable[[str], None]] = None,
                   ) -> List[BenchEntry]:
    """Detector-stage throughput over a mixed first-packet corpus.

    Builds a deterministic half-Shadowsocks / half-plaintext corpus (the
    same generators the trainable stages fit on), cycles it up to
    ``packets`` feature packets, and times each registered in-path
    pipeline shape — the paper's passive classifier, the deterministic
    entropy and VMess stages, and a three-member weighted ensemble —
    plus the batched passive path, reporting flagged-or-not decisions
    per wall-clock second (flags/s).
    """
    from repro.gfw.stages import DetectorContext, build_stage, training_corpus

    if progress:
        progress(f"detector: {packets} packets")

    positives, negatives = training_corpus(seed=0xD7, samples=128)
    mixed = [p for pair in zip(positives, negatives) for p in pair]
    corpus = [mixed[i % len(mixed)] for i in range(packets)]

    specs = {
        "passive": {"kind": "passive", "base_rate": 1.0},
        "entropy": "entropy",
        "vmess": "vmess",
        "ensemble": {"kind": "weighted", "threshold": 0.6,
                     "members": [{"kind": "passive", "base_rate": 1.0},
                                 "entropy", "vmess"]},
    }
    entries: List[BenchEntry] = []
    for label, spec in specs.items():
        stage = build_stage(spec)
        if progress:
            progress(f"detector: {label}")

        def run(stage=stage) -> int:
            rng = random.Random(0x5EED)
            evaluate = stage.evaluate
            for payload in corpus:
                evaluate(DetectorContext(payload, rng=rng))
            return len(corpus)

        entries.append(BenchEntry(
            name=f"detector.{label}", unit="flags/s",
            value=_best_of(run, repeats),
            params={"packets": packets, "spec": label}))

    batch_stage = build_stage(specs["passive"])

    def run_batch() -> int:
        rng = random.Random(0x5EED)
        ctxs = [DetectorContext(payload, rng=rng) for payload in corpus]
        batch_stage.evaluate_batch(ctxs)
        return len(corpus)

    entries.append(BenchEntry(
        name="detector.passive_batch", unit="flags/s",
        value=_best_of(run_batch, repeats),
        params={"packets": packets, "spec": "passive"}))
    return _stamp(entries)


# -------------------------------------------------------------- end-to-end


def bench_e2e(*, connections: int = 40, repeats: int = 1,
              method: str = "chacha20-ietf-poly1305",
              progress: Optional[Callable[[str], None]] = None,
              ) -> List[BenchEntry]:
    """Packets/s of a full tunnel scenario: client → GFW → server and back.

    Builds the same world as ``repro quickstart`` (Shadowsocks client +
    server under the detector, curl-like workload) and measures delivered
    TCP segments per wall-clock second of the *drive* — crypto, TCP,
    detector, and event loop all on the clock; world construction
    (topology, session objects, workload schedules) happens outside the
    timed region, per the warm-cache methodology in EXPERIMENTS.md.
    """
    from repro.experiments import build_world
    from repro.gfw import DetectorConfig
    from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
    from repro.workloads import CurlDriver

    if progress:
        progress(f"e2e: {connections} connections, {method}")

    segments = {"n": 0}

    def setup():
        world = build_world(seed=7,
                            detector_config=DetectorConfig(base_rate=0.9),
                            websites=["example.com", "gfw.report"])
        server_host = world.add_server("ss-server", region="uk")
        client_host = world.add_client("client")
        ShadowsocksServer(server_host, 8388, "pw", method, "outline-1.0.7")
        client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                                   method)
        CurlDriver(client, rng=random.Random(7),
                   sites=["example.com", "gfw.report"]).run_schedule(
                       connections, 60.0)
        return world

    def drive(world) -> int:
        world.sim.run(until=connections * 60.0 + 3600)
        segments["n"] = world.net.segments_delivered
        return world.net.segments_delivered

    rate = _best_of_staged(setup, drive, repeats)
    return _stamp([BenchEntry(
        name="e2e.shadowsocks_tunnel", unit="packets/s", value=rate,
        params={"connections": connections, "method": method,
                "segments": segments["n"]})])


# ------------------------------------------------------------------- shard


def bench_shard(*, flows: int = 1_000_000,
                workers: Iterable[int] = (1, 2, 4, 8),
                progress: Optional[Callable[[str], None]] = None,
                ) -> List[BenchEntry]:
    """Sharded scale-1m throughput at several worker counts.

    Runs the ``scale-1m`` scenario (``flows`` synthetic border-crossing
    flows through the censor hot path) under ``run_sharded`` at each
    worker count and emits three entries per count:

    * ``shard.events_per_s.wN`` — simulator events per wall-clock
      second of the whole sharded run (orchestration included).  On a
      single-CPU host the shards of one run execute sequentially, so
      this number does *not* grow with N there.
    * ``shard.packets_per_s.wN`` — tracked segments per wall second.
    * ``shard.aggregate_events_per_s.wN`` — the sum over shards of
      each shard's isolated events/s.  This is the capacity the shard
      layout exposes: with one process per shard on an unloaded
      N-core host, wall rate approaches this number.  It is the
      scaling metric the shard suite gates on.

    The actual process parallelism is ``min(workers, cpu_count)`` and
    is recorded in each entry's params (``jobs``/``cpus``) so numbers
    are never read as wall-clock speedup a host cannot deliver.
    """
    import os

    from repro.runtime.runner import run_sharded

    cpus = os.cpu_count() or 1
    entries: List[BenchEntry] = []
    for count in workers:
        jobs = min(count, cpus)
        if progress:
            progress(f"shard: {flows} flows across {count} shard(s), "
                     f"jobs={jobs}")
        sharded = run_sharded("scale-1m", seed=0, overrides={"flows": flows},
                              shards=count, jobs=jobs, use_cache=False)
        counters = sharded.merged.events["counters"]
        events = counters.get("sim.events", 0)
        packets = counters.get("scale.segments", 0)
        aggregate = sum(
            shard.events["counters"].get("sim.events", 0) / shard.wall_time
            for shard in sharded.shards if shard.wall_time > 0
        )
        params = {"flows": flows, "workers": count, "jobs": jobs,
                  "cpus": cpus}
        entries.append(BenchEntry(
            name=f"shard.events_per_s.w{count}", unit="events/s",
            value=events / sharded.wall_time, params=dict(params)))
        entries.append(BenchEntry(
            name=f"shard.packets_per_s.w{count}", unit="packets/s",
            value=packets / sharded.wall_time, params=dict(params)))
        entries.append(BenchEntry(
            name=f"shard.aggregate_events_per_s.w{count}", unit="events/s",
            value=aggregate, params=dict(params)))
    return _stamp(entries)
