"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``run``         — run any registered scenario through the runtime
  (multi-seed, parallel, cached): ``run <scenario> --seeds N --jobs M``;
  ``--shards N`` (or ``auto``) partitions one scenario's flow/unit
  space across a process pool and merges the shards back
  byte-identically; ``run --list`` enumerates the registry;
* ``analyze``     — re-finalize the streaming analyzers of already-cached
  runs (merging states across seeds) without re-simulating anything;
* ``quickstart``  — tunnel a request under the GFW and print the probes;
* ``probesim``    — probe one server model and print its reaction row;
* ``identify``    — probe a server model and print the §5.2.2 inference;
* ``sink``        — run a §4.1 random-data experiment;
* ``brdgrd``      — run the §7.1 defense experiment;
* ``blocking``    — run the §6 blocking fleet;
* ``profiles``    — list the implementation behaviour profiles;
* ``ciphers``     — list the supported encryption methods;
* ``bench``       — run the performance harness and write the
  ``BENCH_*.json`` result files; ``--compare BASELINE.json`` gates the
  run against a recorded baseline (non-zero exit on regression).

``sink``, ``brdgrd`` and ``blocking`` are convenience front-ends to the
same registered scenarios ``run`` executes; ``run`` adds seed sweeps,
process fan-out, the on-disk result cache, and ``--json`` output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'How China Detects and Blocks "
                    "Shadowsocks' (IMC 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "run",
        help="run a registered scenario (multi-seed, parallel, cached)",
    )
    p.add_argument("scenario", nargs="?", help="scenario name; see --list")
    p.add_argument("--list", action="store_true", dest="list_scenarios",
                   help="list registered scenarios and exit")
    p.add_argument("--seeds", type=int, default=1, metavar="N",
                   help="number of seeds to sweep (default 1)")
    p.add_argument("--seed-start", type=int, default=0, metavar="S",
                   help="first seed of the sweep (default 0)")
    p.add_argument("--jobs", type=int, default=1, metavar="M",
                   help="worker processes (default 1 = serial; with "
                        "--shards, 1 = one process per shard up to the "
                        "CPU count)")
    p.add_argument("--shards", default=None, metavar="N",
                   help="partition the scenario's flow/unit space into N "
                        "disjoint shards, run them in worker processes, and "
                        "merge the results back byte-identically with the "
                        "serial run; 'auto' = CPU count (shardable "
                        "scenarios only)")
    p.add_argument("--set", dest="overrides", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="override a scenario parameter (repeatable; "
                        "values parsed as JSON, else kept as strings)")
    p.add_argument("--detectors", default=None, metavar="SPEC",
                   help="detector-stage spec — a bare kind like 'entropy' "
                        "or JSON like '{\"kind\": \"any\", \"members\": "
                        "[\"entropy\", \"vmess\"]}' — for scenarios with a "
                        "`detectors` parameter (shorthand for "
                        "--set detectors=SPEC)")
    p.add_argument("--protocol", default=None, metavar="SPEC",
                   help="proxy-protocol spec — a bare kind like 'obfs' or "
                        "JSON like '{\"kind\": \"obfs\", \"profile\": "
                        "\"obfs3\"}' — for scenarios with a `protocol` "
                        "parameter (shorthand for --set protocol=SPEC)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="print the merged sweep as canonical JSON")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the result cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache root (default $REPRO_RUNS_DIR or runs/)")
    p.add_argument("--profile", action="store_true", dest="cprofile",
                   help="profile the run with cProfile; top functions to stderr")

    p = sub.add_parser(
        "analyze",
        help="re-run the declared analyzers over cached results "
             "(no simulation)",
    )
    p.add_argument("scenario", help="scenario name (see `run --list`)")
    p.add_argument("--seeds", type=int, default=1, metavar="N",
                   help="number of cached seeds to merge (default 1)")
    p.add_argument("--seed-start", type=int, default=0, metavar="S",
                   help="first seed (default 0)")
    p.add_argument("--set", dest="overrides", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="scenario parameter overrides the runs were cached "
                        "under (must match exactly)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="print the merged analysis as canonical JSON")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache root (default $REPRO_RUNS_DIR or runs/)")

    p = sub.add_parser("quickstart", help="tunnel traffic under the GFW")
    p.add_argument("--connections", type=int, default=40)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--profile", default="outline-1.0.7")
    p.add_argument("--method", default="chacha20-ietf-poly1305")
    p.add_argument("--loss", type=float, default=0.0, metavar="P",
                   help="network loss probability per segment (default 0)")
    p.add_argument("--reorder", type=float, default=0.0, metavar="P",
                   help="network reorder probability per segment (default 0)")
    p.add_argument("--detectors", default=None, metavar="SPEC",
                   help="in-path detector-stage spec (bare kind or JSON); "
                        "default: the paper's passive classifier")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="split the censor into N disjoint flow-space "
                        "sensors: the same workload runs once per shard "
                        "and each shard's GFW only tracks the flows it "
                        "owns (demonstrates the flow partitioner)")

    p = sub.add_parser("probesim", help="probe a server model (Figure 10 row)")
    p.add_argument("--profile", default="ss-libev-3.1.3")
    p.add_argument("--method", default="aes-128-gcm")
    p.add_argument("--trials", type=int, default=6)
    p.add_argument("--lengths", type=int, nargs="*", default=None)

    p = sub.add_parser("identify", help="infer a server's implementation (§5.2.2)")
    p.add_argument("--profile", default="ss-libev-3.1.3")
    p.add_argument("--method", default="chacha20-ietf")
    p.add_argument("--trials", type=int, default=10)

    p = sub.add_parser("sink", help="run a §4.1 random-data experiment")
    p.add_argument("--experiment", choices=["1.a", "1.b", "2", "3"], default="1.a")
    p.add_argument("--connections", type=int, default=3000)
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("brdgrd", help="run the §7.1 brdgrd experiment")
    p.add_argument("--hours", type=float, default=36.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("blocking", help="run the §6 blocking fleet")
    p.add_argument("--days", type=float, default=6.0)
    p.add_argument("--seed", type=int, default=0)

    sub.add_parser("profiles", help="list implementation behaviour profiles")
    sub.add_parser("ciphers", help="list supported encryption methods")

    p = sub.add_parser(
        "bench",
        help="run performance benchmarks and write BENCH_*.json",
    )
    p.add_argument("--suite",
                   choices=["crypto", "sim", "analysis", "detector", "e2e",
                            "shard", "all"],
                   default="all", help="which benchmark suite(s) to run")
    p.add_argument("--quick", action="store_true",
                   help="smaller sizes/counts (CI smoke mode)")
    p.add_argument("--backend", choices=["fast", "reference"], default=None,
                   help="pin the crypto backend for the crypto suite")
    p.add_argument("--only", default=None, metavar="SUBSTR",
                   help="filter crypto benchmarks by cipher-name substring")
    p.add_argument("--out-dir", default=".", metavar="DIR",
                   help="directory for BENCH_*.json files (default: cwd)")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="gate results against a recorded baseline file")
    p.add_argument("--tolerance", type=float, default=0.8, metavar="T",
                   help="fail entries below T x baseline (default 0.8)")
    p.add_argument("--profile", action="store_true", dest="cprofile",
                   help="profile the benchmarks with cProfile; top functions "
                        "to stderr")

    p = sub.add_parser(
        "serve",
        help="run the HTTP control plane (submit jobs, stream records)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8388,
                   help="bind port (default 8388; 0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="worker processes executing jobs (default 2)")
    p.add_argument("--queue-size", type=int, default=64, metavar="N",
                   help="max queued jobs before POST /jobs returns 429 "
                        "(default 64)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache root shared by all jobs "
                        "(default $REPRO_RUNS_DIR or runs/)")
    p.add_argument("--no-cache", action="store_true",
                   help="run every job without the shared result cache")
    p.add_argument("--keep-jobs", type=int, default=256, metavar="N",
                   help="finished jobs retained for GET /jobs/{id} "
                        "(default 256)")
    return parser


def _run_profiled(enabled: bool, fn):
    """Run ``fn()``; with ``enabled``, under cProfile with top-N to stderr."""
    if not enabled:
        return fn()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(fn)
    finally:
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(30)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = globals()[f"_cmd_{args.command.replace('.', '_')}"]
    return handler(args)


def _parse_overrides(items) -> Optional[dict]:
    """Parse repeated ``--set KEY=VALUE`` arguments; None on bad syntax."""
    overrides = {}
    for item in items:
        if "=" not in item:
            print(f"error: --set expects KEY=VALUE, got {item!r}",
                  file=sys.stderr)
            return None
        key, value = item.split("=", 1)
        overrides[key] = value
    return overrides


def _parse_detectors(text: Optional[str]):
    """Parse a ``--detectors`` value: JSON spec, else a bare stage kind."""
    if text is None:
        return None
    import json

    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_shards(text: Optional[str]) -> Optional[int]:
    """Parse ``--shards``: None passes through, 'auto' = CPU count.

    Returns the shard count, or raises ValueError on a bad value.
    """
    if text is None:
        return None
    if text == "auto":
        import os

        return os.cpu_count() or 1
    count = int(text)  # ValueError on junk propagates to the caller
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    return count


def _cmd_run(args) -> int:
    from .runtime import (
        JobSpec,
        ResultCache,
        ShardingError,
        all_scenarios,
        default_cache_root,
        execute_job,
    )

    if args.list_scenarios or args.scenario is None:
        for scenario in all_scenarios():
            print(f"{scenario.name:<26} {scenario.title}")
        if args.scenario is None and not args.list_scenarios:
            print("\nerror: missing scenario name (see list above)",
                  file=sys.stderr)
            return 2
        return 0

    overrides = _parse_overrides(args.overrides)
    if overrides is None:
        return 2
    if args.detectors is not None:
        overrides["detectors"] = args.detectors
    if args.protocol is not None:
        overrides["protocol"] = args.protocol
    try:
        shards = _parse_shards(args.shards)
    except ValueError as exc:
        print(f"error: --shards expects a positive integer or 'auto': {exc}",
              file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_root())
    spec = JobSpec(
        scenario=args.scenario,
        seeds=tuple(range(args.seed_start,
                          args.seed_start + max(args.seeds, 1))),
        overrides=overrides,
        shards=shards,
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )

    try:
        job = _run_profiled(args.cprofile,
                            lambda: execute_job(spec, cache=cache))
    except ShardingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.as_json:
        print(job.canonical_bytes().decode("utf-8"))
        return 0

    merged = job.merged
    shard_note = f"shards={shards}, " if shards is not None else ""
    print(f"{args.scenario}: {len(merged['seeds'])} seed(s), "
          f"{shard_note}jobs={job.jobs}, wall={job.wall_time:.2f}s, "
          f"cache {job.cache_hits} hit / {job.cache_misses} miss")
    for name, stats in merged["metrics"].items():
        print(f"  {name:<30} mean={stats['mean']:<12.6g} "
              f"min={stats['min']:<12.6g} max={stats['max']:.6g}")
    if merged["events"]:
        print("events (summed over seeds):")
        for name, count in merged["events"].items():
            print(f"  {name:<30} {count}")
    if cache is not None:
        print(f"results cached under {cache.root}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .runtime import default_cache_root
    from .service import ControlPlaneConfig, serve_forever

    cache_root = None
    if not args.no_cache:
        cache_root = str(args.cache_dir or default_cache_root())
    config = ControlPlaneConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        cache_root=cache_root,
        keep_jobs=args.keep_jobs,
    )
    try:
        asyncio.run(serve_forever(config))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_analyze(args) -> int:
    from .analysis.pipeline import merge_analysis
    from .runtime import (
        ResultCache,
        canonical_json,
        canonical_params,
        code_fingerprint,
        default_cache_root,
        get_scenario,
    )

    overrides = _parse_overrides(args.overrides)
    if overrides is None:
        return 2
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    cache = ResultCache(args.cache_dir or default_cache_root())
    fingerprint = code_fingerprint()
    results = []
    for seed in range(args.seed_start, args.seed_start + max(args.seeds, 1)):
        params = canonical_params(scenario.instantiate(seed, overrides))
        cached = cache.load(scenario.name, params, seed, fingerprint)
        if cached is None:
            print(f"error: no cached result for {scenario.name} seed={seed} "
                  f"under {cache.root} — run `python -m repro run "
                  f"{scenario.name} --seeds {args.seeds}` first "
                  f"(same overrides, same code)", file=sys.stderr)
            return 1
        if not cached.analysis:
            print(f"error: cached result for {scenario.name} seed={seed} "
                  f"carries no analyzer states (scenario declares no "
                  f"analyzers?)", file=sys.stderr)
            return 1
        results.append(cached)

    merged = merge_analysis([r.analysis for r in results])
    if args.as_json:
        print(canonical_json(merged))
        return 0

    seeds = [r.seed for r in results]
    print(f"{scenario.name}: re-finalized {len(results)} cached seed(s) "
          f"{seeds} without re-simulating")
    for name in sorted(merged):
        print(f"  {name}:")
        output = merged[name]
        if isinstance(output, dict):
            for key in sorted(output):
                print(f"    {key:<24} {canonical_json(output[key])}")
        else:
            print(f"    {canonical_json(output)}")
    return 0


def _cmd_quickstart(args) -> int:
    import random

    from .experiments import build_world
    from .gfw import DetectorConfig
    from .net import Impairment
    from .shadowsocks import ShadowsocksClient, ShadowsocksServer
    from .workloads import CurlDriver

    impairment = Impairment(loss=args.loss, reorder=args.reorder)

    def run_world(shard=None):
        world = build_world(
            seed=args.seed,
            detector_config=DetectorConfig(base_rate=0.9),
            detectors=_parse_detectors(args.detectors),
            websites=["example.com", "gfw.report"],
            impairment=impairment if impairment.active else None,
            shard=shard)
        server_host = world.add_server("ss-server", region="uk")
        client_host = world.add_client("client")
        ShadowsocksServer(server_host, 8388, "pw", args.method, args.profile)
        client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                                   args.method)
        CurlDriver(client, rng=random.Random(args.seed),
                   sites=["example.com", "gfw.report"]).run_schedule(
                       args.connections, 60.0)
        world.sim.run(until=args.connections * 60.0 + 3600)
        return world

    if args.shards is not None:
        if args.shards < 1:
            print(f"error: --shards must be >= 1, got {args.shards}",
                  file=sys.stderr)
            return 2
        # The same deterministic workload replays once per shard; each
        # shard's censor only tracks the flows whose seed-stable flow_key
        # hashes to it, so the tracked-flow counts sum to the serial run's.
        total_tracked = total_flagged = total_probes = 0
        for index in range(args.shards):
            world = run_world(shard=(index, args.shards))
            tracked = world.gfw.inspected_connections
            flagged = world.gfw.flagged_connections
            probes = len(world.gfw.probe_log)
            print(f"shard {index}/{args.shards}: tracked={tracked:<5} "
                  f"flagged={flagged:<5} probes={probes}")
            total_tracked += tracked
            total_flagged += flagged
            total_probes += probes
        print(f"total over {args.shards} shard(s): tracked={total_tracked}  "
              f"flagged={total_flagged}  probes={total_probes}")
        return 0

    world = run_world()
    print(f"connections: {args.connections}  flagged: "
          f"{world.gfw.flagged_connections}  probes: {len(world.gfw.probe_log)}")
    if impairment.active:
        counters = world.bus.counters
        retx = (counters.get("tcp.retransmit", 0)
                + counters.get("tcp.syn.retry", 0))
        print(f"impairment: loss={args.loss:g} reorder={args.reorder:g}  "
              f"dropped={world.net.impairment_drops}  retransmits={retx}")
    for record in world.gfw.probe_log[:20]:
        print(f"  {record.time_sent:>8.1f}s {record.probe_type:<4} "
              f"len={len(record.probe.payload):<4} from {record.src_ip:<16} "
              f"-> {record.reaction}")
    return 0


def _cmd_probesim(args) -> int:
    from .analysis import render_table
    from .probesim import PROBE_LENGTH_SCHEDULE, build_random_probe_row

    lengths = args.lengths or list(PROBE_LENGTH_SCHEDULE)
    row = build_random_probe_row(args.profile, args.method, lengths,
                                 trials=args.trials)
    rows = [(length, row.cells[length].label()) for length in sorted(row.cells)]
    print(render_table(["probe length", "reactions"], rows))
    return 0


def _cmd_identify(args) -> int:
    from .probesim import (
        PROBE_LENGTH_SCHEDULE,
        build_random_probe_row,
        identify_server,
    )

    row = build_random_probe_row(args.profile, args.method,
                                 PROBE_LENGTH_SCHEDULE, trials=args.trials)
    ident = identify_server(row)
    print(f"construction:     {ident.construction or 'unknown'}")
    print(f"IV/salt length:   {ident.nonce_len if ident.nonce_len else 'unknown'}")
    print(f"masks ATYP:       {ident.masks_atyp}")
    print(f"error action:     {ident.error_action}")
    print(f"cipher hint:      {ident.cipher_hint or '-'}")
    print(f"compatible with:  {', '.join(ident.compatible_profiles) or '-'}")
    for note in ident.notes:
        print(f"note: {note}")
    return 0


def _cmd_sink(args) -> int:
    from .experiments import TABLE4_EXPERIMENTS
    from .runtime import run_scenario

    overrides = dict(TABLE4_EXPERIMENTS[args.experiment])
    overrides.pop("seed", None)
    overrides.update(connections=args.connections,
                     duration=args.hours * 3600.0)
    result = run_scenario("sink", seed=args.seed, overrides=overrides,
                          use_cache=False)
    print(f"Exp {args.experiment}: {result.payload['connections']} "
          f"connections, {result.payload['probes']} probes")
    for probe_type, count in sorted(result.payload["probes_by_type"].items()):
        print(f"  {probe_type:<4} {count}")
    return 0


def _cmd_brdgrd(args) -> int:
    from .runtime import run_scenario

    duration = args.hours * 3600.0
    windows = ((duration / 3, 2 * duration / 3),)
    result = run_scenario(
        "brdgrd", seed=args.seed,
        overrides={"duration": duration, "brdgrd_windows": windows},
        use_cache=False)
    for hour, count in enumerate(result.payload["hourly_counts"]):
        t = hour * 3600.0
        on = any(s <= t < e for s, e in windows)
        print(f"h{hour:>3} {'BRDGRD' if on else '      '} "
              f"{count:>4} {'#' * min(count, 50)}")
    print(f"\nprobes/hour: active={result.payload['rate_active']:.2f} "
          f"inactive={result.payload['rate_inactive']:.2f}")
    return 0


def _cmd_blocking(args) -> int:
    from .runtime import run_scenario

    duration = args.days * 86400.0
    result = run_scenario(
        "blocking", seed=args.seed,
        overrides={"duration": duration,
                   "sensitive_periods": ((duration / 3, duration / 2),)},
        use_cache=False)
    for server in result.payload["servers"]:
        status = "BLOCKED" if server["blocked"] else "up"
        print(f"{server['ip']:<16} {server['profile']:<16} "
              f"probes={server['probes']:<5} {status}")
    return 0


def _cmd_profiles(args) -> int:
    from .shadowsocks import all_profiles

    for profile in all_profiles():
        constructions = "/".join(
            c for c, ok in (("stream", profile.supports_stream),
                            ("aead", profile.supports_aead)) if ok)
        print(f"{profile.name:<18} {profile.display:<28} {constructions:<11} "
              f"error={profile.error_action:<7} "
              f"replay_filter={'yes' if profile.replay_filter else 'no'}")
    return 0


def _cmd_ciphers(args) -> int:
    from .crypto import CIPHERS

    for name, spec in sorted(CIPHERS.items()):
        print(f"{name:<24} {spec.kind:<7} key={spec.key_len:<3} "
              f"{'salt' if spec.kind == 'aead' else 'IV'}={spec.iv_len}")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from .perf import (
        append_history,
        bench_analysis,
        bench_crypto,
        bench_detector,
        bench_e2e,
        bench_shard,
        bench_sim,
        compare_entries,
        format_comparison,
        load_entries,
        write_entries,
    )

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    def progress(message: str) -> None:
        print(f"  {message}", file=sys.stderr)

    def execute():
        suites = {}
        if args.suite in ("crypto", "all"):
            suites["crypto"] = bench_crypto(
                size=32768 if args.quick else 262144,
                repeats=1 if args.quick else 3,
                backend=args.backend, only=args.only, progress=progress)
        if args.suite in ("sim", "all"):
            suites["sim"] = bench_sim(
                events=20000 if args.quick else 200000,
                repeats=1 if args.quick else 3, progress=progress)
        if args.suite in ("analysis", "all"):
            suites["analysis"] = bench_analysis(
                events=20000 if args.quick else 200000,
                repeats=1 if args.quick else 3, progress=progress)
        if args.suite in ("detector", "all"):
            suites["detector"] = bench_detector(
                packets=2000 if args.quick else 20000,
                repeats=1 if args.quick else 3, progress=progress)
        if args.suite in ("e2e", "all"):
            suites["e2e"] = bench_e2e(
                connections=10 if args.quick else 40,
                repeats=1 if args.quick else 5, progress=progress)
        if args.suite in ("shard", "all"):
            suites["shard"] = bench_shard(
                flows=20000 if args.quick else 1_000_000,
                workers=(1, 2) if args.quick else (1, 2, 4, 8),
                progress=progress)
        return suites

    suites = _run_profiled(args.cprofile, execute)

    all_entries = []
    for suite, entries in suites.items():
        path = out_dir / f"BENCH_{suite}.json"
        write_entries(path, entries)
        print(f"wrote {path} ({len(entries)} entries)")
        all_entries.extend(entries)
    for entry in all_entries:
        print(f"  {entry.name:<40} {entry.value:>12.3f} {entry.unit}")
    if all_entries:
        # BENCH_*.json snapshots are overwritten per run; the history
        # log accumulates one line per measurement, keeping the perf
        # trajectory in-repo (anchored beside the snapshots, so the
        # default out-dir from the repo root appends to
        # benchmarks/history.jsonl).
        history = out_dir / "benchmarks" / "history.jsonl"
        count = append_history(history, all_entries)
        print(f"appended {count} line(s) to {history}")

    if args.compare:
        comparison = compare_entries(all_entries, load_entries(args.compare),
                                     tolerance=args.tolerance)
        print(format_comparison(comparison))
        if not comparison.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
