"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``quickstart``  — tunnel a request under the GFW and print the probes;
* ``probesim``    — probe one server model and print its reaction row;
* ``identify``    — probe a server model and print the §5.2.2 inference;
* ``sink``        — run a §4.1 random-data experiment;
* ``brdgrd``      — run the §7.1 defense experiment;
* ``blocking``    — run the §6 blocking fleet;
* ``profiles``    — list the implementation behaviour profiles;
* ``ciphers``     — list the supported encryption methods.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'How China Detects and Blocks "
                    "Shadowsocks' (IMC 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="tunnel traffic under the GFW")
    p.add_argument("--connections", type=int, default=40)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--profile", default="outline-1.0.7")
    p.add_argument("--method", default="chacha20-ietf-poly1305")

    p = sub.add_parser("probesim", help="probe a server model (Figure 10 row)")
    p.add_argument("--profile", default="ss-libev-3.1.3")
    p.add_argument("--method", default="aes-128-gcm")
    p.add_argument("--trials", type=int, default=6)
    p.add_argument("--lengths", type=int, nargs="*", default=None)

    p = sub.add_parser("identify", help="infer a server's implementation (§5.2.2)")
    p.add_argument("--profile", default="ss-libev-3.1.3")
    p.add_argument("--method", default="chacha20-ietf")
    p.add_argument("--trials", type=int, default=10)

    p = sub.add_parser("sink", help="run a §4.1 random-data experiment")
    p.add_argument("--experiment", choices=["1.a", "1.b", "2", "3"], default="1.a")
    p.add_argument("--connections", type=int, default=3000)
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("brdgrd", help="run the §7.1 brdgrd experiment")
    p.add_argument("--hours", type=float, default=36.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("blocking", help="run the §6 blocking fleet")
    p.add_argument("--days", type=float, default=6.0)
    p.add_argument("--seed", type=int, default=0)

    sub.add_parser("profiles", help="list implementation behaviour profiles")
    sub.add_parser("ciphers", help="list supported encryption methods")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = globals()[f"_cmd_{args.command.replace('.', '_')}"]
    return handler(args)


def _cmd_quickstart(args) -> int:
    import random

    from .experiments import build_world
    from .gfw import DetectorConfig
    from .shadowsocks import ShadowsocksClient, ShadowsocksServer
    from .workloads import CurlDriver

    world = build_world(seed=args.seed,
                        detector_config=DetectorConfig(base_rate=0.9),
                        websites=["example.com", "gfw.report"])
    server_host = world.add_server("ss-server", region="uk")
    client_host = world.add_client("client")
    ShadowsocksServer(server_host, 8388, "pw", args.method, args.profile)
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                               args.method)
    CurlDriver(client, rng=random.Random(args.seed),
               sites=["example.com", "gfw.report"]).run_schedule(
                   args.connections, 60.0)
    world.sim.run(until=args.connections * 60.0 + 3600)
    print(f"connections: {args.connections}  flagged: "
          f"{world.gfw.flagged_connections}  probes: {len(world.gfw.probe_log)}")
    for record in world.gfw.probe_log[:20]:
        print(f"  {record.time_sent:>8.1f}s {record.probe_type:<4} "
              f"len={len(record.probe.payload):<4} from {record.src_ip:<16} "
              f"-> {record.reaction}")
    return 0


def _cmd_probesim(args) -> int:
    from .analysis import render_table
    from .probesim import PROBE_LENGTH_SCHEDULE, build_random_probe_row

    lengths = args.lengths or list(PROBE_LENGTH_SCHEDULE)
    row = build_random_probe_row(args.profile, args.method, lengths,
                                 trials=args.trials)
    rows = [(length, row.cells[length].label()) for length in sorted(row.cells)]
    print(render_table(["probe length", "reactions"], rows))
    return 0


def _cmd_identify(args) -> int:
    from .probesim import (
        PROBE_LENGTH_SCHEDULE,
        build_random_probe_row,
        identify_server,
    )

    row = build_random_probe_row(args.profile, args.method,
                                 PROBE_LENGTH_SCHEDULE, trials=args.trials)
    ident = identify_server(row)
    print(f"construction:     {ident.construction or 'unknown'}")
    print(f"IV/salt length:   {ident.nonce_len if ident.nonce_len else 'unknown'}")
    print(f"masks ATYP:       {ident.masks_atyp}")
    print(f"error action:     {ident.error_action}")
    print(f"cipher hint:      {ident.cipher_hint or '-'}")
    print(f"compatible with:  {', '.join(ident.compatible_profiles) or '-'}")
    for note in ident.notes:
        print(f"note: {note}")
    return 0


def _cmd_sink(args) -> int:
    from .experiments import SinkExperimentConfig, run_sink_experiment

    result = run_sink_experiment(SinkExperimentConfig.table4(
        args.experiment, connections=args.connections,
        duration=args.hours * 3600.0, seed=args.seed))
    print(f"Exp {args.experiment}: {len(result.sent_payloads)} connections, "
          f"{len(result.probe_log)} probes")
    for probe_type, count in sorted(result.probes_by_type().items()):
        print(f"  {probe_type:<4} {count}")
    return 0


def _cmd_brdgrd(args) -> int:
    from .experiments import BrdgrdExperimentConfig, run_brdgrd_experiment

    duration = args.hours * 3600.0
    config = BrdgrdExperimentConfig(
        seed=args.seed, duration=duration,
        brdgrd_windows=((duration / 3, 2 * duration / 3),),
    )
    result = run_brdgrd_experiment(config)
    active, inactive = result.window_rates()
    for hour, count in enumerate(result.hourly_counts()):
        t = hour * 3600.0
        on = any(s <= t < e for s, e in config.brdgrd_windows)
        print(f"h{hour:>3} {'BRDGRD' if on else '      '} "
              f"{count:>4} {'#' * min(count, 50)}")
    print(f"\nprobes/hour: active={active:.2f} inactive={inactive:.2f}")
    return 0


def _cmd_blocking(args) -> int:
    from .experiments import BlockingExperimentConfig, run_blocking_experiment

    duration = args.days * 86400.0
    result = run_blocking_experiment(BlockingExperimentConfig(
        seed=args.seed, duration=duration,
        sensitive_periods=((duration / 3, duration / 2),)))
    blocked = {e.ip: e for e in result.block_events}
    for ip, profile in result.server_profiles.items():
        status = "BLOCKED" if ip in blocked else "up"
        print(f"{ip:<16} {profile:<16} "
              f"probes={result.probes_per_server.get(ip, 0):<5} {status}")
    return 0


def _cmd_profiles(args) -> int:
    from .shadowsocks import all_profiles

    for profile in all_profiles():
        constructions = "/".join(
            c for c, ok in (("stream", profile.supports_stream),
                            ("aead", profile.supports_aead)) if ok)
        print(f"{profile.name:<18} {profile.display:<28} {constructions:<11} "
              f"error={profile.error_action:<7} "
              f"replay_filter={'yes' if profile.replay_filter else 'no'}")
    return 0


def _cmd_ciphers(args) -> int:
    from .crypto import CIPHERS

    for name, spec in sorted(CIPHERS.items()):
        print(f"{name:<24} {spec.kind:<7} key={spec.key_len:<3} "
              f"{'salt' if spec.kind == 'aead' else 'IV'}={spec.iv_len}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
