"""The paper's prober simulator (§5.1) and the §5.2.2 identifier."""

from .attacks import AtypScanResult, RedirectResult, atyp_scan, redirect_attack
from .filterprobe import FilterProbeResult, detect_replay_filter
from .identify import Identification, PROBE_LENGTH_SCHEDULE, identify_server
from .matrix import (
    ReactionCell,
    ReactionRow,
    build_random_probe_row,
    build_replay_table,
    summarize_transitions,
)
from .reactions import ReactionKind, classify_reaction
from .simulator import ProbeResult, ProberSimulator

__all__ = [
    "AtypScanResult",
    "FilterProbeResult",
    "Identification",
    "PROBE_LENGTH_SCHEDULE",
    "ProbeResult",
    "ProberSimulator",
    "ReactionCell",
    "ReactionKind",
    "ReactionRow",
    "build_random_probe_row",
    "build_replay_table",
    "RedirectResult",
    "atyp_scan",
    "classify_reaction",
    "detect_replay_filter",
    "identify_server",
    "redirect_attack",
    "summarize_transitions",
]
