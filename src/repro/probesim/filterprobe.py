"""Detecting a replay filter without knowing the password (§5.3).

The paper: "with stream ciphers, an attacker can detect whether a replay
filter exists... send the same random probe to the server twice.  If the
first probe happens to cause an outgoing connection, while the second is
blocked by the replay filter, the difference ... will tell the attacker
that a replay filter is in place."  It also notes ~10% of NR2 probes were
observed to repeat, consistent with the GFW running this check.

Strategy implemented here:

1. send random probes of a length that can hold a complete IPv4 target
   spec until one draws FIN/ACK — evidence the server decrypted it into
   a target and tried (and failed) to connect;
2. re-send that *exact* probe: a filterless server repeats the FIN/ACK
   dance; a filtering server now treats the bytes as a replay and reacts
   differently (RST or silence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..gfw.probes import Probe, ProbeType
from .reactions import ReactionKind
from .simulator import ProberSimulator

__all__ = ["FilterProbeResult", "detect_replay_filter"]


@dataclass
class FilterProbeResult:
    """Outcome of the duplicate-probe experiment."""

    filter_detected: Optional[bool]  # None: no conclusive probe pair found
    attempts: int                    # probes sent while hunting for FIN/ACK
    first_reaction: Optional[str] = None
    second_reaction: Optional[str] = None


def detect_replay_filter(
    simulator: ProberSimulator,
    probe_length: int = 33,
    max_attempts: int = 120,
) -> FilterProbeResult:
    """Run the §5.3 duplicate-probe check against one server model.

    ``probe_length`` defaults to 33 — an NR1 length comfortably past
    every stream IV+7 threshold, so any stream server may produce the
    tell-tale FIN/ACK.
    """
    for attempt in range(1, max_attempts + 1):
        payload = simulator.forge.random_payload(probe_length)
        first = simulator.send_probe(Probe(ProbeType.NR1, payload))
        if first.reaction != ReactionKind.FINACK:
            continue
        # Same bytes again: for a filtering server the IV is now known.
        second = simulator.send_probe(Probe(ProbeType.NR1, payload))
        return FilterProbeResult(
            filter_detected=second.reaction != ReactionKind.FINACK,
            attempts=attempt,
            first_reaction=first.reaction,
            second_reaction=second.reaction,
        )
    return FilterProbeResult(filter_detected=None, attempts=max_attempts)
