"""The paper's prober simulator (§5.1).

Builds a minimal world around a single Shadowsocks server, sends it any
of the seven probe types (plus arbitrary-length random probes), and
records the server's reaction using the same taxonomy as Figure 10:
TIMEOUT / RST / FIN/ACK / DATA.

Unlike the GFW model, the simulator is an *experimenter's tool*: probes
are sent deterministically, not sampled, so every implementation corner
case can be exercised locally and efficiently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..gfw.probes import Probe, ProbeForge, ProbeType
from ..net import Host, Network, Simulator
from ..shadowsocks import ShadowsocksClient, ShadowsocksServer
from .reactions import ReactionKind, classify_reaction

__all__ = ["ProbeResult", "ProberSimulator"]

SERVER_IP = "198.51.100.77"
CLIENT_IP = "192.0.2.77"
PROBER_IP = "192.0.2.99"
WEB_IP = "198.18.0.77"
SS_PORT = 8388
PROBER_TIMEOUT = 10.0  # the GFW gives up in <10 s; we match that horizon


@dataclass
class ProbeResult:
    probe: Probe
    reaction: str              # ReactionKind value
    elapsed: float             # time from probe data sent to reaction
    response_bytes: int = 0

    def __repr__(self):
        return f"<{self.probe.probe_type} len={len(self.probe.payload)} -> {self.reaction}>"


class ProberSimulator:
    """Probe one (implementation profile, cipher method) server model."""

    def __init__(self, profile: str, method: str, *, password: str = "pw",
                 seed: int = 0, timed_replay_window: Optional[float] = None):
        self.profile = profile  # registry name or a BehaviorProfile object
        self.profile_name = profile if isinstance(profile, str) else profile.name
        self.method = method
        self.password = password
        self.seed = seed
        self.timed_replay_window = timed_replay_window
        self.rng = random.Random(seed)
        self.forge = ProbeForge(random.Random(seed + 1))
        self._build()

    def _build(self) -> None:
        self.sim = Simulator()
        self.net = Network(self.sim)
        self.server_host = Host(self.sim, self.net, SERVER_IP, "server")
        self.client_host = Host(self.sim, self.net, CLIENT_IP, "client")
        self.prober_host = Host(self.sim, self.net, PROBER_IP, "prober")
        self.web_host = Host(self.sim, self.net, WEB_IP, "web")
        self.net.register_name("target.example", WEB_IP)

        def web_app(conn):
            conn.on_data = lambda data: conn.send(b"HTTP/1.1 200 OK\r\n\r\nresponse")

        self.web_host.listen(80, web_app)
        self.server = ShadowsocksServer(
            self.server_host, SS_PORT, self.password, self.method,
            self.profile, rng=random.Random(self.seed + 2),
            timed_replay_window=self.timed_replay_window,
        )
        self.client = ShadowsocksClient(
            self.client_host, SERVER_IP, SS_PORT, self.password, self.method,
            rng=random.Random(self.seed + 3),
        )

    # ------------------------------------------------------------- recording

    def record_legitimate_payload(self, app_payload: bytes = b"GET / HTTP/1.1\r\n\r\n",
                                  target: Tuple[str, int] = ("target.example", 80)) -> bytes:
        """Run one legitimate connection; return its first wire payload.

        This is the payload the GFW would have recorded for replaying.
        """
        self.client.open(target[0], target[1], app_payload)
        self.sim.run(until=self.sim.now + 5.0)
        for rec in self.client_host.capture.sent():
            if rec.segment.is_data and rec.segment.dst_port == SS_PORT:
                payload = bytes(rec.segment.payload)
                # Register the original send time so TimedReplayFilter can
                # model the client-embedded timestamp (see server engine).
                registry = getattr(self.server, "timestamp_registry", None)
                if registry is None:
                    registry = {}
                    self.server.timestamp_registry = registry
                spec = self.server.cipher_spec
                registry[payload[: spec.iv_len]] = rec.time
                return payload
        raise RuntimeError("legitimate connection produced no data packet")

    # ---------------------------------------------------------------- probing

    def send_probe(self, probe: Probe) -> ProbeResult:
        """Send one probe and classify the server's reaction."""
        conn = self.prober_host.connect(SERVER_IP, SS_PORT)
        events: List[Tuple[float, str]] = []
        start_holder = {}

        def on_connected():
            start_holder["t"] = self.sim.now
            conn.send(probe.payload)

        def on_data(data: bytes):
            events.append((self.sim.now, "data:%d" % len(data)))

        def on_fin():
            events.append((self.sim.now, "fin"))
            conn.close()

        def on_reset():
            events.append((self.sim.now, "rst"))

        conn.on_connected = on_connected
        conn.on_data = on_data
        conn.on_remote_fin = on_fin
        conn.on_reset = on_reset

        deadline = self.sim.now + PROBER_TIMEOUT + 5.0
        self.sim.run(until=deadline)
        if conn.state not in ("CLOSED",):
            conn.close()
            self.sim.run(until=self.sim.now + 2.0)
        start = start_holder.get("t", deadline)
        reaction, elapsed = classify_reaction(events, start, PROBER_TIMEOUT)
        response_bytes = sum(
            int(tag.split(":")[1]) for _, tag in events if tag.startswith("data:")
        )
        return ProbeResult(probe=probe, reaction=reaction, elapsed=elapsed,
                           response_bytes=response_bytes)

    def send_random_probe(self, length: int) -> ProbeResult:
        payload = self.forge.random_payload(length)
        return self.send_probe(Probe(ProbeType.NR1 if length in
                                     (7, 8, 9, 11, 12, 13, 15, 16, 17, 21, 22, 23,
                                      32, 33, 34, 40, 41, 42, 48, 49, 50)
                                     else ProbeType.NR2, payload))

    def random_probe_sweep(self, lengths, trials: int = 1) -> Dict[int, List[ProbeResult]]:
        """Random probes of each length, ``trials`` independent times."""
        results: Dict[int, List[ProbeResult]] = {}
        for length in lengths:
            results[length] = [self.send_random_probe(length) for _ in range(trials)]
        return results

    def replay_battery(self, payload: bytes,
                       types=(ProbeType.R1, ProbeType.R2, ProbeType.R3,
                              ProbeType.R4, ProbeType.R5)) -> Dict[str, ProbeResult]:
        """One probe of each replay type forged from ``payload``."""
        return {t: self.send_probe(self.forge.replay(payload, t)) for t in types}
