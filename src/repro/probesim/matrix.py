"""Reaction matrices: the machinery behind Figure 10 and Table 5.

A *cell* aggregates the server's reactions to repeated random probes of
one length; a *row* sweeps lengths for one (implementation, cipher)
pair.  Rows render to the same compact notation the paper's figure uses
("TIMEOUT", "RST", "RST (above 13/16) or TIMEOUT/FIN-ACK (below 3/16)").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..crypto import get_spec
from ..gfw.probes import ProbeType
from .reactions import ReactionKind
from .simulator import ProberSimulator

__all__ = ["ReactionCell", "ReactionRow", "build_random_probe_row",
           "build_replay_table", "summarize_transitions"]


@dataclass
class ReactionCell:
    """Reactions observed for one probe length."""

    length: int
    counts: Counter = field(default_factory=Counter)

    def add(self, reaction: str) -> None:
        self.counts[reaction] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, reaction: str) -> float:
        return self.counts.get(reaction, 0) / self.total if self.total else 0.0

    @property
    def dominant(self) -> str:
        return self.counts.most_common(1)[0][0] if self.counts else "-"

    def label(self) -> str:
        """Figure-10-style cell label."""
        if not self.counts:
            return "-"
        if len(self.counts) == 1:
            return next(iter(self.counts))
        parts = [f"{r} ({c}/{self.total})" for r, c in self.counts.most_common()]
        return " or ".join(parts)


@dataclass
class ReactionRow:
    """One sweep row: (implementation, method) over many probe lengths."""

    profile: str
    method: str
    nonce_len: int  # IV or salt length
    cells: Dict[int, ReactionCell] = field(default_factory=dict)

    def cell(self, length: int) -> ReactionCell:
        if length not in self.cells:
            self.cells[length] = ReactionCell(length)
        return self.cells[length]

    def dominant_by_length(self) -> Dict[int, str]:
        return {length: cell.dominant for length, cell in sorted(self.cells.items())}

    def first_length_with(self, reaction: str, min_fraction: float = 0.5) -> Optional[int]:
        for length in sorted(self.cells):
            if self.cells[length].fraction(reaction) >= min_fraction:
                return length
        return None


def build_random_probe_row(
    profile: str,
    method: str,
    lengths: Iterable[int],
    trials: int = 8,
    seed: int = 0,
    bus=None,
) -> ReactionRow:
    """Probe a fresh server model with random payloads of each length.

    ``bus`` (an :class:`repro.runtime.events.EventBus`) absorbs the
    sweep's instrumentation tallies when provided.
    """
    spec = get_spec(method)
    profile_name = profile if isinstance(profile, str) else profile.name
    row = ReactionRow(profile=profile_name, method=method, nonce_len=spec.iv_len)
    simulator = ProberSimulator(profile, method, seed=seed)
    for length in lengths:
        for t in range(trials):
            result = simulator.send_random_probe(length)
            row.cell(length).add(result.reaction)
    if bus is not None:
        bus.absorb(simulator.sim.bus)
    return row


def build_replay_table(
    profiles_methods: Sequence[Tuple[str, str]],
    trials: int = 6,
    seed: int = 0,
    bus=None,
) -> Dict[Tuple[str, str], Dict[str, Counter]]:
    """Table 5: reactions to identical vs byte-changed replays.

    Returns ``{(profile, method): {"identical": Counter, "byte-changed":
    Counter}}``.  ``bus`` absorbs per-world instrumentation when given.
    """
    table: Dict[Tuple[str, str], Dict[str, Counter]] = {}
    for profile, method in profiles_methods:
        identical: Counter = Counter()
        changed: Counter = Counter()
        for t in range(trials):
            sim = ProberSimulator(profile, method, seed=seed + 101 * t)
            payload = sim.record_legitimate_payload()
            results = sim.replay_battery(payload)
            identical[results[ProbeType.R1].reaction] += 1
            for probe_type in (ProbeType.R2, ProbeType.R3, ProbeType.R5):
                changed[results[probe_type].reaction] += 1
            # R4 behaves differently by construction (byte 16 may sit inside
            # or beyond the nonce) — still a byte-changed replay.
            changed[results[ProbeType.R4].reaction] += 1
            if bus is not None:
                bus.absorb(sim.sim.bus)
        table[(profile, method)] = {"identical": identical, "byte-changed": changed}
    return table


def summarize_transitions(row: ReactionRow) -> List[Tuple[int, str]]:
    """Compress a row into (threshold_length, label) change points."""
    out: List[Tuple[int, str]] = []
    last_label = None
    for length in sorted(row.cells):
        label = row.cells[length].dominant
        if label != last_label:
            out.append((length, label))
            last_label = label
    return out
