"""Historical active attacks on Shadowsocks stream ciphers (§2.1).

* :func:`atyp_scan` — BreakWa11's 2015 probe: exploit ciphertext
  malleability to try every value of the address-type byte of a recorded
  connection.  Exactly 3 of the 256 (or, with libev's mask, 48 of 256)
  variants parse as a valid target, and those connections end
  differently from the rest — a fraction the prober can measure.
* :func:`redirect_attack` — Zhiniang Peng's 2020 decryption oracle:
  rewrite the target specification inside a recorded ciphertext (XOR
  malleability; exact for CTR/ChaCha keystream ciphers) so the server
  connects to the *attacker* and faithfully streams the decrypted
  remainder of the recorded connection to them — full plaintext
  recovery without the password.

Both attacks presuppose the unauthenticated stream construction; AEAD
ciphers reject every forgery, which is why the paper's §7.2 tells users
to abandon stream ciphers entirely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..crypto import get_spec
from ..crypto.registry import CipherKind
from ..gfw.probes import Probe, ProbeType
from ..shadowsocks.spec import encode_target
from .reactions import ReactionKind
from .simulator import PROBER_IP, ProberSimulator

__all__ = ["AtypScanResult", "atyp_scan", "RedirectResult", "redirect_attack"]

# Keystream-XOR stream methods, where a ciphertext bit flip lands on
# exactly one plaintext bit (CFB garbles the following block instead).
_XOR_STREAM_METHODS = ("aes-128-ctr", "aes-192-ctr", "aes-256-ctr",
                       "chacha20", "chacha20-ietf")


@dataclass
class AtypScanResult:
    reactions_by_delta: Dict[int, str] = field(default_factory=dict)

    @property
    def rst_fraction(self) -> float:
        total = len(self.reactions_by_delta)
        rst = sum(1 for r in self.reactions_by_delta.values()
                  if r == ReactionKind.RST)
        return rst / total if total else 0.0

    @property
    def distinct_count(self) -> int:
        """Deltas that did NOT draw the common (RST) reaction."""
        return sum(1 for r in self.reactions_by_delta.values()
                   if r != ReactionKind.RST)

    def infers_mask(self) -> Optional[bool]:
        """~13/16 RST means masked; ~253/256 means unmasked."""
        if not self.reactions_by_delta:
            return None
        return self.rst_fraction < 0.93


def atyp_scan(simulator: ProberSimulator, recorded: bytes,
              deltas: Optional[List[int]] = None) -> AtypScanResult:
    """BreakWa11's scan: XOR every delta into the address-type byte.

    ``recorded`` is a captured first payload from a genuine connection
    (whose real ATYP is 0x03, hostname, in the simulator's recordings).
    """
    spec = get_spec(simulator.method)
    if spec.kind != CipherKind.STREAM:
        raise ValueError("the ATYP scan only applies to stream ciphers")
    result = AtypScanResult()
    for delta in deltas if deltas is not None else range(1, 256):
        mutated = bytearray(recorded)
        mutated[spec.iv_len] ^= delta
        probe = Probe(ProbeType.R2, bytes(mutated), source_payload=recorded,
                      mutated_offsets=(spec.iv_len,))
        outcome = simulator.send_probe(probe)
        result.reactions_by_delta[delta] = outcome.reaction
    return result


@dataclass
class RedirectResult:
    succeeded: bool
    recovered_plaintext: bytes = b""
    expected_plaintext: bytes = b""
    reaction: Optional[str] = None


def redirect_attack(
    simulator: ProberSimulator,
    recorded: bytes,
    known_target: str,
    known_port: int,
    app_payload: bytes,
    attacker_port: int = 4444,
) -> RedirectResult:
    """Peng's redirect attack: decrypt a recorded connection via the server.

    The attacker knows (or guesses) the original target specification —
    here the hostname the victim visited — and XORs the spec prefix into
    one pointing at the attacker's own listener.  The proxy then delivers
    the decrypted remainder of the recorded stream straight to the
    attacker.
    """
    spec = get_spec(simulator.method)
    if spec.kind != CipherKind.STREAM:
        raise ValueError("the redirect attack only applies to stream ciphers")
    if simulator.method not in _XOR_STREAM_METHODS:
        raise ValueError(
            f"{simulator.method} is not a pure keystream cipher; the XOR "
            "rewrite would garble the following block (CFB)"
        )
    known_spec = encode_target(known_target, known_port)
    new_spec = encode_target(PROBER_IP, attacker_port)  # IPv4: 7 bytes
    if len(new_spec) > len(known_spec):
        raise ValueError("attacker spec must not be longer than the original")

    crafted = bytearray(recorded)
    for i, (old, new) in enumerate(zip(known_spec, new_spec)):
        crafted[spec.iv_len + i] ^= old ^ new

    received = bytearray()

    def attacker_app(conn):
        conn.on_data = received.extend
        conn.on_remote_fin = conn.close

    simulator.prober_host.listen(attacker_port, attacker_app)
    try:
        outcome = simulator.send_probe(
            Probe(ProbeType.R2, bytes(crafted), source_payload=recorded))
    finally:
        simulator.prober_host.unlisten(attacker_port)

    # What the server forwards: the tail of the original spec (now mere
    # payload bytes) followed by the victim's application data.
    expected = known_spec[len(new_spec):] + app_payload
    return RedirectResult(
        succeeded=bytes(received) == expected and len(expected) > 0,
        recovered_plaintext=bytes(received),
        expected_plaintext=expected,
        reaction=outcome.reaction,
    )
