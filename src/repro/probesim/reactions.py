"""Reaction taxonomy and classification (Figure 10's legend).

* ``TIMEOUT`` — the server neither closed nor answered before the prober
  gave up (<10 s): with a 60 s server idle timeout, the prober is always
  the first to send FIN/ACK.
* ``RST`` — the server reset the connection.
* ``FINACK`` — the server was first to close gracefully.
* ``DATA`` — the server answered with data (only servers lacking replay
  protection do this, and only to valid replays).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["ReactionKind", "classify_reaction"]


class ReactionKind:
    TIMEOUT = "TIMEOUT"
    RST = "RST"
    FINACK = "FIN/ACK"
    DATA = "DATA"


def classify_reaction(events: List[Tuple[float, str]], start: float,
                      prober_timeout: float) -> Tuple[str, float]:
    """Classify from the prober-side event log.

    ``events`` is a list of (time, tag) with tags ``"rst"``, ``"fin"``,
    or ``"data:<n>"``.  Only events within the prober's patience window
    count; a server that RSTs after 60 s still reads as TIMEOUT to a
    prober that left at 10 s.
    """
    cutoff = start + prober_timeout
    for time, tag in events:
        if time > cutoff:
            break
        if tag.startswith("data:"):
            return ReactionKind.DATA, time - start
        if tag == "rst":
            return ReactionKind.RST, time - start
        if tag == "fin":
            return ReactionKind.FINACK, time - start
    return ReactionKind.TIMEOUT, prober_timeout
