"""Statistical server identification from probe reactions (§5.2.2).

Implements the attacker the paper describes: send random probes of
varying lengths, collect the reaction statistics, and infer

* whether the server speaks the stream or AEAD construction,
* the IV/salt length (and hence, sometimes, the exact cipher — a 12-byte
  IV can only be ``chacha20-ietf``),
* whether the implementation masks the address-type byte (RST fraction
  near 1−3/16 ≈ 0.81 rather than 1−3/256 ≈ 0.99),
* whether errors RST or time out (old vs new implementation generations),
* the Outline v1.0.6 FIN/ACK-at-exactly-50 quirk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .matrix import ReactionRow
from .reactions import ReactionKind

__all__ = ["Identification", "identify_server", "PROBE_LENGTH_SCHEDULE"]

# Lengths that straddle every threshold of interest: stream IVs (8/12/16),
# first complete IPv4 specs (15/19/23), AEAD headers (50/58/66) and first
# chunk envelopes (51/59/67), plus the paper's own NR1/NR2 set.
PROBE_LENGTH_SCHEDULE = (
    1, 7, 8, 9, 11, 12, 13, 15, 16, 17, 19, 20, 21, 22, 23, 24,
    32, 33, 34, 40, 41, 42, 48, 49, 50, 51, 52, 58, 59, 60, 66, 67, 68,
    73, 100, 221,
)

_STREAM_IV_LENGTHS = (8, 12, 16)
_AEAD_SALT_LENGTHS = (16, 24, 32)


@dataclass
class Identification:
    construction: Optional[str] = None   # "stream" | "aead" | None (unknown)
    nonce_len: Optional[int] = None      # inferred IV or salt length
    masks_atyp: Optional[bool] = None
    error_action: Optional[str] = None   # "rst" | "timeout"
    quirk_finack_at_header: bool = False
    cipher_hint: Optional[str] = None
    compatible_profiles: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


def identify_server(row: ReactionRow) -> Identification:
    """Infer implementation facts from a random-probe reaction row."""
    ident = Identification()
    lengths = sorted(row.cells)
    rst_lengths = [n for n in lengths if row.cells[n].fraction(ReactionKind.RST) > 0]

    if not rst_lengths:
        ident.error_action = "timeout"
        ident.notes.append(
            "server never resets: a post-fix implementation "
            "(Shadowsocks-libev >=3.3.1 or OutlineVPN >=1.0.7)"
        )
        fin50 = [n for n in lengths
                 if row.cells[n].fraction(ReactionKind.FINACK) > 0.9]
        if fin50:
            ident.quirk_finack_at_header = True
        # FIN/ACKs at >= IV+7 lengths betray the stream construction even
        # without RSTs (garbage target specs -> failed outbound connects).
        fin_lengths = [n for n in lengths
                       if 0 < row.cells[n].fraction(ReactionKind.FINACK) < 0.9]
        if fin_lengths:
            ident.construction = "stream"
            ident.nonce_len = _infer_stream_iv_from_finack(fin_lengths)
        _fill_profiles(ident)
        return ident

    ident.error_action = "rst"
    first_rst = rst_lengths[0]

    # Outline v1.0.6: pure TIMEOUT below 50, FIN/ACK at exactly 50, RST above.
    cell50 = row.cells.get(50)
    if (cell50 is not None and cell50.fraction(ReactionKind.FINACK) > 0.9
            and first_rst > 50):
        ident.construction = "aead"
        ident.nonce_len = 32
        ident.quirk_finack_at_header = True
        ident.masks_atyp = False
        ident.cipher_hint = "chacha20-ietf-poly1305"
        ident.notes.append("FIN/ACK at exactly salt+18=50: OutlineVPN v1.0.6")
        _fill_profiles(ident)
        return ident

    # The *position* of the RST threshold is the robust discriminator:
    # stream servers start resetting at IV+1 (9/13/17), AEAD servers at
    # salt+35 (51/59/67).  The RST *fraction* (pooled over every length
    # past the threshold, for sample efficiency) then reveals masking.
    pooled_rst = pooled_total = 0
    for n in lengths:
        if n >= first_rst:
            cell = row.cells[n]
            pooled_rst += cell.counts.get(ReactionKind.RST, 0)
            pooled_total += cell.total
    rst_frac = pooled_rst / pooled_total if pooled_total else 0.0

    if first_rst - 1 in _STREAM_IV_LENGTHS and first_rst - 35 not in _AEAD_SALT_LENGTHS:
        ident.construction = "stream"
        ident.nonce_len = first_rst - 1
        if ident.nonce_len == 12:
            ident.cipher_hint = "chacha20-ietf"
            ident.notes.append(
                "12-byte IV: the only such stream cipher is chacha20-ietf"
            )
        # Masked implementations reset ~13/16 of probes; unmasked ~253/256.
        ident.masks_atyp = rst_frac < 0.93
    elif first_rst - 35 in _AEAD_SALT_LENGTHS:
        ident.construction = "aead"
        ident.nonce_len = first_rst - 35
        if ident.nonce_len == 24:
            ident.cipher_hint = "aes-192-gcm"
        ident.masks_atyp = None  # not observable through AEAD
    elif rst_frac > 0.97:
        ident.construction = "aead"
        ident.masks_atyp = None
    else:
        ident.construction = "stream"
        ident.masks_atyp = rst_frac < 0.93
    _fill_profiles(ident)
    return ident


def _infer_stream_iv_from_finack(fin_lengths: List[int]) -> Optional[int]:
    """Shortest FIN/ACK length is ~IV+7 (a complete IPv4 spec)."""
    candidates = [fin_lengths[0] - delta for delta in (7, 5, 4)]
    for candidate in candidates:
        if candidate in _STREAM_IV_LENGTHS:
            return candidate
    return None


def _fill_profiles(ident: Identification) -> None:
    from ..shadowsocks.implementations.registry import all_profiles

    for profile in all_profiles():
        if ident.error_action == "rst" and profile.error_action != "rst":
            continue
        if ident.error_action == "timeout" and profile.error_action != "timeout":
            continue
        if ident.construction == "stream" and not profile.supports_stream:
            continue
        if ident.construction == "aead" and not profile.supports_aead:
            continue
        if ident.quirk_finack_at_header != profile.finack_on_exact_header:
            continue
        if ident.masks_atyp is not None and ident.construction == "stream":
            if profile.mask_atyp != ident.masks_atyp:
                continue
        ident.compatible_profiles.append(profile.name)
