"""Tor bridge transports (vanilla Tor, obfs3, obfs4) and their wire model.

The protocol plane's proof case: the GFW's Tor active probing (Winter &
Lindskog) against bridges of graded probe resistance, with
probe-to-block delay dynamics per Fifield & Tsai.  See
:mod:`repro.gfw.probing` for the censor side.
"""

from .client import ObfsClient, ObfsSession
from .server import OBFS_PROFILES, ObfsServer, ObfsServerSession
from .wire import (
    OBFS3_HANDSHAKE_LEN,
    FrameCodec,
    node_key,
    obfs4_handshake,
    parse_versions_cell,
    tor_versions_cell,
)

__all__ = [
    "FrameCodec",
    "OBFS3_HANDSHAKE_LEN",
    "OBFS_PROFILES",
    "ObfsClient",
    "ObfsServer",
    "ObfsServerSession",
    "ObfsSession",
    "node_key",
    "obfs4_handshake",
    "parse_versions_cell",
    "tor_versions_cell",
]
