"""Tor bridge server: three transports, three probe reactions.

The bridge relays framed application data exactly like the Shadowsocks
server relays decrypted data; what differs is the handshake, and
therefore what the GFW's active probes observe:

==============  =======================  ==========================
profile         forged VERSIONS probe    garbage binary probe
==============  =======================  ==========================
tor-vanilla     VERSIONS reply (DATA)    parse failure -> FIN/ACK
obfs3           too short -> TIMEOUT     >= 192 bytes -> DATA reply
obfs4           silent drain (TIMEOUT)   silent drain (TIMEOUT)
==============  =======================  ==========================

obfs3 answers *any* correctly-sized block because UniformDH gives the
responder nothing to authenticate — the property the GFW exploited to
confirm obfs2/obfs3 bridges.  obfs4's handshake MAC is keyed on the
out-of-band node id, so probes decode to garbage and the server reads
forever (Winter & Lindskog's probe-resistance design).
"""

from __future__ import annotations

import random
from typing import List, Optional

from .wire import (
    OBFS3_HANDSHAKE_LEN,
    OBFS4_MAC_LEN,
    FrameCodec,
    byte_draws,
    node_key,
    obfs4_decode_pad_len,
    obfs4_handshake,
    obfs4_mac,
    parse_versions_cell,
    tor_versions_cell,
)

__all__ = ["ObfsServer", "ObfsServerSession", "OBFS_PROFILES"]

OBFS_PROFILES = ("tor-vanilla", "obfs3", "obfs4")


class ObfsServer:
    """A Tor bridge bound to one host:port, speaking one transport."""

    def __init__(
        self,
        host,
        port: int,
        node_id: str = "bridge",
        profile: str = "obfs4",
        *,
        rng: Optional[random.Random] = None,
        connect_timeout: float = 6.0,
        dns_delay: float = 0.05,
        idle_timeout: float = 120.0,
    ):
        if profile not in OBFS_PROFILES:
            raise ValueError(
                f"unknown obfs profile {profile!r}; known: {OBFS_PROFILES}")
        self.host = host
        self.port = port
        self.node_id = node_id
        self.profile = profile
        self.key = node_key(node_id)
        self.rng = rng or random.Random(0x0BF4)
        self.connect_timeout = connect_timeout
        self.dns_delay = dns_delay
        self.idle_timeout = idle_timeout
        self.sessions: List[ObfsServerSession] = []
        host.listen(port, self._accept)

    def _accept(self, conn) -> None:
        self.host.sim.bus.incr("obfs.session.accepted")
        self.sessions.append(ObfsServerSession(self, conn))

    def stop(self) -> None:
        self.host.unlisten(self.port)


class ObfsServerSession:
    """One accepted connection to the bridge."""

    HANDSHAKE = "handshake"
    RELAY_TARGET = "relay-target"   # handshake done, awaiting target frame
    CONNECTING = "connecting"
    PROXY = "proxy"
    DRAIN = "drain"                 # probe-resistant silent read-forever
    DONE = "done"

    def __init__(self, server: ObfsServer, conn):
        self.server = server
        self.conn = conn
        self.state = self.HANDSHAKE
        self._buffer = bytearray()
        self._pending = bytearray()   # frame bytes queued behind the dial
        self.remote = None
        self._idle_event = None
        self._connect_event = None
        # Frame codecs are armed only after a successful handshake: the
        # keystream must not advance on probe garbage.
        self._rx: Optional[FrameCodec] = None
        self._tx: Optional[FrameCodec] = None
        conn.on_data = self._on_data
        conn.on_remote_fin = self._on_client_fin
        conn.on_reset = self._teardown
        self._arm_idle()

    @property
    def sim(self):
        return self.server.host.sim

    # ------------------------------------------------------------- plumbing

    def _arm_idle(self) -> None:
        if self._idle_event is not None:
            self._idle_event.cancel()
        self._idle_event = self.sim.schedule(self.server.idle_timeout,
                                             self._idle_timeout)

    def _idle_timeout(self) -> None:
        if self.state != self.DONE:
            self.state = self.DONE
            self.conn.close()
            if self.remote is not None:
                self.remote.close()

    def _teardown(self) -> None:
        self.state = self.DONE
        if self._idle_event is not None:
            self._idle_event.cancel()
        if self._connect_event is not None:
            self._connect_event.cancel()
        if self.remote is not None and self.remote.state != "CLOSED":
            self.remote.abort()
            self.remote = None

    def _on_client_fin(self) -> None:
        if self.remote is not None and self.remote.is_open:
            self.remote.close()
        if self.state != self.DONE:
            self.state = self.DONE
            self.conn.close()
        if self._idle_event is not None:
            self._idle_event.cancel()

    def _close_gracefully(self) -> None:
        """Parse failure on a parsing transport: FIN/ACK, like a real relay."""
        self.sim.bus.incr("obfs.session.rejected")
        self.state = self.DONE
        if self._idle_event is not None:
            self._idle_event.cancel()
        self.conn.close()

    def _drain(self) -> None:
        """Probe resistance: swallow everything, answer nothing."""
        self.sim.bus.incr("obfs.session.drained")
        self.state = self.DRAIN

    # ------------------------------------------------------------ data path

    def _on_data(self, data: bytes) -> None:
        self._arm_idle()
        if self.state in (self.DRAIN, self.DONE):
            return
        if self.state == self.HANDSHAKE:
            self._buffer.extend(data)
            self._try_handshake()
            return
        self._feed_frames(data)

    # ---------------------------------------------------------- handshakes

    def _try_handshake(self) -> None:
        profile = self.server.profile
        if profile == "tor-vanilla":
            self._handshake_vanilla()
        elif profile == "obfs3":
            self._handshake_obfs3()
        else:
            self._handshake_obfs4()

    def _finish_handshake(self, consumed: int, reply: bytes) -> None:
        self.conn.send(reply)
        self._rx = FrameCodec(self.server.key, "c2s")
        self._tx = FrameCodec(self.server.key, "s2c")
        self.state = self.RELAY_TARGET
        self.sim.bus.incr("obfs.session.handshake")
        rest = bytes(self._buffer[consumed:])
        self._buffer.clear()
        if rest:
            self._feed_frames(rest)

    def _handshake_vanilla(self) -> None:
        data = bytes(self._buffer)
        if len(data) < 5:
            return  # not even a cell header yet
        versions = parse_versions_cell(data)
        if versions is None:
            header_ok = (data[0] == 0 and data[1] == 0 and data[2] == 7)
            body_len = int.from_bytes(data[3:5], "big")
            if header_ok and body_len % 2 == 0 and len(data) < 5 + body_len:
                return  # plausible cell, still arriving
            # Not a Tor link handshake: a relay closes the connection.
            self._close_gracefully()
            return
        body_len = int.from_bytes(data[3:5], "big")
        self._finish_handshake(5 + body_len, tor_versions_cell())

    def _handshake_obfs3(self) -> None:
        if len(self._buffer) < OBFS3_HANDSHAKE_LEN:
            return  # UniformDH block still arriving (or a too-short probe)
        # Nothing to authenticate: any 192-byte block draws the reply.
        reply = byte_draws(self.server.rng, OBFS3_HANDSHAKE_LEN)
        self._finish_handshake(OBFS3_HANDSHAKE_LEN, reply)

    def _handshake_obfs4(self) -> None:
        if len(self._buffer) < 2:
            return
        key = self.server.key
        pad_len = obfs4_decode_pad_len(bytes(self._buffer[:2]), key, "c2s")
        total = 2 + pad_len + OBFS4_MAC_LEN
        if len(self._buffer) < total:
            return
        body = bytes(self._buffer[:total])
        if obfs4_mac(key, body[:-OBFS4_MAC_LEN]) != body[-OBFS4_MAC_LEN:]:
            # No node secret, no service: read forever, answer nothing.
            self._drain()
            return
        self._finish_handshake(total,
                               obfs4_handshake(key, "s2c", self.server.rng))

    # -------------------------------------------------------------- framing

    def _feed_frames(self, data: bytes) -> None:
        assert self._rx is not None
        for frame in self._rx.feed(data):
            self._handle_frame(frame)

    def _handle_frame(self, frame: bytes) -> None:
        if self.state == self.RELAY_TARGET:
            self._open_target(frame)
        elif self.state == self.CONNECTING:
            self._pending.extend(frame)
        elif self.state == self.PROXY and self.remote is not None:
            self.remote.send(frame)

    # --------------------------------------------------------------- target

    def _open_target(self, frame: bytes) -> None:
        if len(frame) < 4:
            self._close_gracefully()
            return
        host_len = int.from_bytes(frame[:2], "big")
        if len(frame) < 2 + host_len + 2:
            self._close_gracefully()
            return
        try:
            hostname = frame[2:2 + host_len].decode("utf-8")
        except UnicodeDecodeError:
            self._close_gracefully()
            return
        port = int.from_bytes(frame[2 + host_len:4 + host_len], "big")
        self.state = self.CONNECTING
        ip = self.server.host.network.resolve(hostname)
        if ip is None:
            self._connect_event = self.sim.schedule(self.server.dns_delay,
                                                    self._connect_failed)
            return
        self._dial(ip, port)

    def _dial(self, ip: str, port: int) -> None:
        try:
            self.remote = self.server.host.connect(ip, port)
        except ValueError:
            self._connect_event = self.sim.schedule(0.0, self._connect_failed)
            return
        self.remote.on_connected = self._connect_succeeded
        self.remote.on_reset = self._connect_failed
        self._connect_event = self.sim.schedule(self.server.connect_timeout,
                                                self._connect_failed)

    def _connect_failed(self) -> None:
        if self.state != self.CONNECTING:
            return
        if self._connect_event is not None:
            self._connect_event.cancel()
        if (self.remote is not None and not self.remote.reset_received
                and self.remote.state != "CLOSED"):
            self.remote.abort()
        self.remote = None
        self.state = self.DONE
        if self._idle_event is not None:
            self._idle_event.cancel()
        self.conn.close()

    def _connect_succeeded(self) -> None:
        if self.state != self.CONNECTING:
            if self.remote is not None and self.remote.state != "CLOSED":
                self.remote.abort()
            return
        if self._connect_event is not None:
            self._connect_event.cancel()
        self.state = self.PROXY
        self.sim.bus.incr("obfs.session.proxied")
        remote = self.remote
        remote.on_data = self._proxy_remote_data
        remote.on_remote_fin = self._remote_closed
        remote.on_reset = self._remote_reset
        if self._pending:
            remote.send(bytes(self._pending))
            self._pending.clear()

    def _proxy_remote_data(self, data: bytes) -> None:
        assert self._tx is not None
        self.conn.send(self._tx.encode(data))
        self._arm_idle()

    def _remote_closed(self) -> None:
        if self.state == self.PROXY:
            self.state = self.DONE
            self.conn.close()
            if self._idle_event is not None:
                self._idle_event.cancel()

    def _remote_reset(self) -> None:
        if self.state == self.PROXY:
            self.state = self.DONE
            self.conn.abort()
            if self._idle_event is not None:
                self._idle_event.cancel()
