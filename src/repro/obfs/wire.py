"""Wire formats for the Tor bridge transports (model, not the real thing).

Three handshakes, graded by probe resistance (Winter & Lindskog):

* **tor-vanilla** — the link handshake opens with a plaintext VERSIONS
  cell (``CIRCID(2)=0 | CMD(1)=7 | LEN(2) | LEN/2 big-endian u16
  versions``), the DPI fingerprint the GFW matches *and* the probe it
  forges to confirm a suspected bridge.
* **obfs3** — a UniformDH-style handshake: a fixed-size block of
  uniformly random bytes.  Crucially the responder cannot authenticate
  the initiator — *any* block of the right size draws a reply, which is
  exactly why the GFW could actively probe obfs2/obfs3.
* **obfs4** — adds an initiator MAC keyed on the bridge's out-of-band
  node id: probes without the secret decode to garbage and the server
  silently drains them (probe resistance).

After the handshake both directions speak length-prefixed frames XORed
with a per-direction keystream derived from the node id — uniformly
random on the wire, like the real transports' stream layer.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Tuple

from ..randutil import byte_draws

__all__ = [
    "FrameCodec",
    "OBFS3_HANDSHAKE_LEN",
    "OBFS4_MAC_LEN",
    "OBFS4_PAD_MAX",
    "OBFS4_PAD_MIN",
    "TOR_VERSIONS_CMD",
    "node_key",
    "obfs4_decode_pad_len",
    "obfs4_handshake",
    "obfs4_mac",
    "parse_versions_cell",
    "tor_versions_cell",
]

TOR_VERSIONS_CMD = 7
OBFS3_HANDSHAKE_LEN = 192           # UniformDH public key size on the wire
OBFS4_PAD_MIN = 64
OBFS4_PAD_MAX = 192
OBFS4_MAC_LEN = 16


def tor_versions_cell(versions: Tuple[int, ...] = (3, 4, 5)) -> bytes:
    """A v3+ link VERSIONS cell: the GFW's bridge-confirmation probe."""
    body = b"".join(v.to_bytes(2, "big") for v in versions)
    return (b"\x00\x00" + bytes([TOR_VERSIONS_CMD])
            + len(body).to_bytes(2, "big") + body)


def parse_versions_cell(data: bytes) -> Optional[Tuple[int, ...]]:
    """Parse a VERSIONS cell prefix; None when ``data`` is not one."""
    if len(data) < 5 or data[0] != 0 or data[1] != 0 or data[2] != TOR_VERSIONS_CMD:
        return None
    body_len = int.from_bytes(data[3:5], "big")
    if body_len % 2 != 0 or len(data) < 5 + body_len:
        return None
    body = data[5:5 + body_len]
    return tuple(int.from_bytes(body[i:i + 2], "big")
                 for i in range(0, body_len, 2))


def node_key(node_id: str) -> bytes:
    """The shared secret both endpoints derive from the bridge's node id."""
    return hashlib.sha256(b"obfs-node:" + node_id.encode("utf-8")).digest()


def _keystream(key: bytes, label: str, length: int) -> bytes:
    """A sha256-counter keystream (model cipher, deliberately simple)."""
    out = bytearray()
    counter = 0
    prefix = key + label.encode("ascii")
    while len(out) < length:
        out.extend(hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:length])


class FrameCodec:
    """Length-prefixed frames under a per-direction XOR keystream.

    One codec instance per direction per connection; both sides advance
    the same keystream, so wire bytes are uniformly random while staying
    decodable.  ``label`` separates the two directions (and the
    handshake) so keystreams never collide.
    """

    def __init__(self, key: bytes, label: str):
        self.key = key
        self.label = label
        self._enc_pos = 0
        self._dec_pos = 0
        self._buffer = bytearray()

    def _xor_at(self, data: bytes, pos: int) -> bytes:
        # Keystream offsets must line up across calls: slice a stream
        # long enough and discard the prefix.
        stream = _keystream(self.key, self.label, pos + len(data))[pos:]
        return bytes(a ^ b for a, b in zip(data, stream))

    def encode(self, payload: bytes) -> bytes:
        frame = len(payload).to_bytes(2, "big") + payload
        out = self._xor_at(frame, self._enc_pos)
        self._enc_pos += len(frame)
        return out

    def feed(self, data: bytes) -> List[bytes]:
        """Decode incoming bytes; returns every complete frame payload."""
        decoded = self._xor_at(data, self._dec_pos)
        self._dec_pos += len(data)
        self._buffer.extend(decoded)
        frames = []
        while len(self._buffer) >= 2:
            length = int.from_bytes(self._buffer[:2], "big")
            if len(self._buffer) < 2 + length:
                break
            frames.append(bytes(self._buffer[2:2 + length]))
            del self._buffer[:2 + length]
        return frames


# ----------------------------------------------------------------- obfs4


def obfs4_mac(key: bytes, data: bytes) -> bytes:
    return hashlib.sha256(key + b"obfs4-mac" + data).digest()[:OBFS4_MAC_LEN]


def obfs4_decode_pad_len(header: bytes, key: bytes, label: str) -> int:
    """Decode the keystream-masked pad length into [PAD_MIN, PAD_MAX]."""
    mask = _keystream(key, label + "-hs-len", 2)
    raw = int.from_bytes(bytes(a ^ b for a, b in zip(header, mask)), "big")
    return OBFS4_PAD_MIN + raw % (OBFS4_PAD_MAX - OBFS4_PAD_MIN + 1)


def obfs4_handshake(key: bytes, label: str, rng: random.Random) -> bytes:
    """``[masked u16 pad_len][pad][MAC(len||pad)]`` — random on the wire."""
    pad_len = rng.randint(OBFS4_PAD_MIN, OBFS4_PAD_MAX)
    span = OBFS4_PAD_MAX - OBFS4_PAD_MIN + 1
    # Encode a raw value that decodes back to pad_len under the mask.
    raw = rng.randrange(0, 1 << 16)
    raw -= (OBFS4_PAD_MIN + raw % span) - pad_len
    if raw < 0 or raw >= 1 << 16:
        raw = pad_len - OBFS4_PAD_MIN
    mask = _keystream(key, label + "-hs-len", 2)
    header = bytes(a ^ b for a, b in zip(raw.to_bytes(2, "big"), mask))
    pad = byte_draws(rng, pad_len)
    return header + pad + obfs4_mac(key, header + pad)
