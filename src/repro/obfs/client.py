"""Tor bridge client: opens tunnelled connections through a bridge.

Mirrors the Shadowsocks/VMess client API — ``open(target_host,
target_port, payload, on_reply)`` — so workload drivers
(:class:`~repro.workloads.CurlDriver`) work unchanged.  The handshake
and the first frames are pipelined in one write, so the censor's
feature packet (first initiator data) is the handshake itself:

* **tor-vanilla** — a plaintext VERSIONS cell (the DPI fingerprint);
* **obfs3 / obfs4** — a uniformly random block (the fully-encrypted
  look that entropy detectors key on).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .server import OBFS_PROFILES
from .wire import (
    OBFS3_HANDSHAKE_LEN,
    OBFS4_MAC_LEN,
    FrameCodec,
    byte_draws,
    node_key,
    obfs4_decode_pad_len,
    obfs4_handshake,
    tor_versions_cell,
)

__all__ = ["ObfsClient", "ObfsSession"]


class ObfsClient:
    """Factory for tunnelled connections to one bridge."""

    def __init__(
        self,
        host,
        server_ip: str,
        server_port: int,
        node_id: str = "bridge",
        *,
        profile: str = "obfs4",
        rng: Optional[random.Random] = None,
    ):
        if profile not in OBFS_PROFILES:
            raise ValueError(
                f"unknown obfs profile {profile!r}; known: {OBFS_PROFILES}")
        self.host = host
        self.server_ip = server_ip
        self.server_port = server_port
        self.node_id = node_id
        self.profile = profile
        self.key = node_key(node_id)
        self.rng = rng or random.Random(0x0BF5)

    def open(
        self,
        target_host: str,
        target_port: int,
        payload: bytes = b"",
        on_reply: Optional[Callable[[bytes], None]] = None,
    ) -> "ObfsSession":
        """Connect through the bridge and send ``payload`` to the target."""
        return ObfsSession(self, target_host, target_port, payload, on_reply)

    def handshake_bytes(self) -> bytes:
        """The transport handshake this client opens with (draws RNG)."""
        if self.profile == "tor-vanilla":
            return tor_versions_cell()
        if self.profile == "obfs3":
            return byte_draws(self.rng, OBFS3_HANDSHAKE_LEN)
        return obfs4_handshake(self.key, "c2s", self.rng)


class ObfsSession:
    """One tunnelled connection (client side)."""

    def __init__(self, client: ObfsClient, target_host: str, target_port: int,
                 payload: bytes, on_reply: Optional[Callable[[bytes], None]]):
        self.client = client
        self.target = (target_host, target_port)
        self.on_reply = on_reply or (lambda data: None)
        self.reply = bytearray()
        self.closed = False
        self.reset = False
        self._tx = FrameCodec(client.key, "c2s")
        self._rx = FrameCodec(client.key, "s2c")
        self._server_handshake_done = False
        self._hs_buffer = bytearray()

        self.conn = client.host.connect(client.server_ip, client.server_port)
        self.conn.on_connected = lambda: self._send_handshake(payload)
        self.conn.on_data = self._on_data
        self.conn.on_remote_fin = self._on_fin
        self.conn.on_reset = self._on_reset

    def _send_handshake(self, payload: bytes) -> None:
        host, port = self.target
        encoded = host.encode("utf-8")
        target = len(encoded).to_bytes(2, "big") + encoded + port.to_bytes(2, "big")
        first = self.client.handshake_bytes() + self._tx.encode(target)
        if payload:
            first += self._tx.encode(payload)
        self.conn.send(first)

    def send(self, data: bytes) -> None:
        """Send more application data through the tunnel."""
        if data:
            self.conn.send(self._tx.encode(data))

    def close(self) -> None:
        self.conn.close()

    # ---------------------------------------------------------- reply path

    def _server_handshake_len(self) -> Optional[int]:
        profile = self.client.profile
        if profile == "tor-vanilla":
            if len(self._hs_buffer) < 5:
                return None
            return 5 + int.from_bytes(self._hs_buffer[3:5], "big")
        if profile == "obfs3":
            return OBFS3_HANDSHAKE_LEN
        # obfs4: the server's reply mirrors the client construction; its
        # length is the masked header + pad + MAC.  The client shares the
        # key, so it can decode the pad length directly.
        if len(self._hs_buffer) < 2:
            return None
        pad_len = obfs4_decode_pad_len(bytes(self._hs_buffer[:2]),
                                       self.client.key, "s2c")
        return 2 + pad_len + OBFS4_MAC_LEN

    def _on_data(self, data: bytes) -> None:
        if not self._server_handshake_done:
            self._hs_buffer.extend(data)
            needed = self._server_handshake_len()
            if needed is None or len(self._hs_buffer) < needed:
                return
            rest = bytes(self._hs_buffer[needed:])
            self._hs_buffer.clear()
            self._server_handshake_done = True
            if not rest:
                return
            data = rest
        for frame in self._rx.feed(data):
            if frame:
                self.reply.extend(frame)
                self.on_reply(frame)

    def _on_fin(self) -> None:
        self.closed = True
        self.conn.close()

    def _on_reset(self) -> None:
        self.closed = True
        self.reset = True
