"""The instrumentation bus: typed counters and scalar series.

Every :class:`~repro.net.sim.Simulator` owns an :class:`EventBus`; the
components layered on top of it (the :class:`~repro.gfw.GreatFirewall`,
the prober fleet, Shadowsocks servers, workload drivers) emit named
counters and samples into it instead of keeping ad-hoc stats dicts that
analysis code then scrapes.  A bus snapshot is JSON-serialisable and
deterministic for a given seed, so it travels inside cached
:class:`~repro.runtime.scenario.RunResult`s and run manifests.

Canonical event names (``<layer>.<subject>[.<detail>]``):

==============================  ===============================================
``sim.events``                  events processed by :meth:`Simulator.run`
``net.loss``                    segments dropped by an impairment's loss draw
``net.reorder``                 segments delayed by a reorder draw
``net.duplicate``               segments duplicated in flight
``net.flap.drop``               segments lost to a scheduled link blackout
``net.ttl.expired``             segments discarded when hops exhausted the TTL
``net.udp.*``                   datagram counterparts of the fault counters
``tcp.retransmit``              segments re-sent by the retransmission timer
``tcp.syn.retry``               connection-opening SYNs re-sent
``tcp.ooo.buffered``            out-of-order segments held for reassembly
``tcp.dup.dropped``             wholly-duplicate segments discarded on receive
``tcp.timeout``                 connections that gave up after max retries
``gfw.flow.opened``             border-crossing flows entered into the flow table
``gfw.flow.evicted``            flow-table entries reclaimed by eviction
``gfw.flow.syn.retransmit``     retransmitted SYNs seen on live flows
``gfw.conn.flagged``            first-data packets the passive detector flagged
``gfw.conn.reflag.suppressed``  repeat flag decisions deduplicated per flow
``gfw.cache.inside_cleared``    border-geometry cache resets at capacity
``gfw.segment.dropped``         segments dropped by the blocking module
``gfw.block.applied``           block rules installed
``probe.sent``                  probes dispatched by the prober runner
``probe.reaction.<R>``          probe outcomes, by reaction (``RST``...)
``probe.type.<T>``              probes sent, by probe type (``R1``, ``NR2``...)
``scheduler.stage2``            servers escalated to stage-2 probing
``ss.session.accepted``         connections accepted by Shadowsocks servers
``ss.session.error``            Shadowsocks handshakes that failed server-side
``ss.session.proxied``          sessions that reached the proxying state
``workload.fetch``              fetches issued by workload drivers
==============================  ===============================================

New emitters should follow the same naming scheme; consumers must treat
unknown names as forward-compatible.

Besides counters and scalars, the bus carries a *structured record*
channel for the streaming analysis pipeline
(:mod:`repro.analysis.pipeline`): emitters publish dict-shaped events
(``{"kind": ..., **fields}``) with :meth:`EventBus.emit`, and analyzers
subscribe with :meth:`EventBus.subscribe_records`.  Structured events
may carry rich in-memory values (payload bytes, segment objects); they
are consumed live and are never part of the JSON snapshot.  Emitting is
free when nobody listens — hot paths guard on
:attr:`EventBus.wants_records` before even building the event dict.

Canonical record kinds (see the pipeline module for the consumers):

==================  =====================================================
``probe``           a probe left the prober runner (payload, type, ...)
``probe.result``    a probe finished with a classified reaction
``flow.flagged``    the passive detector flagged a feature packet
``block``           the blocking module installed a block rule
``payload``         a workload client sent a ground-truth payload
``capture``         a tapped host capture saw a segment (pipeline-local)
``scale.flow``      the scale harness finished one synthetic flow
==================  =====================================================

For consumers living *outside* the worker process (the
:mod:`repro.service` control plane streams records to HTTP clients
while a job runs), the module adds two pieces:

* **global record taps** (:func:`install_record_tap`) — subscribers
  attached automatically to every :class:`EventBus` constructed after
  installation.  Scenario builders create their buses deep inside
  ``build()``, so an external harness has no object to subscribe to;
  a tap catches every bus the job creates without touching scenario
  code.  Taps only observe: they never alter counters, RNG draws, or
  snapshots, so tapped and untapped runs stay byte-identical.
* :func:`sanitize_record` / :class:`RecordForwarder` — records may
  carry rich in-memory values (payload bytes, segment objects) that
  must not cross a process boundary; the forwarder projects each
  record onto a JSON- and pickle-safe shape (bytes become
  ``{"__bytes__": len, "prefix": hex}``, unknown objects become their
  type name) before handing it to a sink callable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Tuple

__all__ = [
    "EventBus",
    "RecordForwarder",
    "install_record_tap",
    "merge_counters",
    "remove_record_tap",
    "sanitize_record",
]

# Globally-installed record taps, auto-subscribed by every EventBus
# constructed while installed.  Copy-on-write tuple for the same reason
# the per-bus subscriber list is: installs/removes must never mutate a
# sequence a constructor is reading.
_RECORD_TAPS: Tuple[Callable[[Dict[str, Any]], None], ...] = ()


def install_record_tap(fn: Callable[[Dict[str, Any]], None]) -> None:
    """Subscribe ``fn`` to every :class:`EventBus` created from now on.

    Buses that already exist are unaffected.  The service job worker
    installs its :class:`RecordForwarder` here before building a
    scenario, so whatever buses the build creates stream their records
    out without the scenario knowing.
    """
    global _RECORD_TAPS
    _RECORD_TAPS = _RECORD_TAPS + (fn,)


def remove_record_tap(fn: Callable[[Dict[str, Any]], None]) -> None:
    """Stop subscribing ``fn`` to new buses (existing buses keep it).

    Equality-based, like :meth:`EventBus.unsubscribe_records`, so a
    re-created bound method removes the originally-installed one.
    """
    global _RECORD_TAPS
    taps = list(_RECORD_TAPS)
    try:
        taps.remove(fn)
    except ValueError:
        return
    _RECORD_TAPS = tuple(taps)


class EventBus:
    """A process-local sink for named counters and scalar samples.

    ``incr`` is designed to be cheap enough for per-event hot paths (one
    dict update); ``observe`` additionally tracks count/sum/min/max of a
    scalar series.  ``subscribe`` registers a live listener, which is how
    tests and progress displays can watch a run without polling.
    """

    __slots__ = ("counters", "scalars", "_subscribers", "_record_subscribers")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        # name -> [count, total, minimum, maximum]
        self.scalars: Dict[str, List[float]] = {}
        self._subscribers: List[Callable[[str, float], None]] = []
        # Copy-on-write: emit() iterates whatever list object is bound
        # at dispatch time, and (un)subscribe bind a *new* list, so a
        # subscriber detaching itself mid-emit can never skip or repeat
        # a peer (see unsubscribe_records).
        self._record_subscribers: List[Callable[[Dict[str, Any]], None]] = (
            list(_RECORD_TAPS))

    # ------------------------------------------------------------- emitting

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n
        for fn in self._subscribers:
            fn(name, n)

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the scalar series ``name``."""
        agg = self.scalars.get(name)
        if agg is None:
            self.scalars[name] = [1, value, value, value]
        else:
            agg[0] += 1
            agg[1] += value
            if value < agg[2]:
                agg[2] = value
            if value > agg[3]:
                agg[3] = value
        for fn in self._subscribers:
            fn(name, value)

    def subscribe(self, fn: Callable[[str, float], None]) -> None:
        self._subscribers.append(fn)

    # -------------------------------------------------- structured records

    @property
    def wants_records(self) -> bool:
        """True when at least one structured-record subscriber is attached.

        Emitters on hot paths check this before building the event dict,
        so runs without an analysis pipeline pay a single attribute test.
        """
        return bool(self._record_subscribers)

    def emit(self, kind: str, event: Mapping[str, Any]) -> None:
        """Publish one structured event to the record subscribers.

        ``event`` carries the fields; the bus stamps ``kind`` into the
        dict handed to subscribers.  Events may hold rich in-memory
        values (bytes, segments) — they are consumed live, never stored
        on the bus, and never serialized into a snapshot.
        """
        subscribers = self._record_subscribers
        if not subscribers:
            return
        record = dict(event)
        record["kind"] = kind
        # Iterate the snapshot bound above: a subscriber calling
        # (un)subscribe_records from inside its callback rebinds the
        # attribute without touching this list, so dispatch of the
        # current record always covers exactly the set that was
        # subscribed when emit() started.
        for fn in subscribers:
            fn(record)

    def subscribe_records(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        self._record_subscribers = self._record_subscribers + [fn]

    def unsubscribe_records(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        """Detach ``fn``; safe to call from inside an active emit().

        Rebinds a fresh list instead of mutating in place — removing an
        element from the list emit() is iterating would shift its
        neighbours under the loop and silently skip the next
        subscriber (the bug that broke clean SSE client disconnects).
        Equality-based (like ``list.remove``) so callers may pass a
        re-created bound method, as the analysis pipeline does.
        """
        subscribers = list(self._record_subscribers)
        try:
            subscribers.remove(fn)
        except ValueError:
            return
        self._record_subscribers = subscribers

    # ------------------------------------------------------------ consuming

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, object]:
        """A deterministic, JSON-serialisable view of everything emitted."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "scalars": {
                name: {"count": agg[0], "sum": agg[1],
                       "min": agg[2], "max": agg[3]}
                for name, agg in sorted(self.scalars.items())
            },
        }

    def clear(self) -> None:
        self.counters.clear()
        self.scalars.clear()

    def absorb(self, other: "EventBus") -> None:
        """Fold another bus's tallies into this one (for multi-world runs)."""
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, agg in other.scalars.items():
            mine = self.scalars.get(name)
            if mine is None:
                self.scalars[name] = list(agg)
            else:
                mine[0] += agg[0]
                mine[1] += agg[1]
                mine[2] = min(mine[2], agg[2])
                mine[3] = max(mine[3], agg[3])


# ------------------------------------------------------ record forwarding


_BYTES_PREFIX = 8  # hex-preview length for sanitized byte payloads


def sanitize_record(record: Mapping[str, Any], _depth: int = 0) -> Dict[str, Any]:
    """Project a structured record onto a JSON- and pickle-safe shape.

    Records may carry rich in-memory values (payload bytes, Segment
    objects, nested tuples); anything leaving the worker process — over
    the service's record pipe, into an SSE stream — goes through this
    first.  Scalars pass through, containers recurse (depth-capped),
    ``bytes`` become ``{"__bytes__": length, "prefix": hex-of-first-8}``
    so consumers see sizes without shipping ciphertext, and any other
    object collapses to ``{"__type__": class name}``.  Deterministic:
    the same record always sanitizes to the same document.
    """
    return {str(key): _sanitize_value(value, _depth)
            for key, value in record.items()}


def _sanitize_value(value: Any, depth: int) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        return {"__bytes__": len(raw), "prefix": raw[:_BYTES_PREFIX].hex()}
    if depth >= 4:
        return {"__type__": type(value).__name__}
    if isinstance(value, (list, tuple)):
        return [_sanitize_value(v, depth + 1) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _sanitize_value(v, depth + 1)
                for k, v in value.items()}
    return {"__type__": type(value).__name__}


class RecordForwarder:
    """A record subscriber that sanitizes and hands records to a sink.

    Install one as a global tap (:func:`install_record_tap`) to stream
    every record a job emits out of the process::

        forwarder = RecordForwarder(sink.send)
        install_record_tap(forwarder)
        try:
            ...  # build/run scenarios
        finally:
            remove_record_tap(forwarder)

    The sink receives plain dicts (see :func:`sanitize_record`).  A sink
    raising ``OSError`` (consumer went away mid-run) permanently
    disables the forwarder instead of failing the job; ``forwarded`` and
    ``dropped`` keep the accounting either way.
    """

    __slots__ = ("sink", "forwarded", "dropped", "dead")

    def __init__(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        self.sink = sink
        self.forwarded = 0
        self.dropped = 0
        self.dead = False

    def __call__(self, record: Dict[str, Any]) -> None:
        if self.dead:
            self.dropped += 1
            return
        try:
            self.sink(sanitize_record(record))
            self.forwarded += 1
        except OSError:
            self.dead = True
            self.dropped += 1


def merge_counters(snapshots: List[Dict[str, object]]) -> Dict[str, int]:
    """Sum the ``counters`` sections of several bus snapshots."""
    totals: Dict[str, int] = {}
    for snap in snapshots:
        for name, n in (snap.get("counters") or {}).items():
            totals[name] = totals.get(name, 0) + int(n)
    return dict(sorted(totals.items()))
