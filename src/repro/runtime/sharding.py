"""Deterministic flow partitioning: one world, N disjoint shards.

A *shard* is one slice of a single scenario's client/flow space,
executed in its own worker process with its own Simulator, GFW flow
table, and analyzer set, then recombined into results byte-identical
with the serial run.  Everything here is the arithmetic that makes that
recombination safe:

* :func:`flow_key` — a seed-stable 64-bit key of an arbitrary
  JSON-able label.  Built on BLAKE2b over a canonical encoding, *never*
  on Python's ``hash()``: the builtin is randomized per interpreter
  (``PYTHONHASHSEED``), which would scatter flows across different
  shards on every run.  The same helper keys the runner's unit
  partitioner and the :class:`~repro.gfw.flowtable.FlowTable`'s
  per-shard admission filter, so both layers always agree on who owns
  a flow.
* :func:`shard_of` / :func:`partition` — key → shard index, and the
  full assignment of an ordered unit list onto ``count`` shards.
* :func:`derive_seed` — a stable per-unit seed from (seed, label), so
  a unit simulates identically whether it runs in the serial world or
  inside any shard subset.  (Index-derived seeds like ``seed + i``
  break under restriction: dropping one unit would reseed every later
  one.)
* :class:`Sharder` — the declaration a :class:`~repro.runtime.scenario.
  Scenario` carries to make itself shardable: how its workload splits
  into ordered units, how to restrict its params to a unit subset, and
  how per-shard results recombine (``cases`` vs ``flows`` mode).

The module deliberately imports nothing from the net/gfw stack so both
sides of the runtime can use it without cycles.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "Sharder",
    "ShardingError",
    "derive_seed",
    "flow_key",
    "fold_snapshots",
    "partition",
    "shard_of",
]


class ShardingError(RuntimeError):
    """A sharded execution request that cannot be honoured."""


def _canonical_bytes(part: Any) -> bytes:
    """A type-tagged, platform-stable byte encoding of one key part.

    Type tags keep ``1``, ``"1"`` and ``(1,)`` distinct; recursion
    covers the nested tuples connection keys are made of.
    """
    if isinstance(part, bytes):
        return b"b:" + part
    if isinstance(part, str):
        return b"s:" + part.encode("utf-8")
    if isinstance(part, bool):
        return b"B:1" if part else b"B:0"
    if isinstance(part, int):
        return b"i:%d" % part
    if isinstance(part, float):
        return b"f:" + repr(part).encode("ascii")
    if part is None:
        return b"n:"
    if isinstance(part, (tuple, list)):
        return b"t:" + b"\x1e".join(_canonical_bytes(p) for p in part)
    raise TypeError(f"flow_key part {part!r} is not canonically hashable")


def flow_key(*parts: Any) -> int:
    """Seed-stable 64-bit key of the canonical encoding of ``parts``.

    Identical across interpreter restarts, platforms, and
    ``PYTHONHASHSEED`` values (property-tested), which is the contract
    that lets shard assignment live in cache keys and on-disk manifests.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(_canonical_bytes(part))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big")


def shard_of(key: int, count: int) -> int:
    """Which of ``count`` shards owns ``key``."""
    if count < 1:
        raise ShardingError(f"shard count must be >= 1, got {count}")
    return key % count


def partition(labels: Sequence[str], count: int) -> List[List[str]]:
    """Assign ordered unit labels onto ``count`` shards, order-preserving.

    Each shard's list keeps the global unit order restricted to its own
    members, so a shard can rebuild its slice of the workload in exactly
    the order the serial run would have executed it.
    """
    shards: List[List[str]] = [[] for _ in range(max(count, 1))]
    if count < 1:
        raise ShardingError(f"shard count must be >= 1, got {count}")
    for label in labels:
        shards[shard_of(flow_key(label), count)].append(label)
    return shards


def fold_snapshots(
    snapshots: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Fold bus snapshots in order, with ``EventBus.absorb`` arithmetic.

    Counters are integer sums.  Scalar aggregates fold exactly the way
    a live aggregator bus folds per-unit buses — first occurrence
    copied, later ones ``count``/``sum`` added and ``min``/``max``
    compared *in fold order* — so a shard merge that replays the serial
    unit order reproduces the serial floats bit-for-bit, non-associative
    float addition included.
    """
    counters: Dict[str, int] = {}
    scalars: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        for name, n in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(n)
        for name, agg in (snap.get("scalars") or {}).items():
            mine = scalars.get(name)
            if mine is None:
                scalars[name] = {"count": agg["count"], "sum": agg["sum"],
                                 "min": agg["min"], "max": agg["max"]}
            else:
                mine["count"] += agg["count"]
                mine["sum"] += agg["sum"]
                mine["min"] = min(mine["min"], agg["min"])
                mine["max"] = max(mine["max"], agg["max"])
    return {
        "counters": dict(sorted(counters.items())),
        "scalars": {name: scalars[name] for name in sorted(scalars)},
    }


def derive_seed(seed: int, *parts: Any) -> int:
    """A stable per-unit RNG seed from the run seed and the unit label.

    Bounded to 31 bits so it stays a plain (JSON-able, cross-platform)
    int wherever it lands in params or manifests.
    """
    return flow_key(int(seed), *parts) % (1 << 31)


@dataclass(frozen=True)
class Sharder:
    """How one scenario's workload splits into shardable units.

    ``mode`` selects the recombination law:

    * ``"cases"`` — every unit is an independent sub-experiment (its own
      world, its own bus) whose label keys a slice of the payload and a
      per-unit bus snapshot under ``events["units"]``.  The merge unions
      payload/analysis slices and re-folds per-unit bus snapshots in
      global unit order — the same arithmetic, in the same order, as the
      serial builder's ``bus.absorb`` fold, so floats land identically.
    * ``"flows"`` — units are blocks of independent flows sharing one
      world per shard.  Counters are integer sums; analyzer states merge
      through :meth:`~repro.analysis.pipeline.Analyzer.merge`; the
      payload is re-derived from the merged analyzer outputs via
      ``payload_from_analysis`` (the same function the serial summarizer
      uses).  Scalar (float) bus series are rejected in this mode —
      their fold order would not be reproducible.
    """

    mode: str
    units: Callable[[Any], List[str]]
    restrict: Callable[[Any, Sequence[str]], Dict[str, Any]]
    payload_from_analysis: Optional[
        Callable[[Mapping[str, Any]], Dict[str, Any]]
    ] = None

    def __post_init__(self) -> None:
        if self.mode not in ("cases", "flows"):
            raise ValueError(f"unknown sharder mode {self.mode!r}")
