"""Builtin scenario registrations: every paper harness, one registry.

Importing this module registers the four ``repro.experiments`` harnesses
(§3.1 shadowsocks, §4.1 sink, §7.1 brdgrd, §6 blocking), the §5.1
prober-simulator sweeps (Figure 10 grid and Table 5 replay battery), and
the two ablation matrices the benchmarks exercise — all runnable as

    python -m repro run <name> --seeds N --jobs M [--set key=value ...]

Builders reuse the existing experiment configs as their typed params
(the runner injects the seed), and summarizers reduce each rich result
object to the JSON payload that drives the corresponding figure/table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import (
    AnalysisPipeline,
    FlaggedConnections,
    ProbeBlockDelays,
    ProbeTally,
    VerdictRecords,
)
from ..analysis.pipeline import series
from ..defense import Brdgrd, harden
from ..experiments import (
    BlockingExperimentConfig,
    BrdgrdExperimentConfig,
    ShadowsocksExperimentConfig,
    SinkExperimentConfig,
    run_blocking_experiment,
    run_brdgrd_experiment,
    run_shadowsocks_experiment,
    run_sink_experiment,
)
from ..gfw import BlockingPolicy, DetectorConfig, PassiveDetector, Reaction
from ..net import Impairment
from ..probesim import PROBE_LENGTH_SCHEDULE, build_random_probe_row, build_replay_table
from ..protocols import build_protocol
from ..shadowsocks import get_profile
from ..workloads import CurlDriver, http_get_request
from .events import EventBus
from .scenario import Scenario, register
from .sharding import Sharder, derive_seed, fold_snapshots
from .topology import build_world

# Registering imports its module; the scale-1m scenario lives there.
from . import scale  # noqa: F401  (registers on import)

__all__: List[str] = []  # import for side effects only

# The experiment summarizers below read the streaming AnalysisPipeline
# outputs; the *_batch twins recompute the same payload from the legacy
# post-hoc accessors (probe log, buffered captures).  The property tests
# in tests/property/ assert the two are byte-identical — keep them in
# lockstep when changing either.
_series = series


def _analysis_payload(result) -> Dict[str, object]:
    """Scenario ``analysis_of`` hook for pipeline-bearing experiment results."""
    return result.pipeline.payload()


def _unit_events(unit_buses: Sequence[Tuple[str, EventBus]]) -> Dict[str, object]:
    """Events document for case-sharded scenarios: fold + per-unit detail.

    Each case (sub-experiment) runs against its own bus; the top-level
    ``counters``/``scalars`` are the :func:`fold_snapshots` of the
    per-unit snapshots in unit order — the same arithmetic, in the same
    order, as the old shared-bus ``absorb`` chain — and ``units`` keeps
    the per-unit snapshots so a sharded run can replay the exact fold
    when it recombines (see :func:`repro.runtime.runner.run_sharded`).
    """
    snaps = [(label, bus.snapshot()) for label, bus in unit_buses]
    events = fold_snapshots([snap for _, snap in snaps])
    events["units"] = {label: snap for label, snap in snaps}
    return events


# --------------------------------------------------------------- §3.1


def _summarize_shadowsocks(result) -> Dict[str, object]:
    a = result.pipeline.outputs()
    return {
        "connections": result.connections_made,
        "flagged": a["flagged"]["count"],
        "probes": a["probes"]["count"],
        "probes_by_type": a["probes"]["by_type"],
        "unique_prober_ips": a["probes"]["unique_src_ips"],
        "control_probes": a["control_syns"]["count"],
        "first_replay_delays": a["replay_delays"]["first"],
        "all_replay_delays": a["replay_delays"]["all"],
        "server_probes": {name[len("server:"):]: out["count"]
                          for name, out in sorted(a.items())
                          if name.startswith("server:")},
    }


def _summarize_shadowsocks_batch(result) -> Dict[str, object]:
    first, all_delays = result.replay_delays
    return {
        "connections": result.connections_made,
        "flagged": result.world.gfw.flagged_connections,
        "probes": len(result.probe_log),
        "probes_by_type": dict(sorted(result.probes_by_type.items())),
        "unique_prober_ips": len(set(result.prober_ips)),
        "control_probes": result.control_probe_count,
        "first_replay_delays": _series(first),
        "all_replay_delays": _series(all_delays),
        "server_probes": {name: len(probes) for name, probes
                          in sorted(result.server_probes.items())},
    }


register(Scenario(
    name="shadowsocks",
    title="§3.1 Shadowsocks measurement (Figures 2-7, Tables 2-3)",
    params_type=ShadowsocksExperimentConfig,
    build=run_shadowsocks_experiment,
    summarize=_summarize_shadowsocks,
    analysis_of=_analysis_payload,
    description="libev + Outline client/server pairs behind the GFW; "
                "probe log and server captures.",
    tags=("experiment", "gfw", "shadowsocks"),
))


# ---------------------------------------------------------- quickstart


@dataclass
class QuickstartConfig:
    """The README/CLI quickstart world as registered-scenario params."""

    seed: int = 7
    connections: int = 40
    profile: str = "outline-1.0.7"
    method: str = "chacha20-ietf-poly1305"
    loss: float = 0.0
    reorder: float = 0.0


@dataclass
class _QuickstartResult:
    world: object
    connections: int


def _build_quickstart(params: QuickstartConfig) -> _QuickstartResult:
    impairment = Impairment(loss=params.loss, reorder=params.reorder)
    world = build_world(
        seed=params.seed,
        detector_config=DetectorConfig(base_rate=0.9),
        websites=["example.com", "gfw.report"],
        impairment=impairment if impairment.active else None)
    server_host = world.add_server("ss-server", region="uk")
    client_host = world.add_client("client")
    proto = build_protocol({"kind": "shadowsocks", "password": "pw",
                            "method": params.method,
                            "profile": params.profile})
    proto.make_server(server_host, 8388)
    client = proto.make_client(client_host, server_host.ip, 8388)
    CurlDriver(client, rng=random.Random(params.seed),
               sites=["example.com", "gfw.report"]).run_schedule(
                   params.connections, 60.0)
    world.sim.run(until=params.connections * 60.0 + 3600)
    return _QuickstartResult(world=world, connections=params.connections)


def _summarize_quickstart(result: _QuickstartResult) -> Dict[str, object]:
    gfw = result.world.gfw  # type: ignore[attr-defined]
    by_type: Dict[str, int] = {}
    for record in gfw.probe_log:
        by_type[record.probe_type] = by_type.get(record.probe_type, 0) + 1
    return {
        "connections": result.connections,
        "flagged": gfw.flagged_connections,
        "probes": len(gfw.probe_log),
        "probes_by_type": dict(sorted(by_type.items())),
        "unique_prober_ips": len({r.src_ip for r in gfw.probe_log}),
    }


register(Scenario(
    name="quickstart",
    title="Tunnel a Shadowsocks workload under the GFW (README quickstart)",
    params_type=QuickstartConfig,
    build=_build_quickstart,
    summarize=_summarize_quickstart,
    description="The `python -m repro quickstart` world as a registered, "
                "cacheable, service-submittable scenario: one client "
                "tunnels `connections` fetches through a Shadowsocks "
                "server while the paper's passive detector and prober "
                "fleet watch (emits flow.flagged/probe records live).",
    tags=("quickstart", "gfw", "shadowsocks"),
))


# --------------------------------------------------------------- §4.1


def _summarize_sink(result) -> Dict[str, object]:
    a = result.pipeline.outputs()
    rd = a["random_data"]
    return {
        "connections": rd["connections"],
        "probes": a["probes"]["count"],
        "probes_by_type": a["probes"]["by_type"],
        "replays": rd["replays"],
        "replay_lengths": rd["replay_lengths"],
        "trigger_lengths": rd["trigger_lengths"],
        "replay_ratio_by_entropy": rd["ratio_by_entropy"],
    }


def _summarize_sink_batch(result) -> Dict[str, object]:
    replay_records = result.replay_records()
    return {
        "connections": len(result.sent_payloads),
        "probes": len(result.probe_log),
        "probes_by_type": dict(sorted(result.probes_by_type().items())),
        "replays": len(replay_records),
        "replay_lengths": _series(result.replay_lengths()),
        "trigger_lengths": _series(result.trigger_lengths),
        "replay_ratio_by_entropy": [
            [center, ratio]
            for center, ratio in result.replay_ratio_by_entropy()
        ],
    }


register(Scenario(
    name="sink",
    title="§4.1 random-data experiments (Table 4, Figures 8-9)",
    params_type=SinkExperimentConfig,
    build=run_sink_experiment,
    summarize=_summarize_sink,
    analysis_of=_analysis_payload,
    description="Bare TCP client sends controlled (length, entropy) "
                "payloads to a sink/responding server.",
    tags=("experiment", "gfw"),
))


# --------------------------------------------------------------- §7.1


def _summarize_brdgrd(result) -> Dict[str, object]:
    a = result.pipeline.outputs()
    guarded, control = a["guarded"], a["control"]
    return {
        "probe_syns": guarded["count"],
        "control_syns": control["count"],
        "hourly_counts": guarded["hourly"],
        "control_hourly_counts": control["hourly"],
        "rate_active": guarded["rate_active"],
        "rate_inactive": guarded["rate_inactive"],
    }


def _summarize_brdgrd_batch(result) -> Dict[str, object]:
    active, inactive = result.window_rates()
    return {
        "probe_syns": len(result.probe_syn_times),
        "control_syns": len(result.control_syn_times),
        "hourly_counts": result.hourly_counts(),
        "control_hourly_counts": result.hourly_counts(result.control_syn_times),
        "rate_active": active,
        "rate_inactive": inactive,
    }


register(Scenario(
    name="brdgrd",
    title="§7.1 brdgrd defense (Figure 11)",
    params_type=BrdgrdExperimentConfig,
    build=run_brdgrd_experiment,
    summarize=_summarize_brdgrd,
    analysis_of=_analysis_payload,
    description="Probing rate at a brdgrd-guarded server vs a control "
                "as brdgrd toggles on a schedule.",
    tags=("experiment", "defense"),
))


# ----------------------------------------------------------------- §6


def _summarize_blocking(result) -> Dict[str, object]:
    a = result.pipeline.outputs()
    events = a["blocks"]["events"]
    blocked = {e["ip"]: e for e in events}
    profiles = result.server_profiles
    servers = [
        {
            "ip": ip,
            "profile": profile,
            "probes": a["probes"]["by_server"].get(ip, 0),
            "blocked": ip in blocked,
            "blocked_at": blocked[ip]["time"] if ip in blocked else None,
            "by_ip": blocked[ip]["port"] is None if ip in blocked else None,
        }
        for ip, profile in sorted(profiles.items())
    ]
    blocked_ips = {e["ip"] for e in events}
    return {
        "servers": servers,
        "blocked_fraction": len(blocked_ips) / len(profiles),
        "blocked_profiles": sorted(profiles[e["ip"]] for e in events
                                   if e["ip"] in profiles),
        "block_events": len(events),
        "probes": a["probes"]["count"],
    }


def _summarize_blocking_batch(result) -> Dict[str, object]:
    blocked = {e.ip: e for e in result.block_events}
    servers = [
        {
            "ip": ip,
            "profile": profile,
            "probes": result.probes_per_server.get(ip, 0),
            "blocked": ip in blocked,
            "blocked_at": blocked[ip].time if ip in blocked else None,
            "by_ip": blocked[ip].port is None if ip in blocked else None,
        }
        for ip, profile in sorted(result.server_profiles.items())
    ]
    return {
        "servers": servers,
        "blocked_fraction": result.blocked_fraction,
        "blocked_profiles": sorted(result.blocked_profiles),
        "block_events": len(result.block_events),
        "probes": sum(result.probes_per_server.values()),
    }


register(Scenario(
    name="blocking",
    title="§6 blocking observations",
    params_type=BlockingExperimentConfig,
    build=run_blocking_experiment,
    summarize=_summarize_blocking,
    analysis_of=_analysis_payload,
    description="Vantage fleet of implementations under a human-gated "
                "blocking policy with sensitive windows.",
    tags=("experiment", "blocking"),
))


# Batch (legacy post-hoc) summarizers by scenario name, for the property
# tests that verify streaming == batch on identical runs.
BATCH_SUMMARIZERS = {
    "shadowsocks": _summarize_shadowsocks_batch,
    "sink": _summarize_sink_batch,
    "brdgrd": _summarize_brdgrd_batch,
    "blocking": _summarize_blocking_batch,
}


# ----------------------------------------------- Tor/obfs active probing


@dataclass
class TorProbingConfig:
    """GFW active probing of Tor bridges with graded probe resistance.

    Three bridges run side by side behind the entropy/VERSIONS detector:
    vanilla Tor (DPI fingerprint + answers the forged handshake), obfs3
    (random-looking but answers any correctly-sized block), and obfs4
    (answers nothing it cannot authenticate).  The censor routes flagged
    flows to the ``"tor"`` probing playbook: garbage + forged-VERSIONS
    probes, confirmation bursts, and batched block rollout.
    """

    seed: int = 11
    # Proxy-protocol spec (see repro.protocols) — a bare kind or a
    # {"kind": ..., **params} mapping; per-bridge transports override
    # its profile.  CLI shorthand: `run tor-probing --protocol SPEC`.
    protocol: object = "obfs"
    connections: int = 10
    interval: float = 120.0
    duration: float = 4 * 3600.0
    batch_interval: float = 900.0
    bridge_port: int = 443
    bridges: Tuple[Tuple[str, str], ...] = (
        ("vanilla", "tor-vanilla"),
        ("obfs3", "obfs3"),
        ("obfs4", "obfs4"),
    )


@dataclass
class _TorProbingResult:
    world: object
    pipeline: AnalysisPipeline
    bridges: Dict[str, Dict[str, str]]   # server ip -> {label, transport}


def _build_tor_probing(config: TorProbingConfig) -> _TorProbingResult:
    world = build_world(
        seed=config.seed,
        detectors="tor",
        websites=["example.com"],
        probe_behaviors={"tor": {"kind": "tor",
                                 "batch_interval": config.batch_interval}},
    )
    pipeline = AnalysisPipeline({
        "flagged": FlaggedConnections(),
        "probes": ProbeTally(),
        "delays": ProbeBlockDelays(),
    })
    pipeline.attach(world.bus)
    spec = config.protocol
    spec = {"kind": spec} if isinstance(spec, str) else dict(spec)
    bridges: Dict[str, Dict[str, str]] = {}
    for label, transport in config.bridges:
        proto = build_protocol({**spec, "profile": transport})
        server_host = world.add_server(f"{label}-bridge", region="uk")
        client_host = world.add_client(f"{label}-client")
        seed = derive_seed(config.seed, label)
        proto.make_server(server_host, config.bridge_port,
                          rng=random.Random(seed + 1))
        client = proto.make_client(client_host, server_host.ip,
                                   config.bridge_port,
                                   rng=random.Random(seed + 2))
        CurlDriver(client, rng=random.Random(seed + 3),
                   sites=["example.com"]).run_schedule(config.connections,
                                                       config.interval)
        bridges[server_host.ip] = {"label": label, "transport": transport}
    world.sim.run(until=config.duration)
    return _TorProbingResult(world=world, pipeline=pipeline, bridges=bridges)


def _summarize_tor_probing(result: _TorProbingResult) -> Dict[str, object]:
    a = result.pipeline.outputs()
    delays = a["delays"]
    endpoints = delays["endpoints"]
    counters = result.world.bus.counters  # type: ignore[attr-defined]
    bridges = [
        {
            "label": info["label"],
            "transport": info["transport"],
            "ip": ip,
            "probes": a["probes"]["by_server"].get(ip, 0),
            "flagged_at": endpoints.get(ip, {}).get("flagged_at"),
            "first_probe_at": endpoints.get(ip, {}).get("first_probe_at"),
            "blocked": endpoints.get(ip, {}).get("blocked_at") is not None,
            "blocked_at": endpoints.get(ip, {}).get("blocked_at"),
        }
        for ip, info in sorted(result.bridges.items())
    ]
    return {
        "bridges": bridges,
        "flagged": a["flagged"]["count"],
        "probes": a["probes"]["count"],
        "probes_by_type": a["probes"]["by_type"],
        "confirmed": counters.get("scheduler.tor.confirmed", 0),
        "blocks_scheduled": counters.get("scheduler.tor.block_scheduled", 0),
        "blocked": delays["blocked"],
        "flag_to_probe": delays["flag_to_probe"],
        "probe_to_block": delays["probe_to_block"],
        "flag_to_block": delays["flag_to_block"],
    }


register(Scenario(
    name="tor-probing",
    title="GFW Tor/obfs active probing (Winter & Lindskog timelines)",
    params_type=TorProbingConfig,
    build=_build_tor_probing,
    summarize=_summarize_tor_probing,
    analysis_of=_analysis_payload,
    description="Vanilla Tor, obfs3, and obfs4 bridges under the Tor "
                "detector and the per-protocol probing engine: garbage + "
                "forged-VERSIONS probes, confirmation bursts, and batched "
                "block rollout; reports flag->probe->block delay series.",
    tags=("gfw", "tor", "probing", "protocol"),
))


# ------------------------------------------------- §5.1 probesim sweeps


@dataclass
class ProbesimGridConfig:
    """Figure 10 sweep: random probes of many lengths per (impl, cipher)."""

    seed: int = 0
    profiles: Tuple[str, ...] = ("ss-libev-3.1.3", "ss-libev-3.3.1",
                                 "outline-1.0.7")
    methods: Tuple[str, ...] = ("aes-256-ctr", "aes-128-gcm",
                                "chacha20-ietf-poly1305")
    lengths: Tuple[int, ...] = PROBE_LENGTH_SCHEDULE
    trials: int = 4
    # Sharding restriction: which compatible (profile, method) pairs
    # this run covers.  None (the default, and the serial run) means
    # every compatible pair of the profiles x methods grid.
    pairs: Optional[Tuple[Tuple[str, str], ...]] = None


class _GridArtifact:
    def __init__(self, rows, unit_buses):
        self.rows = rows
        self.unit_buses = unit_buses


def _grid_pairs(config: ProbesimGridConfig) -> List[Tuple[str, str]]:
    """Compatible (profile, method) pairs, honouring a pairs restriction."""
    from ..crypto import get_spec
    from ..crypto.registry import CipherKind

    pairs: List[Tuple[str, str]] = []
    for profile_name in config.profiles:
        profile = get_profile(profile_name)
        for method in config.methods:
            kind = get_spec(method).kind
            if kind == CipherKind.STREAM and not profile.supports_stream:
                continue
            if kind == CipherKind.AEAD and not profile.supports_aead:
                continue
            pairs.append((profile_name, method))
    if config.pairs is not None:
        wanted = {tuple(pair) for pair in config.pairs}
        unknown = wanted - set(pairs)
        if unknown:
            raise ValueError(
                f"pairs not in the compatible grid: {sorted(unknown)}")
        pairs = [pair for pair in pairs if pair in wanted]
    return pairs


def _build_probesim_grid(config: ProbesimGridConfig) -> _GridArtifact:
    # One bus per (profile, method) row: rows are independent (each row
    # reseeds from config.seed), so per-row buses cost nothing and give
    # the sharded merge the per-unit snapshots it replays.
    rows = {}
    unit_buses: List[Tuple[str, EventBus]] = []
    for profile_name, method in _grid_pairs(config):
        bus = EventBus()
        row = build_random_probe_row(
            profile_name, method, config.lengths,
            trials=config.trials, seed=config.seed, bus=bus,
        )
        rows[(profile_name, method)] = row
        unit_buses.append((f"{profile_name}|{method}", bus))
    return _GridArtifact(rows, unit_buses)


def _summarize_probesim_grid(artifact: _GridArtifact) -> Dict[str, object]:
    return {
        "rows": {
            f"{profile}|{method}": {
                str(length): row.cells[length].label()
                for length in sorted(row.cells)
            }
            for (profile, method), row in sorted(artifact.rows.items())
        },
    }


register(Scenario(
    name="probesim-grid",
    title="§5.1 random-probe reaction grid (Figure 10)",
    params_type=ProbesimGridConfig,
    build=_build_probesim_grid,
    summarize=_summarize_probesim_grid,
    events_of=lambda artifact: _unit_events(artifact.unit_buses),
    description="Length sweep of random probes against server models; "
                "incompatible (impl, cipher) combos are skipped.",
    tags=("probesim", "sweep"),
    sharder=Sharder(
        mode="cases",
        units=lambda config: [f"{p}|{m}" for p, m in _grid_pairs(config)],
        restrict=lambda config, labels: {
            "pairs": tuple(tuple(label.split("|", 1)) for label in labels)},
    ),
))


class _ReplayArtifact:
    def __init__(self, table, unit_buses):
        self.table = table
        self.unit_buses = unit_buses


@dataclass
class ProbesimReplayConfig:
    """Table 5 battery: identical vs byte-changed replays per pair."""

    seed: int = 41
    pairs: Tuple[Tuple[str, str], ...] = (
        ("ss-libev-3.1.3", "aes-256-ctr"),
        ("ss-libev-3.1.3", "aes-256-gcm"),
        ("ss-libev-3.3.1", "aes-256-ctr"),
        ("ss-libev-3.3.1", "aes-256-gcm"),
        ("outline-1.0.7", "chacha20-ietf-poly1305"),
    )
    trials: int = 4


def _build_probesim_replay(config: ProbesimReplayConfig) -> _ReplayArtifact:
    # One bus per pair: every trial reseeds from (seed, trial) alone, so
    # a pair's row is identical whether it runs with the full battery or
    # restricted to a shard's subset.
    table = {}
    unit_buses: List[Tuple[str, EventBus]] = []
    for pair in config.pairs:
        bus = EventBus()
        table.update(build_replay_table([tuple(pair)], trials=config.trials,
                                        seed=config.seed, bus=bus))
        unit_buses.append((f"{pair[0]}|{pair[1]}", bus))
    return _ReplayArtifact(table, unit_buses)


def _summarize_probesim_replay(artifact: _ReplayArtifact) -> Dict[str, object]:
    return {
        "rows": {
            f"{profile}|{method}": {
                mode: dict(sorted(counter.items()))
                for mode, counter in modes.items()
            }
            for (profile, method), modes in sorted(artifact.table.items())
        },
    }


register(Scenario(
    name="probesim-replay",
    title="§5.1 replay battery (Table 5)",
    params_type=ProbesimReplayConfig,
    build=_build_probesim_replay,
    summarize=_summarize_probesim_replay,
    events_of=lambda artifact: _unit_events(artifact.unit_buses),
    description="Identical vs byte-changed replay reactions per "
                "(implementation, cipher) pair.",
    tags=("probesim", "sweep"),
    sharder=Sharder(
        mode="cases",
        units=lambda config: [f"{p}|{m}" for p, m in config.pairs],
        restrict=lambda config, labels: {
            "pairs": tuple(tuple(label.split("|", 1)) for label in labels)},
    ),
))


# ------------------------------------------------------ ablation matrices


@dataclass
class DetectorFeaturesConfig:
    """Which passive-detector feature does the work?"""

    seed: int = 61
    samples: int = 400
    method: str = "chacha20-ietf-poly1305"


_DETECTOR_VARIANTS: Tuple[Tuple[str, Dict[str, bool]], ...] = (
    ("full detector", {}),
    ("no length filter", {"length_filter": False}),
    ("no entropy filter", {"entropy_filter": False}),
    ("neither filter", {"length_filter": False, "entropy_filter": False}),
)


def _build_detector_features(config: DetectorFeaturesConfig) -> Dict[str, object]:
    from ..shadowsocks import encode_target
    from ..shadowsocks.aead_session import AeadEncryptor, aead_master_key
    from ..workloads import SITES, http_get_request, site_request, tls_client_hello

    rng = random.Random(config.seed)
    master = aead_master_key("pw", config.method)
    ss_packets = []
    for _ in range(config.samples):
        site = rng.choice(SITES)
        payload = encode_target(site, 443) + site_request(site, rng)
        enc = AeadEncryptor(config.method, master, rng=rng)
        ss_packets.append(enc.encrypt(payload))
    plain_packets = []
    for _ in range(config.samples):
        site = rng.choice(SITES)
        if rng.random() < 0.5:
            plain_packets.append(http_get_request(site, rng))
        else:
            plain_packets.append(tls_client_hello(site, rng))

    rows = {}
    for label, toggles in _DETECTOR_VARIANTS:
        detector = PassiveDetector(DetectorConfig(base_rate=1.0, **toggles))
        ss_rate = sum(detector.flag_probability(p) for p in ss_packets)
        plain_rate = sum(detector.flag_probability(p) for p in plain_packets)
        rows[label] = {
            "ss_rate": ss_rate / len(ss_packets),
            "plain_rate": plain_rate / len(plain_packets),
        }
    return {"rows": rows}


register(Scenario(
    name="ablation-detector-features",
    title="Ablation: passive-detector feature contributions",
    params_type=DetectorFeaturesConfig,
    build=_build_detector_features,
    summarize=lambda artifact: artifact,
    events_of=lambda artifact: {},
    description="Flag rates on Shadowsocks vs plaintext first packets "
                "with length/entropy filters toggled.",
    tags=("ablation", "detector"),
))


_DEFENSE_CASES: Tuple[Tuple[str, str, str, bool, bool], ...] = (
    # (label, method, profile, hardened, brdgrd)
    ("stream, no defenses (ssr)", "aes-256-ctr", "ssr", False, False),
    ("AEAD, old libev", "aes-256-gcm", "ss-libev-3.1.3", False, False),
    ("AEAD, hardened + replay filter", "chacha20-ietf-poly1305",
     "outline-1.0.7", True, False),
    ("hardened + brdgrd", "chacha20-ietf-poly1305", "outline-1.0.7",
     True, True),
)

_DEFENSE_CASES_BY_LABEL = {case[0]: case for case in _DEFENSE_CASES}


@dataclass
class DefenseMatrixConfig:
    """§7 defense configurations against the full GFW pipeline."""

    seed: int = 300
    connections: int = 30
    interval: float = 20.0
    duration: float = 12 * 3600.0
    server_port: int = 8388
    # Which defense cases run (shard restriction); labels index
    # _DEFENSE_CASES.
    cases: Tuple[str, ...] = tuple(case[0] for case in _DEFENSE_CASES)


class _DefenseArtifact:
    def __init__(self, cases, unit_buses):
        self.cases = cases
        self.unit_buses = unit_buses


def _run_defense_case(config: DefenseMatrixConfig, method: str, profile_name: str,
                      hardened: bool, use_brdgrd: bool, seed: int,
                      bus: EventBus) -> Dict[str, object]:
    profile = harden(get_profile(profile_name)) if hardened else profile_name
    world = build_world(
        seed=seed,
        detector_config=DetectorConfig(base_rate=1.0),
        blocking_policy=BlockingPolicy(human_gated=False,
                                       block_probability=1.0),
        websites=["example.com"],
    )
    server_host = world.add_server("server", region="uk")
    client_host = world.add_client("client")
    if use_brdgrd:
        world.net.add_middlebox(Brdgrd(server_host.ip, config.server_port,
                                       rng=random.Random(seed)))
    proto = build_protocol({"kind": "shadowsocks", "password": "pw",
                            "method": method, "profile": profile_name})
    proto.make_server(server_host, config.server_port, profile=profile,
                      rng=random.Random(seed + 1))
    client = proto.make_client(client_host, server_host.ip,
                               config.server_port,
                               rng=random.Random(seed + 2))
    CurlDriver(client, rng=random.Random(seed + 3),
               sites=["example.com"]).run_schedule(config.connections,
                                                   config.interval)
    world.sim.run(until=config.duration)
    bus.absorb(world.bus)
    replay_data = sum(
        1 for r in world.gfw.probe_log
        if r.probe.is_replay and r.reaction == Reaction.DATA
    )
    return {
        "flagged": world.gfw.flagged_connections,
        "probes": len(world.gfw.probe_log),
        "replay_data": replay_data,
        "blocked": world.gfw.blocking.is_blocked(server_host.ip,
                                                 config.server_port),
    }


def _build_defense_matrix(config: DefenseMatrixConfig) -> _DefenseArtifact:
    # Per-case seeds derive from (seed, label), not the case's position,
    # so a case simulates identically inside any shard subset; per-case
    # buses carry the unit snapshots the sharded merge replays.
    cases = {}
    unit_buses: List[Tuple[str, EventBus]] = []
    for label in config.cases:
        try:
            _, method, profile, hardened, brdgrd = _DEFENSE_CASES_BY_LABEL[label]
        except KeyError:
            known = ", ".join(sorted(_DEFENSE_CASES_BY_LABEL))
            raise ValueError(f"unknown defense case {label!r}; known: {known}")
        bus = EventBus()
        cases[label] = _run_defense_case(
            config, method, profile, hardened, brdgrd,
            seed=derive_seed(config.seed, label), bus=bus,
        )
        unit_buses.append((label, bus))
    return _DefenseArtifact(cases, unit_buses)


@dataclass
class ImpairmentMatrixConfig:
    """Loss/reorder grid over the full pipeline (detect, probe, block)."""

    seed: int = 97
    loss_rates: Tuple[float, ...] = (0.0, 0.01, 0.05)
    reorder_rates: Tuple[float, ...] = (0.0, 0.05)
    reorder_skew: float = 0.03
    duplicate: float = 0.0
    jitter: float = 0.0
    connections: int = 30
    interval: float = 20.0
    duration: float = 6 * 3600.0
    method: str = "chacha20-ietf-poly1305"
    profile: str = "ss-libev-3.3.1"
    server_port: int = 8388
    # Sharding restriction: which grid-cell labels run.  None (the
    # default, and the serial run) means the full loss x reorder grid.
    cells: Optional[Tuple[str, ...]] = None


class _ImpairmentArtifact:
    def __init__(self, cells, unit_buses):
        self.cells = cells
        self.unit_buses = unit_buses


def _impairment_labels(config: ImpairmentMatrixConfig) -> List[str]:
    """Grid-cell labels in grid order, honouring a cells restriction."""
    labels = [f"loss={loss:g}|reorder={reorder:g}"
              for loss in config.loss_rates
              for reorder in config.reorder_rates]
    if config.cells is not None:
        wanted = set(config.cells)
        unknown = wanted - set(labels)
        if unknown:
            raise ValueError(f"cells not in the grid: {sorted(unknown)}")
        labels = [label for label in labels if label in wanted]
    return labels


def _run_impairment_cell(config: ImpairmentMatrixConfig, loss: float,
                         reorder: float, seed: int,
                         bus: EventBus) -> Dict[str, object]:
    impairment = Impairment(loss=loss, reorder=reorder,
                            reorder_skew=config.reorder_skew,
                            duplicate=config.duplicate,
                            jitter=config.jitter)
    world = build_world(
        seed=seed,
        detector_config=DetectorConfig(base_rate=1.0),
        blocking_policy=BlockingPolicy(human_gated=False,
                                       block_probability=1.0),
        websites=["example.com"],
        impairment=impairment if impairment.active else None,
    )
    server_host = world.add_server("server", region="uk")
    client_host = world.add_client("client")
    proto = build_protocol({"kind": "shadowsocks", "password": "pw",
                            "method": config.method,
                            "profile": config.profile})
    proto.make_server(server_host, config.server_port,
                      rng=random.Random(seed + 1))
    client = proto.make_client(client_host, server_host.ip,
                               config.server_port,
                               rng=random.Random(seed + 2))
    CurlDriver(client, rng=random.Random(seed + 3),
               sites=["example.com"]).run_schedule(config.connections,
                                                   config.interval)
    world.sim.run(until=config.duration)
    bus.absorb(world.bus)
    counters = world.bus.counters
    inspected = world.gfw.inspected_connections
    flagged = world.gfw.flagged_connections
    return {
        "loss": loss,
        "reorder": reorder,
        "inspected": inspected,
        "flagged": flagged,
        "hit_rate": flagged / inspected if inspected else 0.0,
        "probes": len(world.gfw.probe_log),
        "blocked": world.gfw.blocking.is_blocked(server_host.ip,
                                                 config.server_port),
        "tcp_retransmits": (counters.get("tcp.retransmit", 0)
                            + counters.get("tcp.syn.retry", 0)),
        "net_losses": counters.get("net.loss", 0),
        "net_reorders": counters.get("net.reorder", 0),
        "impairment_drops": world.net.impairment_drops,
    }


def _build_impairment_matrix(config: ImpairmentMatrixConfig) -> _ImpairmentArtifact:
    # Per-cell seeds derive from (seed, label), not the cell's grid
    # position, so a cell simulates identically inside any shard subset.
    wanted = set(_impairment_labels(config))
    cells = {}
    unit_buses: List[Tuple[str, EventBus]] = []
    for loss in config.loss_rates:
        for reorder in config.reorder_rates:
            label = f"loss={loss:g}|reorder={reorder:g}"
            if label not in wanted:
                continue
            bus = EventBus()
            cells[label] = _run_impairment_cell(
                config, loss, reorder,
                seed=derive_seed(config.seed, label), bus=bus,
            )
            unit_buses.append((label, bus))
    return _ImpairmentArtifact(cells, unit_buses)


register(Scenario(
    name="impairment-matrix",
    title="Ablation: path impairments vs detection and blocking",
    params_type=ImpairmentMatrixConfig,
    build=_build_impairment_matrix,
    summarize=lambda artifact: {"cells": artifact.cells},
    events_of=lambda artifact: _unit_events(artifact.unit_buses),
    description="Loss/reorder sweep over the full GFW pipeline: detector "
                "hit-rate, probe volume, TCP retransmissions, and blocking "
                "outcome per grid cell.",
    tags=("ablation", "impairment", "net"),
    sharder=Sharder(
        mode="cases",
        units=_impairment_labels,
        restrict=lambda config, labels: {"cells": tuple(labels)},
    ),
))


# ------------------------------------------ detector-ensemble ablation


# (label, detector-stage spec) — the spec grammar of repro.gfw.stages.
_ENSEMBLE_CASES: Tuple[Tuple[str, object], ...] = (
    ("passive", {"kind": "passive", "base_rate": 1.0}),
    ("entropy", {"kind": "entropy", "threshold": 7.2}),
    ("vmess", "vmess"),
    ("length-dist", {"kind": "length-dist", "train_samples": 200}),
    ("entropy-or-vmess", {"kind": "any",
                          "members": [{"kind": "entropy", "threshold": 7.2},
                                      "vmess"]}),
    ("weighted-vote", {"kind": "weighted", "threshold": 0.55,
                       "weights": [0.5, 0.5],
                       "members": [{"kind": "entropy", "threshold": 7.2},
                                   {"kind": "length-dist",
                                    "train_samples": 200}]}),
)


@dataclass
class DetectorEnsembleConfig:
    """Swap the in-path detector pipeline; keep probing/blocking fixed."""

    seed: int = 83
    connections: int = 20
    interval: float = 30.0
    duration: float = 3 * 3600.0
    method: str = "chacha20-ietf-poly1305"
    profile: str = "ss-libev-3.3.1"
    server_port: int = 8388
    cases: Tuple[Tuple[str, object], ...] = _ENSEMBLE_CASES


class _EnsembleArtifact:
    def __init__(self, cases, analysis, unit_buses):
        self.cases = cases
        self.analysis = analysis
        self.unit_buses = unit_buses


def _run_ensemble_case(config: DetectorEnsembleConfig, spec: object,
                       seed: int, bus: EventBus):
    world = build_world(
        seed=seed,
        detectors=spec,
        websites=["example.com"],
    )
    pipeline = AnalysisPipeline({"verdicts": VerdictRecords(),
                                 "flagged": FlaggedConnections()})
    pipeline.attach(world.bus)
    server_host = world.add_server("server", region="uk")
    ss_client = world.add_client("ss-client")
    web_client = world.add_client("web-client", residential=True)
    proto = build_protocol({"kind": "shadowsocks", "password": "pw",
                            "method": config.method,
                            "profile": config.profile})
    proto.make_server(server_host, config.server_port,
                      rng=random.Random(seed + 1))
    client = proto.make_client(ss_client, server_host.ip, config.server_port,
                               rng=random.Random(seed + 2))
    CurlDriver(client, rng=random.Random(seed + 3),
               sites=["example.com"]).run_schedule(config.connections,
                                                   config.interval)

    # Plaintext background: direct border-crossing HTTP fetches, so the
    # ablation measures false positives alongside detection hits.
    web_ip = world.hosts["web-example.com"].ip
    web_rng = random.Random(seed + 4)

    def browse() -> None:
        conn = web_client.connect(web_ip, 80)
        conn.on_connected = lambda: conn.send(
            http_get_request("example.com", web_rng))
        conn.on_data = lambda data: conn.close()
        conn.on_remote_fin = conn.close

    for i in range(config.connections):
        world.sim.schedule(i * config.interval + config.interval / 2, browse)

    world.sim.run(until=config.duration)
    bus.absorb(world.bus)
    out = pipeline.outputs()
    summary = {
        "spec": world.gfw.pipeline.spec(),
        "flagged": out["flagged"]["count"],
        "verdicts": out["verdicts"]["count"],
        "by_stage": out["verdicts"]["by_stage"],
        "scores": out["verdicts"]["scores"],
        "probes": len(world.gfw.probe_log),
        "ss_connections": config.connections,
        "plaintext_connections": config.connections,
    }
    return summary, pipeline.payload()


def _build_detector_ensemble(config: DetectorEnsembleConfig) -> _EnsembleArtifact:
    # Per-case seeds derive from (seed, label), not the case's position,
    # so ablating cases in and out (or sharding them) never reseeds the
    # survivors; per-case buses carry the unit snapshots shards replay.
    cases: Dict[str, object] = {}
    analysis: Dict[str, object] = {}
    unit_buses: List[Tuple[str, EventBus]] = []
    for label, spec in config.cases:
        bus = EventBus()
        summary, payload = _run_ensemble_case(
            config, spec, seed=derive_seed(config.seed, label), bus=bus)
        cases[label] = summary
        for name, section in payload.items():
            analysis[f"{label}:{name}"] = section
        unit_buses.append((label, bus))
    return _EnsembleArtifact(cases, analysis, unit_buses)


register(Scenario(
    name="ablation-detector-ensemble",
    title="Ablation: in-path detector pipelines vs the full censor",
    params_type=DetectorEnsembleConfig,
    build=_build_detector_ensemble,
    summarize=lambda artifact: {"cases": artifact.cases},
    analysis_of=lambda artifact: artifact.analysis,
    events_of=lambda artifact: _unit_events(artifact.unit_buses),
    description="Shadowsocks + plaintext traffic against swapped detector "
                "pipelines (passive, entropy, vmess, length-dist, and "
                "ensembles); per-case verdict records on the analysis "
                "channel.",
    tags=("ablation", "detector", "gfw"),
    sharder=Sharder(
        mode="cases",
        units=lambda config: [label for label, _ in config.cases],
        restrict=lambda config, labels: {
            "cases": tuple(case for case in config.cases
                           if case[0] in set(labels))},
    ),
))


register(Scenario(
    name="ablation-defense-matrix",
    title="Ablation: defense configurations vs the full GFW pipeline",
    params_type=DefenseMatrixConfig,
    build=_build_defense_matrix,
    summarize=lambda artifact: {"cases": artifact.cases},
    events_of=lambda artifact: _unit_events(artifact.unit_buses),
    description="Stream/AEAD/hardened/brdgrd server configurations under "
                "an aggressive GFW with blocking enabled.",
    tags=("ablation", "defense"),
    sharder=Sharder(
        mode="cases",
        units=lambda config: list(config.cases),
        restrict=lambda config, labels: {"cases": tuple(labels)},
    ),
))
