"""Shared world-building for the paper's experiments (canonical home).

A *world* is a simulated Internet split at the Chinese border: client
hosts inside China, measurement servers outside (or vice versa, for the
§4.2 directionality experiment), and a :class:`GreatFirewall` middlebox
on the path.  The inside address space covers the Table 3 prober ASes,
the fleet anchor, and the experiment's own client subnets, so the GFW
sees exactly the border-crossing traffic it should.

This module is deliberately *not* imported from
``repro.runtime.__init__`` — it pulls in :mod:`repro.net` and
:mod:`repro.gfw`, which themselves import :mod:`repro.runtime.events`,
and eagerly importing it from the package root would create a cycle.
Import it as ``repro.runtime.topology`` directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..gfw import (
    BlockingPolicy,
    DetectorConfig,
    FleetConfig,
    GreatFirewall,
    SchedulerConfig,
)
from ..net import AS_TABLE, Host, Impairment, Network, Simulator

__all__ = ["CHINA_CIDRS", "World", "build_world", "settle", "subnet_prefix"]

# Inside-China address space: every prober AS prefix, the fleet anchor
# block, and the subnets we place experiment clients in.
CLIENT_SUBNET_BEIJING = "192.0.2.0/24"      # Tencent Beijing datacenter stand-in
CLIENT_SUBNET_RESIDENTIAL = "192.88.99.0/24"  # residential network stand-in
FLEET_BLOCK = "100.64.0.0/10"

CHINA_CIDRS: List[str] = (
    [prefix for info in AS_TABLE for prefix in info.prefixes]
    + [CLIENT_SUBNET_BEIJING, CLIENT_SUBNET_RESIDENTIAL, FLEET_BLOCK]
)

# Outside-world addressing.
SERVER_SUBNET_UK = "198.51.100."      # Digital Ocean UK stand-in
SERVER_SUBNET_US = "203.0.113."       # US datacenter / university stand-in
WEB_SUBNET = "198.18.0."              # the public web sites being browsed


def subnet_prefix(subnet: str) -> str:
    """Normalize a /24 spec to its dotted prefix.

    Accepts ``"192.0.2.0/24"``, ``"192.0.2.0"`` or ``"192.0.2."`` and
    returns ``"192.0.2."``.
    """
    subnet = subnet.split("/", 1)[0]
    if subnet.endswith("."):
        return subnet
    return subnet.rsplit(".", 1)[0] + "."


@dataclass
class World:
    sim: Simulator
    net: Network
    gfw: GreatFirewall
    rng: random.Random
    hosts: Dict[str, Host] = field(default_factory=dict)
    _next_ip: Dict[str, int] = field(default_factory=dict)
    # Streaming mode: host captures stay enabled (so analysis taps fire)
    # but buffer nothing, keeping long runs constant-memory.  Legacy
    # capture-based accessors see empty captures in this mode.
    stream_captures: bool = False

    # Host indices run 10..254: below 10 is reserved for infrastructure
    # conventions, 255 would be the broadcast address.
    FIRST_HOST_INDEX = 10
    LAST_HOST_INDEX = 254

    @property
    def bus(self):
        """The world's instrumentation bus (lives on the simulator)."""
        return self.sim.bus

    def add_host(self, name: str, subnet: str, **kwargs) -> Host:
        """Attach a host on the given /24 (e.g. "198.51.100." or a CIDR)."""
        prefix = subnet_prefix(subnet)
        index = self._next_ip.get(prefix, self.FIRST_HOST_INDEX)
        if index > self.LAST_HOST_INDEX:
            raise ValueError(
                f"subnet {prefix}0/24 is exhausted: host index {index} exceeds "
                f"{self.LAST_HOST_INDEX} (cannot mint a valid /24 address for "
                f"host {name!r}); spread hosts over more subnets"
            )
        self._next_ip[prefix] = index + 1
        host = Host(self.sim, self.net, f"{prefix}{index}", name, **kwargs)
        if self.stream_captures:
            host.capture.buffering = False
        self.hosts[name] = host
        return host

    def add_client(self, name: str, residential: bool = False) -> Host:
        subnet = (
            CLIENT_SUBNET_RESIDENTIAL if residential else CLIENT_SUBNET_BEIJING
        )
        return self.add_host(name, subnet)

    def add_server(self, name: str, region: str = "uk") -> Host:
        subnet = {"uk": SERVER_SUBNET_UK, "us": SERVER_SUBNET_US,
                  "web": WEB_SUBNET}[region]
        return self.add_host(name, subnet)

    def add_website(self, hostname: str) -> Host:
        """Attach a public web server and register its DNS name."""
        host = self.add_server(f"web-{hostname}", region="web")
        self.net.register_name(hostname, host.ip)

        def web_app(conn):
            conn.on_data = lambda data: conn.send(
                b"HTTP/1.1 200 OK\r\nContent-Length: 64\r\n\r\n" + b"x" * 64
            )
            conn.on_remote_fin = conn.close

        host.listen(80, web_app)
        host.listen(443, web_app)
        return host


def build_world(
    seed: int = 0,
    *,
    detector_config: Optional[DetectorConfig] = None,
    detectors: Optional[Any] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    fleet_config: Optional[FleetConfig] = None,
    blocking_policy: Optional[BlockingPolicy] = None,
    probe_behaviors: Optional[Dict[str, Any]] = None,
    websites: Optional[List[str]] = None,
    impairment: Optional[Impairment] = None,
    stream_captures: bool = False,
    shard: Optional[Tuple[int, int]] = None,
) -> World:
    """Build a bordered world with a GFW on the path.

    ``detectors`` is a JSON-able detector-stage spec (see
    :mod:`repro.gfw.stages`) selecting the in-path detector pipeline;
    ``None`` keeps the paper's passive classifier configured by
    ``detector_config``.

    ``probe_behaviors`` maps protocol names to probing-behaviour specs
    (see :mod:`repro.gfw.probing`), overriding the playbook the censor
    runs against flagged flows classified as that protocol.

    ``shard=(index, count)`` makes this world's censor one of ``count``
    disjoint sensors over the flow space: its flow table only admits
    border-crossing connections whose seed-stable
    :func:`~repro.runtime.sharding.flow_key` hashes to ``index``
    (see :mod:`repro.runtime.sharding`).

    ``impairment`` attaches a network-wide fault profile (loss,
    reordering, duplication, jitter, flaps); an inactive (all-zero)
    profile is equivalent to ``None`` and leaves the fabric pristine.
    The network's fault RNG is derived from ``seed`` directly — not
    drawn from the world RNG — so enabling impairments never shifts the
    seed derivations of the GFW, hosts, or workloads.

    ``stream_captures`` disables capture *buffering* on every host
    (including the fleet anchor) while leaving captures enabled, so
    streaming-analysis taps still see every segment but nothing
    accumulates in memory.
    """
    rng = random.Random(seed)
    sim = Simulator()
    net = Network(sim, impairment=impairment,
                  rng=random.Random((seed << 4) ^ 0x1A7E7))
    gfw = GreatFirewall(
        sim, net, CHINA_CIDRS,
        rng=random.Random(rng.randrange(1 << 30)),
        detector_config=detector_config,
        detectors=detectors,
        scheduler_config=scheduler_config,
        fleet_config=fleet_config,
        blocking_policy=blocking_policy,
        probe_behaviors=probe_behaviors,
        shard=shard,
    )
    world = World(sim=sim, net=net, gfw=gfw, rng=rng,
                  stream_captures=stream_captures)
    if stream_captures:
        gfw.fleet_host.capture.buffering = False
    for hostname in websites or []:
        world.add_website(hostname)
    return world


def settle(world: World, duration: float, drain: float = 1.25) -> None:
    """Run the world past ``duration`` so in-flight activity drains.

    Every experiment ends the same way: run the event loop ``drain``
    times longer than the nominal measurement window so late probes,
    retransmissions, and connection teardowns complete.  Centralizing
    the idiom here keeps the drain factor a visible, auditable choice.
    """
    world.sim.run(until=duration * drain)
