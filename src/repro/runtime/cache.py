"""On-disk result cache keyed on (scenario, params, seed, code).

Layout, one directory per cached job under the cache root (default
``runs/``, overridable via ``$REPRO_RUNS_DIR`` or explicitly)::

    runs/<scenario>/<key>/result.json     # the RunResult
    runs/<scenario>/<key>/manifest.json   # machine-readable provenance

``<key>`` is a hash of the scenario name, the canonicalized params, the
seed, and a fingerprint of the ``repro`` package's source code — editing
any source file under ``src/repro/`` invalidates every cached result, so
a stale cache can never masquerade as a reproduction.

The manifest records params, seed, wall time, and the instrumentation
bus's event counts, so a directory of runs is auditable without
unpickling or re-running anything.

Concurrency: the cache is shared server-side by the :mod:`repro.service`
control plane, where several worker processes can finish the same
``(scenario, params, seed)`` job at once.  Two guarantees make that
safe:

* every file lands via write-to-temp + :func:`os.replace`, so a reader
  can never observe a torn ``result.json``/``manifest.json``; and
* :meth:`ResultCache.store` serializes same-key writers behind a
  per-key ``fcntl`` file lock (``.lock`` inside the job directory), so
  the result and its manifest are always written by the *same* process
  — the pair can never interleave two writers' halves.

Reads take no lock: the atomic replace already guarantees each file is
either absent or complete.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import time
from typing import Any, Dict, Iterator, Optional, Union

try:  # POSIX; on platforms without fcntl the atomic replaces still hold
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from .scenario import RunResult, canonical_json

__all__ = ["ResultCache", "code_fingerprint", "default_cache_root"]

_FINGERPRINT_CACHE: Optional[str] = None


def code_fingerprint() -> str:
    """Content hash of every ``.py`` file in the installed ``repro`` package.

    Memoized per process: the source tree does not change under a running
    sweep, and hashing ~100 small files once costs milliseconds.
    """
    global _FINGERPRINT_CACHE
    if _FINGERPRINT_CACHE is None:
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT_CACHE = digest.hexdigest()[:16]
    return _FINGERPRINT_CACHE


def default_cache_root() -> pathlib.Path:
    return pathlib.Path(os.environ.get("REPRO_RUNS_DIR", "runs"))


class ResultCache:
    """Load/store :class:`RunResult`s plus their manifests on disk."""

    RESULT_FILE = "result.json"
    MANIFEST_FILE = "manifest.json"

    def __init__(self, root: Optional[Union[str, os.PathLike]] = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0

    # ----------------------------------------------------------------- keys

    @staticmethod
    def key_for(scenario: str, params: Dict[str, Any], seed: int,
                fingerprint: str) -> str:
        material = canonical_json(
            {"scenario": scenario, "params": params, "seed": seed,
             "code": fingerprint}
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]

    def dir_for(self, scenario: str, key: str) -> pathlib.Path:
        return self.root / scenario / key

    # ------------------------------------------------------------------- io

    def load(self, scenario: str, params: Dict[str, Any], seed: int,
             fingerprint: str) -> Optional[RunResult]:
        key = self.key_for(scenario, params, seed, fingerprint)
        path = self.dir_for(scenario, key) / self.RESULT_FILE
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        result = RunResult.from_json_dict(data)
        result.cache_hit = True
        self.hits += 1
        return result

    def stats(self) -> Dict[str, int]:
        """This process's hit/miss tallies (feeds the service metrics)."""
        return {"hits": self.hits, "misses": self.misses}

    def store(self, result: RunResult) -> pathlib.Path:
        """Persist a result and its manifest; returns the job directory.

        Safe under concurrent same-key writers: the per-key lock makes
        the (result, manifest) pair a single critical section, and both
        files are replaced atomically, so late writers simply overwrite
        the earlier identical content.
        """
        key = self.key_for(result.scenario, result.params, result.seed,
                           result.fingerprint)
        directory = self.dir_for(result.scenario, key)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "scenario": result.scenario,
            "key": key,
            "params": result.params,
            "seed": result.seed,
            "fingerprint": result.fingerprint,
            "wall_time": result.wall_time,
            "events": result.events,
            # Finalized analyzer outputs only — the full (bulkier)
            # serialized states live in result.json; the manifest stays
            # a human-auditable digest of what the run concluded.
            "analysis": {name: spec.get("output")
                         for name, spec in result.analysis.items()},
            "created": time.time(),
        }
        with self._key_lock(directory):
            self._write_atomic(directory / self.RESULT_FILE,
                               canonical_json(result.to_json_dict()))
            self._write_atomic(directory / self.MANIFEST_FILE,
                               json.dumps(manifest, sort_keys=True, indent=2))
        return directory

    LOCK_FILE = ".lock"

    @staticmethod
    @contextlib.contextmanager
    def _key_lock(directory: pathlib.Path) -> Iterator[None]:
        """Exclusive advisory lock scoped to one cache-key directory.

        Held only around the two writes — cheap enough that writers
        simply queue.  Without ``fcntl`` (non-POSIX) this degrades to
        the atomic-replace-only guarantee, which still prevents torn
        files, just not interleaved (result from A, manifest from B)
        pairs.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        fd = os.open(directory / ResultCache.LOCK_FILE,
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    @staticmethod
    def _write_atomic(path: pathlib.Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_text(text + "\n")
        os.replace(tmp, path)
