"""The runtime spine: scenario registry, runner, cache, instrumentation.

``repro.runtime`` is the layer every harness goes through:

* :mod:`~repro.runtime.events` — the instrumentation bus each
  :class:`~repro.net.sim.Simulator` carries;
* :mod:`~repro.runtime.scenario` — declarative scenario specs and the
  structured :class:`RunResult` schema;
* :mod:`~repro.runtime.cache` — the on-disk result cache plus run
  manifests, keyed on (scenario, params, seed, code fingerprint);
* :mod:`~repro.runtime.runner` — serial/parallel multi-seed execution
  with deterministic merge;
* :mod:`~repro.runtime.scenarios` — builtin registrations (imported
  lazily the first time the registry is consulted).

Quick use::

    from repro.runtime import run_scenario, run_sweep
    result = run_scenario("sink", seed=3, overrides={"connections": 500})
    sweep = run_sweep("brdgrd", seeds=range(8), jobs=4)
"""

from .cache import ResultCache, code_fingerprint, default_cache_root
from .events import EventBus, merge_counters
from .runner import (
    ShardedResult,
    SweepResult,
    merge_results,
    run_artifact,
    run_scenario,
    run_sharded,
    run_sweep,
)
from .scenario import (
    RunResult,
    Scenario,
    all_scenarios,
    canonical_json,
    canonical_params,
    get_scenario,
    register,
    scenario_names,
)
from .sharding import (
    Sharder,
    ShardingError,
    derive_seed,
    flow_key,
    partition,
    shard_of,
)

__all__ = [
    "EventBus",
    "ResultCache",
    "RunResult",
    "Scenario",
    "ShardedResult",
    "Sharder",
    "ShardingError",
    "SweepResult",
    "all_scenarios",
    "canonical_json",
    "canonical_params",
    "code_fingerprint",
    "default_cache_root",
    "derive_seed",
    "flow_key",
    "get_scenario",
    "merge_counters",
    "merge_results",
    "partition",
    "register",
    "run_artifact",
    "run_scenario",
    "run_sharded",
    "run_sweep",
    "scenario_names",
    "shard_of",
]
