"""The runtime spine: scenario registry, runner, cache, instrumentation.

``repro.runtime`` is the layer every harness goes through:

* :mod:`~repro.runtime.events` — the instrumentation bus each
  :class:`~repro.net.sim.Simulator` carries;
* :mod:`~repro.runtime.scenario` — declarative scenario specs and the
  structured :class:`RunResult` schema;
* :mod:`~repro.runtime.cache` — the on-disk result cache plus run
  manifests, keyed on (scenario, params, seed, code fingerprint);
* :mod:`~repro.runtime.runner` — serial/parallel multi-seed execution
  with deterministic merge;
* :mod:`~repro.runtime.scenarios` — builtin registrations (imported
  lazily the first time the registry is consulted).

Quick use::

    from repro.runtime import run_scenario, run_sweep
    result = run_scenario("sink", seed=3, overrides={"connections": 500})
    sweep = run_sweep("brdgrd", seeds=range(8), jobs=4)
"""

from .cache import ResultCache, code_fingerprint, default_cache_root
from .events import (
    EventBus,
    RecordForwarder,
    install_record_tap,
    merge_counters,
    remove_record_tap,
    sanitize_record,
)
from .runner import (
    JobResult,
    JobSpec,
    JobSpecError,
    ShardedResult,
    SweepResult,
    execute_job,
    merge_results,
    run_artifact,
    run_scenario,
    run_sharded,
    run_sweep,
)
from .scenario import (
    RunResult,
    Scenario,
    all_scenarios,
    canonical_json,
    canonical_params,
    get_scenario,
    register,
    scenario_names,
)
from .sharding import (
    Sharder,
    ShardingError,
    derive_seed,
    flow_key,
    partition,
    shard_of,
)

__all__ = [
    "EventBus",
    "JobSpec",
    "JobSpecError",
    "JobResult",
    "RecordForwarder",
    "ResultCache",
    "RunResult",
    "Scenario",
    "ShardedResult",
    "Sharder",
    "ShardingError",
    "SweepResult",
    "all_scenarios",
    "canonical_json",
    "canonical_params",
    "code_fingerprint",
    "default_cache_root",
    "derive_seed",
    "execute_job",
    "flow_key",
    "get_scenario",
    "install_record_tap",
    "merge_counters",
    "merge_results",
    "partition",
    "register",
    "remove_record_tap",
    "run_artifact",
    "run_scenario",
    "run_sharded",
    "run_sweep",
    "sanitize_record",
    "scenario_names",
    "shard_of",
]
