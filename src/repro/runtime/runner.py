"""Execute ``(scenario, params, seed)`` jobs: serial, parallel, cached.

The runner is the one place simulation work is launched from.  It

* resolves the scenario in the registry and instantiates typed params;
* consults the on-disk :class:`~repro.runtime.cache.ResultCache`
  (keyed on scenario + canonical params + seed + code fingerprint) and
  skips the simulation entirely on a hit;
* on a miss, builds the experiment, times it, snapshots the
  instrumentation bus, summarizes the artifact into a structured
  :class:`~repro.runtime.scenario.RunResult`, and writes result +
  manifest back to the cache;
* fans multi-seed sweeps out across processes with
  :class:`concurrent.futures.ProcessPoolExecutor` while keeping result
  order (and therefore the merged output) byte-identical to a serial
  run.

Determinism contract: a scenario's builder must derive all randomness
from its params' ``seed`` field, which every harness in this repository
already does — so serial and parallel execution of the same job set
produce identical :meth:`SweepResult.canonical_bytes`.
"""

from __future__ import annotations

import concurrent.futures
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .cache import ResultCache, code_fingerprint
from .scenario import RunResult, canonical_json, canonical_params, get_scenario

__all__ = [
    "SweepResult",
    "merge_results",
    "run_artifact",
    "run_scenario",
    "run_sweep",
]


# ------------------------------------------------------------ single jobs


def _execute(name: str, seed: int, overrides: Optional[Mapping[str, Any]],
             cache: Optional[ResultCache], use_cache: bool,
             ) -> Tuple[RunResult, Optional[Any]]:
    """Run one job; returns (result, artifact) — artifact None on cache hit."""
    scenario = get_scenario(name)
    name = scenario.name  # canonicalize aliases so results/cache keys agree
    params = scenario.instantiate(seed, overrides)
    params_dict = canonical_params(params)
    fingerprint = code_fingerprint()

    if cache is not None and use_cache:
        cached = cache.load(name, params_dict, seed, fingerprint)
        if cached is not None:
            return cached, None

    started = time.perf_counter()
    artifact = scenario.build(params)
    # Round-trip through canonical JSON: fails fast on non-serialisable
    # payloads and makes a fresh result structurally identical (key order
    # included) to the same result loaded back from the cache.
    payload = json.loads(canonical_json(scenario.summarize(artifact)))
    events = json.loads(canonical_json(scenario.events_of(artifact)))
    analysis = (
        json.loads(canonical_json(scenario.analysis_of(artifact)))
        if scenario.analysis_of is not None else {}
    )
    result = RunResult(
        scenario=name,
        params=params_dict,
        seed=seed,
        payload=payload,
        events=events,
        wall_time=time.perf_counter() - started,
        fingerprint=fingerprint,
        analysis=analysis,
    )
    if cache is not None:
        cache.store(result)
    return result, artifact


def run_scenario(name: str, seed: int = 0,
                 overrides: Optional[Mapping[str, Any]] = None, *,
                 cache: Optional[ResultCache] = None,
                 use_cache: bool = True) -> RunResult:
    """Run (or fetch from cache) one job and return its structured result."""
    result, _ = _execute(name, seed, overrides, cache, use_cache)
    return result


def run_artifact(name: str, seed: int = 0,
                 overrides: Optional[Mapping[str, Any]] = None, *,
                 cache: Optional[ResultCache] = None,
                 ) -> Tuple[RunResult, Any]:
    """Run one job and return both the result and the live artifact.

    Always executes (the rich in-memory artifact cannot come from the
    JSON cache), but still writes result + manifest through ``cache`` so
    the run leaves the same auditable record.  This is the entry point
    for benchmarks that need the full experiment object.
    """
    return _execute(name, seed, overrides, cache, use_cache=False)


# ----------------------------------------------------------------- sweeps


@dataclass
class SweepResult:
    """Ordered results of a multi-seed sweep plus cache/wall accounting."""

    scenario: str
    results: List[RunResult]
    wall_time: float
    jobs: int

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return len(self.results) - self.cache_hits

    def merged(self) -> Dict[str, Any]:
        return merge_results(self.results)

    def canonical_bytes(self) -> bytes:
        """Deterministic bytes of the merged sweep (timing excluded)."""
        return canonical_json(self.merged()).encode("utf-8")


def merge_results(results: Sequence[RunResult]) -> Dict[str, Any]:
    """Deterministically merge per-seed results into one document.

    Per-seed identities are kept in seed order; numeric payload scalars
    are additionally aggregated (mean/min/max) and event counters are
    summed, which is what figure-level consumers want from a sweep.

    When every result carries a streaming-analysis section, the
    serialized analyzer *states* are merged in seed order and
    re-finalized into one cross-seed ``analysis`` document — shards
    exchange sufficient statistics, never raw captures, so parallel and
    serial sweeps merge to identical bytes.
    """
    ordered = sorted(results, key=lambda r: r.seed)
    runs = [r.identity() for r in ordered]
    metrics: Dict[str, Dict[str, float]] = {}
    for key in sorted({name for r in ordered for name in r.payload}):
        values = [r.payload[key] for r in ordered
                  if isinstance(r.payload.get(key), (int, float))
                  and not isinstance(r.payload.get(key), bool)]
        if values and len(values) == len(ordered):
            metrics[key] = {
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
            }
    event_totals: Dict[str, int] = {}
    for r in ordered:
        for name, count in (r.events.get("counters") or {}).items():
            event_totals[name] = event_totals.get(name, 0) + int(count)
    # Imported lazily: repro.analysis pulls in the gfw/net stack, which
    # plain runtime users (and the events module they import) must not.
    from ..analysis.pipeline import merge_analysis

    analysis = merge_analysis([r.analysis for r in ordered])
    return {
        "scenario": ordered[0].scenario if ordered else None,
        "params": ordered[0].params if ordered else {},
        "seeds": [r.seed for r in ordered],
        "runs": runs,
        "metrics": metrics,
        "events": dict(sorted(event_totals.items())),
        "analysis": json.loads(canonical_json(analysis)),
    }


def _sweep_worker(job: Tuple[str, int, Optional[Dict[str, Any]],
                             Optional[str], bool]) -> Dict[str, Any]:
    """Top-level (picklable) worker: one job in a pool process."""
    name, seed, overrides, cache_root, use_cache = job
    cache = ResultCache(cache_root) if cache_root is not None else None
    result, _ = _execute(name, seed, overrides, cache, use_cache)
    return result.to_json_dict()


def run_sweep(name: str, seeds: Iterable[int],
              overrides: Optional[Mapping[str, Any]] = None, *,
              jobs: int = 1,
              cache: Optional[ResultCache] = None,
              use_cache: bool = True) -> SweepResult:
    """Run a scenario across many seeds, optionally fanned out over processes.

    ``jobs=1`` runs serially in-process.  ``jobs>1`` uses a process pool;
    results come back in seed-submission order regardless of completion
    order, so the merged output is identical either way.
    """
    seed_list = list(seeds)
    overrides = dict(overrides or {})
    # Fail fast on unknown scenarios; canonicalize aliases so the sweep,
    # its per-seed results, and the cache keys all carry one name.
    name = get_scenario(name).name
    started = time.perf_counter()

    if jobs <= 1 or len(seed_list) <= 1:
        results = [
            _execute(name, seed, overrides, cache, use_cache)[0]
            for seed in seed_list
        ]
    else:
        cache_root = str(cache.root) if cache is not None else None
        job_args = [(name, seed, overrides, cache_root, use_cache)
                    for seed in seed_list]
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            # pool.map preserves submission order deterministically.
            results = [RunResult.from_json_dict(d)
                       for d in pool.map(_sweep_worker, job_args)]
        if cache is not None:
            # Fold worker-side cache traffic into this process's tallies.
            for result in results:
                if result.cache_hit:
                    cache.hits += 1
                else:
                    cache.misses += 1

    return SweepResult(
        scenario=name,
        results=results,
        wall_time=time.perf_counter() - started,
        jobs=jobs,
    )
