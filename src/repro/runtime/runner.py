"""Execute ``(scenario, params, seed)`` jobs: serial, parallel, cached.

The runner is the one place simulation work is launched from.  It

* resolves the scenario in the registry and instantiates typed params;
* consults the on-disk :class:`~repro.runtime.cache.ResultCache`
  (keyed on scenario + canonical params + seed + code fingerprint) and
  skips the simulation entirely on a hit;
* on a miss, builds the experiment, times it, snapshots the
  instrumentation bus, summarizes the artifact into a structured
  :class:`~repro.runtime.scenario.RunResult`, and writes result +
  manifest back to the cache;
* fans multi-seed sweeps out across processes with
  :class:`concurrent.futures.ProcessPoolExecutor` while keeping result
  order (and therefore the merged output) byte-identical to a serial
  run.

Determinism contract: a scenario's builder must derive all randomness
from its params' ``seed`` field, which every harness in this repository
already does — so serial and parallel execution of the same job set
produce identical :meth:`SweepResult.canonical_bytes`.
"""

from __future__ import annotations

import concurrent.futures
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .cache import ResultCache, code_fingerprint
from .scenario import RunResult, Scenario, canonical_json, canonical_params, get_scenario
from .sharding import Sharder, ShardingError, fold_snapshots, partition

__all__ = [
    "JobResult",
    "JobSpec",
    "JobSpecError",
    "ShardedResult",
    "SweepResult",
    "execute_job",
    "merge_results",
    "run_artifact",
    "run_scenario",
    "run_sharded",
    "run_sweep",
]


# ------------------------------------------------------------ single jobs


def _execute(name: str, seed: int, overrides: Optional[Mapping[str, Any]],
             cache: Optional[ResultCache], use_cache: bool,
             extra_params: Optional[Mapping[str, Any]] = None,
             ) -> Tuple[RunResult, Optional[Any]]:
    """Run one job; returns (result, artifact) — artifact None on cache hit.

    ``extra_params`` are execution-identity keys (e.g. the shard stamp
    ``{"shards": {"count": N, "index": k}}``) merged into the canonical
    params dict *before* cache lookup/store, so results produced under
    different execution layouts can never satisfy each other's cache
    keys.
    """
    scenario = get_scenario(name)
    name = scenario.name  # canonicalize aliases so results/cache keys agree
    params = scenario.instantiate(seed, overrides)
    params_dict = canonical_params(params)
    if extra_params:
        merged = dict(params_dict)
        merged.update(json.loads(canonical_json(dict(extra_params))))
        params_dict = {key: merged[key] for key in sorted(merged)}
    fingerprint = code_fingerprint()

    if cache is not None and use_cache:
        cached = cache.load(name, params_dict, seed, fingerprint)
        if cached is not None:
            return cached, None

    started = time.perf_counter()
    artifact = scenario.build(params)
    # Round-trip through canonical JSON: fails fast on non-serialisable
    # payloads and makes a fresh result structurally identical (key order
    # included) to the same result loaded back from the cache.
    payload = json.loads(canonical_json(scenario.summarize(artifact)))
    events = json.loads(canonical_json(scenario.events_of(artifact)))
    analysis = (
        json.loads(canonical_json(scenario.analysis_of(artifact)))
        if scenario.analysis_of is not None else {}
    )
    result = RunResult(
        scenario=name,
        params=params_dict,
        seed=seed,
        payload=payload,
        events=events,
        wall_time=time.perf_counter() - started,
        fingerprint=fingerprint,
        analysis=analysis,
    )
    if cache is not None:
        cache.store(result)
    return result, artifact


def run_scenario(name: str, seed: int = 0,
                 overrides: Optional[Mapping[str, Any]] = None, *,
                 cache: Optional[ResultCache] = None,
                 use_cache: bool = True) -> RunResult:
    """Run (or fetch from cache) one job and return its structured result."""
    result, _ = _execute(name, seed, overrides, cache, use_cache)
    return result


def run_artifact(name: str, seed: int = 0,
                 overrides: Optional[Mapping[str, Any]] = None, *,
                 cache: Optional[ResultCache] = None,
                 ) -> Tuple[RunResult, Any]:
    """Run one job and return both the result and the live artifact.

    Always executes (the rich in-memory artifact cannot come from the
    JSON cache), but still writes result + manifest through ``cache`` so
    the run leaves the same auditable record.  This is the entry point
    for benchmarks that need the full experiment object.
    """
    return _execute(name, seed, overrides, cache, use_cache=False)


# ----------------------------------------------------------------- sweeps


@dataclass
class SweepResult:
    """Ordered results of a multi-seed sweep plus cache/wall accounting."""

    scenario: str
    results: List[RunResult]
    wall_time: float
    jobs: int

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return len(self.results) - self.cache_hits

    def merged(self) -> Dict[str, Any]:
        return merge_results(self.results)

    def canonical_bytes(self) -> bytes:
        """Deterministic bytes of the merged sweep (timing excluded)."""
        return canonical_json(self.merged()).encode("utf-8")


def merge_results(results: Sequence[RunResult]) -> Dict[str, Any]:
    """Deterministically merge per-seed results into one document.

    Per-seed identities are kept in seed order; numeric payload scalars
    are additionally aggregated (mean/min/max) and event counters are
    summed, which is what figure-level consumers want from a sweep.

    When every result carries a streaming-analysis section, the
    serialized analyzer *states* are merged in seed order and
    re-finalized into one cross-seed ``analysis`` document — shards
    exchange sufficient statistics, never raw captures, so parallel and
    serial sweeps merge to identical bytes.
    """
    ordered = sorted(results, key=lambda r: r.seed)
    runs = [r.identity() for r in ordered]
    metrics: Dict[str, Dict[str, float]] = {}
    for key in sorted({name for r in ordered for name in r.payload}):
        values = [r.payload[key] for r in ordered
                  if isinstance(r.payload.get(key), (int, float))
                  and not isinstance(r.payload.get(key), bool)]
        if values and len(values) == len(ordered):
            metrics[key] = {
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
            }
    event_totals: Dict[str, int] = {}
    for r in ordered:
        for name, count in (r.events.get("counters") or {}).items():
            event_totals[name] = event_totals.get(name, 0) + int(count)
    # Imported lazily: repro.analysis pulls in the gfw/net stack, which
    # plain runtime users (and the events module they import) must not.
    from ..analysis.pipeline import merge_analysis

    analysis = merge_analysis([r.analysis for r in ordered])
    return {
        "scenario": ordered[0].scenario if ordered else None,
        "params": ordered[0].params if ordered else {},
        "seeds": [r.seed for r in ordered],
        "runs": runs,
        "metrics": metrics,
        "events": dict(sorted(event_totals.items())),
        "analysis": json.loads(canonical_json(analysis)),
    }


def _sweep_worker(job: Tuple[str, int, Optional[Dict[str, Any]],
                             Optional[str], bool]) -> Dict[str, Any]:
    """Top-level (picklable) worker: one job in a pool process."""
    name, seed, overrides, cache_root, use_cache = job
    cache = ResultCache(cache_root) if cache_root is not None else None
    result, _ = _execute(name, seed, overrides, cache, use_cache)
    return result.to_json_dict()


def run_sweep(name: str, seeds: Iterable[int],
              overrides: Optional[Mapping[str, Any]] = None, *,
              jobs: int = 1,
              cache: Optional[ResultCache] = None,
              use_cache: bool = True) -> SweepResult:
    """Run a scenario across many seeds, optionally fanned out over processes.

    ``jobs=1`` runs serially in-process.  ``jobs>1`` uses a process pool;
    results come back in seed-submission order regardless of completion
    order, so the merged output is identical either way.
    """
    seed_list = list(seeds)
    overrides = dict(overrides or {})
    # Fail fast on unknown scenarios; canonicalize aliases so the sweep,
    # its per-seed results, and the cache keys all carry one name.
    name = get_scenario(name).name
    started = time.perf_counter()

    if jobs <= 1 or len(seed_list) <= 1:
        results = [
            _execute(name, seed, overrides, cache, use_cache)[0]
            for seed in seed_list
        ]
    else:
        cache_root = str(cache.root) if cache is not None else None
        job_args = [(name, seed, overrides, cache_root, use_cache)
                    for seed in seed_list]
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            # pool.map preserves submission order deterministically.
            results = [RunResult.from_json_dict(d)
                       for d in pool.map(_sweep_worker, job_args)]
        if cache is not None:
            # Fold worker-side cache traffic into this process's tallies.
            for result in results:
                if result.cache_hit:
                    cache.hits += 1
                else:
                    cache.misses += 1

    return SweepResult(
        scenario=name,
        results=results,
        wall_time=time.perf_counter() - started,
        jobs=jobs,
    )


# ------------------------------------------------------- sharded execution


@dataclass
class ShardedResult:
    """One scenario run partitioned into flow shards and merged back.

    ``merged`` is the recombined :class:`RunResult`; its ``params``
    carry the shard layout (``{"shards": {"count", "layout"}}``) so the
    cache can never confuse it with a serial run.  ``shards`` holds the
    per-shard results (empty when ``merged`` came straight from the
    cache); ``layout`` maps shard index → owned unit labels.
    """

    scenario: str
    merged: RunResult
    shards: List[RunResult]
    layout: List[List[str]]
    wall_time: float
    jobs: int

    @property
    def cache_hits(self) -> int:
        return int(self.merged.cache_hit) + sum(
            1 for r in self.shards if r.cache_hit)

    def serial_identity(self) -> Dict[str, Any]:
        """The merged identity with the shard stamp stripped.

        Byte-comparing this against a serial run's ``identity()`` is the
        sharding correctness contract: everything except the layout
        bookkeeping must be identical.
        """
        ident = self.merged.identity()
        ident["params"] = {k: v for k, v in ident["params"].items()
                           if k != "shards"}
        return ident

    def canonical_bytes(self) -> bytes:
        return canonical_json(self.serial_identity()).encode("utf-8")


def _require_sharder(scenario: Scenario) -> Sharder:
    sharder = scenario.sharder
    if sharder is None:
        from .scenario import all_scenarios

        shardable = ", ".join(
            s.name for s in all_scenarios() if s.sharder is not None
        ) or "(none)"
        raise ShardingError(
            f"scenario {scenario.name!r} is not shardable "
            f"(no flow partitioner declared); shardable scenarios: {shardable}"
        )
    return sharder


def _deep_union(base: Dict[str, Any], add: Mapping[str, Any],
                path: str = "") -> Dict[str, Any]:
    """Union shard payload slices; identical leaves tolerated, else error."""
    for key, value in add.items():
        here = f"{path}/{key}"
        if key not in base:
            base[key] = value
        elif isinstance(base[key], dict) and isinstance(value, Mapping):
            _deep_union(base[key], value, here)
        elif base[key] != value:
            raise ShardingError(
                f"shard payloads disagree at {here!r}: "
                f"{base[key]!r} != {value!r}"
            )
    return base


def _merge_cases(ordered: Sequence[RunResult], labels: Sequence[str],
                 ) -> Tuple[Dict[str, Any], Dict[str, Any], Dict[str, Any]]:
    """Recombine case-mode shards: union slices, re-fold unit buses.

    Every unit (case) ran in exactly one shard with its own bus; the
    serial run's top-level counters/scalars are the fold of per-unit
    snapshots in unit order, so replaying that fold over the union of
    shard-carried snapshots reproduces them byte-for-byte.
    """
    payload: Dict[str, Any] = {}
    analysis: Dict[str, Any] = {}
    units: Dict[str, Any] = {}
    for result in ordered:
        # Round-trip the slice so the union never aliases (and therefore
        # never mutates) a live shard result's own payload dict.
        _deep_union(payload, json.loads(canonical_json(result.payload)))
        for name, spec in result.analysis.items():
            if name in analysis:
                raise ShardingError(
                    f"analysis section {name!r} produced by two shards")
            analysis[name] = spec
        for label, snap in (result.events.get("units") or {}).items():
            if label in units:
                raise ShardingError(f"unit {label!r} executed by two shards")
            units[label] = snap
    missing = [label for label in labels if label not in units]
    if missing:
        raise ShardingError(f"units never executed by any shard: {missing}")
    events = fold_snapshots([units[label] for label in labels])
    events["units"] = {label: units[label] for label in labels}
    return payload, events, analysis


def _merge_flows(ordered: Sequence[RunResult], sharder: Sharder,
                 ) -> Tuple[Dict[str, Any], Dict[str, Any], Dict[str, Any]]:
    """Recombine flow-mode shards through analyzer state merging.

    Counters are integer sums (order-free); scalar series are rejected
    because their fold order across shards is not reproducible; the
    payload is re-derived from the merged analyzer outputs with the
    same function the serial summarizer uses.
    """
    from ..analysis.pipeline import restore_analyzer

    counters: Dict[str, int] = {}
    for result in ordered:
        if result.events.get("scalars"):
            names = sorted(result.events["scalars"])
            raise ShardingError(
                f"flow-sharded run emitted scalar series {names}; scalar "
                f"folds are order-dependent and cannot merge byte-identically"
            )
        for name, n in (result.events.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(n)
    events = {"counters": dict(sorted(counters.items())), "scalars": {}}

    analysis: Dict[str, Any] = {}
    for name in ordered[0].analysis:
        analyzer = restore_analyzer(ordered[0].analysis[name])
        for later in ordered[1:]:
            spec = later.analysis.get(name)
            if spec is None:
                raise ShardingError(f"shard missing analysis section {name!r}")
            analyzer.merge(restore_analyzer(spec))
        analysis[name] = {
            "analyzer": analyzer.kind,
            "config": analyzer.config(),
            "state": analyzer.state_dict(),
            "output": analyzer.finalize(),
        }
    if sharder.payload_from_analysis is None:
        raise ShardingError(
            "flows-mode sharder declares no payload_from_analysis")
    payload = sharder.payload_from_analysis(
        {name: spec["output"] for name, spec in analysis.items()})
    return payload, events, analysis


def _shard_worker(job: Tuple[str, int, Dict[str, Any], Dict[str, Any],
                             Optional[str], bool]) -> Dict[str, Any]:
    """Top-level (picklable) worker: one shard in a pool process."""
    name, seed, overrides, extra_params, cache_root, use_cache = job
    cache = ResultCache(cache_root) if cache_root is not None else None
    result, _ = _execute(name, seed, overrides, cache, use_cache,
                         extra_params=extra_params)
    return result.to_json_dict()


def run_sharded(name: str, seed: int = 0,
                overrides: Optional[Mapping[str, Any]] = None, *,
                shards: int, jobs: Optional[int] = None,
                cache: Optional[ResultCache] = None,
                use_cache: bool = True) -> ShardedResult:
    """Partition one scenario across ``shards`` workers and merge back.

    The scenario must declare a :class:`~repro.runtime.sharding.Sharder`;
    its unit labels are assigned to shards by seed-stable
    :func:`~repro.runtime.sharding.flow_key` hashing, each non-empty
    shard runs the scenario restricted to its own units (in its own
    process when ``jobs > 1``), and the per-shard results recombine into
    one :class:`RunResult` byte-identical — modulo the recorded shard
    layout — with the serial run.

    ``jobs=None`` uses one process per non-empty shard, capped at the
    machine's CPU count; ``jobs<=1`` runs the shards sequentially
    in-process (still produces the identical merged result).
    """
    import os

    scenario = get_scenario(name)
    name = scenario.name
    sharder = _require_sharder(scenario)
    if shards < 1:
        raise ShardingError(f"shard count must be >= 1, got {shards}")
    overrides = dict(overrides or {})
    started = time.perf_counter()

    params = scenario.instantiate(seed, overrides)
    labels = list(sharder.units(params))
    if not labels:
        raise ShardingError(
            f"scenario {name!r} has no shardable units under these params")
    layout = partition(labels, shards)
    layout_param = {"shards": {"count": shards, "layout": layout}}
    merged_params = dict(canonical_params(params))
    merged_params.update(json.loads(canonical_json(layout_param)))
    merged_params = {key: merged_params[key] for key in sorted(merged_params)}
    fingerprint = code_fingerprint()

    if cache is not None and use_cache:
        cached = cache.load(name, merged_params, seed, fingerprint)
        if cached is not None:
            return ShardedResult(
                scenario=name, merged=cached, shards=[], layout=layout,
                wall_time=time.perf_counter() - started, jobs=0,
            )

    shard_jobs = [
        (index,
         {**overrides, **sharder.restrict(params, layout[index])},
         {"shards": {"count": shards, "index": index}})
        for index in range(shards) if layout[index]
    ]
    if jobs is None:
        jobs = min(len(shard_jobs), os.cpu_count() or 1)

    if jobs <= 1 or len(shard_jobs) <= 1:
        results = [
            _execute(name, seed, shard_overrides, cache, use_cache,
                     extra_params=extra)[0]
            for _, shard_overrides, extra in shard_jobs
        ]
    else:
        cache_root = str(cache.root) if cache is not None else None
        job_args = [(name, seed, shard_overrides, extra, cache_root, use_cache)
                    for _, shard_overrides, extra in shard_jobs]
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            # pool.map preserves shard-index order deterministically.
            results = [RunResult.from_json_dict(d)
                       for d in pool.map(_shard_worker, job_args)]
        if cache is not None:
            for result in results:
                if result.cache_hit:
                    cache.hits += 1
                else:
                    cache.misses += 1

    if sharder.mode == "cases":
        payload, events, analysis = _merge_cases(results, labels)
    else:
        payload, events, analysis = _merge_flows(results, sharder)

    wall = time.perf_counter() - started
    merged = RunResult(
        scenario=name,
        params=merged_params,
        seed=seed,
        payload=json.loads(canonical_json(payload)),
        events=json.loads(canonical_json(events)),
        wall_time=wall,
        fingerprint=fingerprint,
        analysis=json.loads(canonical_json(analysis)),
    )
    if cache is not None:
        cache.store(merged)
    return ShardedResult(
        scenario=name,
        merged=merged,
        shards=results,
        layout=layout,
        wall_time=wall,
        jobs=jobs,
    )


# ------------------------------------------------------------ job layer


class JobSpecError(ValueError):
    """A job specification that cannot be executed as requested."""


@dataclass
class JobSpec:
    """One executable job description, shared by the CLI and the service.

    This is the serialization boundary of the runtime: a spec is plain
    JSON-able data (it travels in ``POST /jobs`` bodies and across the
    service's worker pool), and :func:`execute_job` turns it into a
    :class:`JobResult` with exactly the semantics of the equivalent
    ``python -m repro run`` invocation — ``shards=None`` is a plain
    multi-seed sweep, ``shards=N`` runs one sharded execution per seed
    and folds the merged per-seed results into the same sweep shape.
    """

    scenario: str
    seeds: Tuple[int, ...] = (0,)
    overrides: Dict[str, Any] = field(default_factory=dict)
    shards: Optional[int] = None
    jobs: int = 1
    use_cache: bool = True

    KEYS = ("scenario", "seeds", "overrides", "shards", "jobs", "use_cache")

    def __post_init__(self) -> None:
        self.seeds = tuple(int(s) for s in self.seeds)
        self.overrides = dict(self.overrides)
        if not self.scenario:
            raise JobSpecError("job spec needs a scenario name")
        if not self.seeds:
            raise JobSpecError("job spec needs at least one seed")
        if self.shards is not None and int(self.shards) < 1:
            raise JobSpecError(f"shards must be >= 1, got {self.shards}")
        if int(self.jobs) < 1:
            raise JobSpecError(f"jobs must be >= 1, got {self.jobs}")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Build a spec from untrusted JSON (the service's POST body).

        Accepts either an explicit ``seeds`` list or the CLI-shaped
        ``{"seeds": N, "seed_start": S}`` count form; rejects unknown
        keys so typos fail loudly instead of silently running the
        default sweep.
        """
        if not isinstance(data, Mapping):
            raise JobSpecError(f"job spec must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - set(cls.KEYS) - {"seed_start"})
        if unknown:
            raise JobSpecError(
                f"unknown job spec keys {unknown}; valid: {sorted(cls.KEYS)}")
        scenario = data.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise JobSpecError("'scenario' must be a non-empty string")
        seeds = data.get("seeds", 1)
        start = data.get("seed_start", 0)
        if isinstance(seeds, bool):
            raise JobSpecError("'seeds' must be an int count or a list of ints")
        if isinstance(seeds, int):
            if seeds < 1:
                raise JobSpecError(f"'seeds' count must be >= 1, got {seeds}")
            seed_list = tuple(range(int(start), int(start) + seeds))
        elif isinstance(seeds, (list, tuple)):
            try:
                seed_list = tuple(int(s) for s in seeds)
            except (TypeError, ValueError):
                raise JobSpecError(f"'seeds' list must contain ints, got {seeds!r}")
        else:
            raise JobSpecError("'seeds' must be an int count or a list of ints")
        overrides = data.get("overrides") or {}
        if not isinstance(overrides, Mapping):
            raise JobSpecError("'overrides' must be an object")
        shards = data.get("shards")
        if shards is not None and (isinstance(shards, bool)
                                   or not isinstance(shards, int)):
            raise JobSpecError(f"'shards' must be an int or null, got {shards!r}")
        jobs = data.get("jobs", 1)
        if isinstance(jobs, bool) or not isinstance(jobs, int):
            raise JobSpecError(f"'jobs' must be an int, got {jobs!r}")
        return cls(
            scenario=scenario,
            seeds=seed_list,
            overrides=dict(overrides),
            shards=shards,
            jobs=jobs,
            use_cache=bool(data.get("use_cache", True)),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seeds": list(self.seeds),
            "overrides": json.loads(canonical_json(self.overrides)),
            "shards": self.shards,
            "jobs": self.jobs,
            "use_cache": self.use_cache,
        }


@dataclass
class JobResult:
    """The JSON-able outcome of one executed :class:`JobSpec`.

    ``merged`` is the deterministic merged-sweep document —
    byte-identical (via :meth:`canonical_bytes`) to what
    ``python -m repro run ... --json`` prints for the same spec; the
    rest is accounting the control plane reports and meters.
    """

    spec: Dict[str, Any]
    merged: Dict[str, Any]
    wall_time: float
    jobs: int
    cache_hits: int
    cache_misses: int

    @classmethod
    def from_sweep(cls, spec: JobSpec, sweep: SweepResult) -> "JobResult":
        return cls(
            spec=spec.to_dict(),
            merged=sweep.merged(),
            wall_time=sweep.wall_time,
            jobs=sweep.jobs,
            cache_hits=sweep.cache_hits,
            cache_misses=sweep.cache_misses,
        )

    def canonical_bytes(self) -> bytes:
        """Deterministic bytes of the merged document (timing excluded)."""
        return canonical_json(self.merged).encode("utf-8")

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "merged": self.merged,
            "wall_time": self.wall_time,
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        return cls(
            spec=dict(data["spec"]),
            merged=dict(data["merged"]),
            wall_time=float(data["wall_time"]),
            jobs=int(data["jobs"]),
            cache_hits=int(data["cache_hits"]),
            cache_misses=int(data["cache_misses"]),
        )


def execute_job(spec: JobSpec, *,
                cache: Optional[ResultCache] = None) -> JobResult:
    """Run one :class:`JobSpec` to completion and return its result.

    This is the single execution path beneath both front-ends: the CLI
    builds a spec from its flags, the service deserializes one from a
    POST body, and both get the same bytes for the same spec.  With
    ``shards`` set, ``jobs=1`` means auto fan-out (one process per
    non-empty shard, capped at the CPU count) — matching the CLI's
    ``--shards`` semantics, where ``--jobs`` only pins the pool size
    when it is greater than one.
    """
    started = time.perf_counter()
    if spec.shards is None:
        sweep = run_sweep(spec.scenario, spec.seeds, spec.overrides,
                          jobs=spec.jobs, cache=cache,
                          use_cache=spec.use_cache)
    else:
        # One sharded execution per seed; the merged per-seed results
        # slot into the ordinary sweep shape (merging, canonical bytes).
        shard_jobs = spec.jobs if spec.jobs > 1 else None  # None = auto
        results = []
        for seed in spec.seeds:
            sharded = run_sharded(spec.scenario, seed=seed,
                                  overrides=spec.overrides,
                                  shards=spec.shards, jobs=shard_jobs,
                                  cache=cache, use_cache=spec.use_cache)
            results.append(sharded.merged)
        sweep = SweepResult(
            scenario=results[0].scenario,
            results=results,
            wall_time=time.perf_counter() - started,
            jobs=spec.jobs,
        )
    return JobResult.from_sweep(spec, sweep)
