"""The scenario registry: declarative specs for every paper experiment.

A :class:`Scenario` ties together a name, a typed params dataclass (the
experiment's existing config type), a builder that runs the experiment
and returns its rich in-memory artifact, and a summarizer that reduces
the artifact to a JSON-serialisable payload.  The runner executes
``(scenario, params, seed)`` jobs against this registry, so every
harness — CLI, benchmarks, sweeps — shares one entry point and one
result schema (:class:`RunResult`).

Params conventions:

* the params dataclass must carry a ``seed`` field; the runner supplies
  the seed, so ``seed`` is *excluded* from the canonical params identity
  (it is part of the cache key separately);
* every other field must be JSON-representable (numbers, strings,
  booleans, and nested tuples/lists of those), which is what makes
  params canonicalizable and cacheable.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

__all__ = [
    "RunResult",
    "Scenario",
    "all_scenarios",
    "canonical_params",
    "get_scenario",
    "register",
    "scenario_names",
]


def _jsonify(value: Any) -> Any:
    """Normalize params/payload values to plain JSON types."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise TypeError(f"value {value!r} is not canonicalizable for the runtime")


def canonical_params(params: Any) -> Dict[str, Any]:
    """A params dataclass as a canonical (seedless) JSON-able dict."""
    raw = dataclasses.asdict(params)
    raw.pop("seed", None)
    return {key: _jsonify(value) for key, value in sorted(raw.items())}


def canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass
class RunResult:
    """The structured outcome of one ``(scenario, params, seed)`` job."""

    scenario: str
    params: Dict[str, Any]          # canonical, seed removed
    seed: int
    payload: Dict[str, Any]         # scenario-specific summary (JSON-able)
    events: Dict[str, Any]          # instrumentation bus snapshot
    wall_time: float                # seconds spent computing (0.0 on cache hit)
    fingerprint: str                # code fingerprint the result was built under
    # Serialized streaming-analyzer section, {name: {analyzer, config,
    # state, output}}; empty for scenarios without declared analyzers.
    analysis: Dict[str, Any] = dataclasses.field(default_factory=dict)
    cache_hit: bool = False

    def identity(self) -> Dict[str, Any]:
        """The deterministic portion: everything except timing/provenance."""
        return {
            "scenario": self.scenario,
            "params": self.params,
            "seed": self.seed,
            "payload": self.payload,
            "events": self.events,
            "analysis": self.analysis,
        }

    def canonical_bytes(self) -> bytes:
        return canonical_json(self.identity()).encode("utf-8")

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            **self.identity(),
            "wall_time": self.wall_time,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        return cls(
            scenario=data["scenario"],
            params=dict(data["params"]),
            seed=int(data["seed"]),
            payload=dict(data["payload"]),
            events=dict(data["events"]),
            wall_time=float(data.get("wall_time", 0.0)),
            fingerprint=str(data.get("fingerprint", "")),
            analysis=dict(data.get("analysis") or {}),
            cache_hit=bool(data.get("cache_hit", False)),
        )


def _default_events_of(artifact: Any) -> Dict[str, Any]:
    """Pull the bus snapshot out of a ``World``-bearing artifact."""
    world = getattr(artifact, "world", None)
    sim = getattr(world, "sim", None) or getattr(artifact, "sim", None)
    bus = getattr(sim, "bus", None)
    return bus.snapshot() if bus is not None else {}


@dataclass(frozen=True)
class Scenario:
    """One registered experiment: spec, builder, and result schema."""

    name: str
    title: str
    params_type: type
    build: Callable[[Any], Any]             # params (with seed) -> artifact
    summarize: Callable[[Any], Dict[str, Any]]  # artifact -> JSON payload
    events_of: Callable[[Any], Dict[str, Any]] = _default_events_of
    description: str = ""
    tags: tuple = ()
    # Optional: artifact -> serialized analyzer section ({name: spec}).
    # Scenarios whose experiments run an AnalysisPipeline declare this
    # so the runner can persist, cache, and shard-merge analyzer states.
    analysis_of: Optional[Callable[[Any], Dict[str, Any]]] = None
    # Optional: how this scenario's workload partitions into disjoint
    # shards (see repro.runtime.sharding.Sharder).  None means the
    # scenario is not shardable and `run_sharded` refuses it.
    sharder: Optional[Any] = None

    def instantiate(self, seed: int, overrides: Optional[Mapping[str, Any]] = None):
        """Build the typed params object for one job."""
        kwargs = coerce_overrides(self.params_type, dict(overrides or {}))
        kwargs["seed"] = seed
        return self.params_type(**kwargs)


def coerce_overrides(params_type: type, overrides: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce raw override values (possibly CLI strings) to field types."""
    fields = {f.name: f for f in dataclasses.fields(params_type)}
    out: Dict[str, Any] = {}
    for key, value in overrides.items():
        if key not in fields:
            valid = ", ".join(sorted(fields))
            raise KeyError(
                f"{params_type.__name__} has no parameter {key!r} (valid: {valid})"
            )
        out[key] = _coerce_value(fields[key], value)
    return out


def _coerce_value(field_info: dataclasses.Field, value: Any) -> Any:
    if isinstance(value, str):
        # CLI values arrive as strings: interpret JSON scalars/lists,
        # leave anything unparseable as the raw string.
        try:
            value = json.loads(value)
        except (ValueError, TypeError):
            pass
    origin = typing.get_origin(field_info.type) if not isinstance(field_info.type, str) else None
    wants_tuple = (
        isinstance(field_info.default, tuple)
        or origin is tuple
        or (isinstance(field_info.type, str) and field_info.type.startswith("Tuple"))
    )
    if wants_tuple and isinstance(value, list):
        value = _listlike_to_tuple(value)
    return value


def _listlike_to_tuple(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_listlike_to_tuple(v) for v in value)
    return value


# ----------------------------------------------------------------- registry

_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> Scenario:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    # Registered names use dashes; accept the underscore spelling too
    # (``impairment_matrix`` == ``impairment-matrix``) so shell-friendly
    # identifiers resolve without a lookup table.
    alt = name.replace("_", "-")
    if alt in _REGISTRY:
        return _REGISTRY[alt]
    known = ", ".join(scenario_names()) or "(none)"
    raise KeyError(f"unknown scenario {name!r}; registered: {known}")


def scenario_names() -> List[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _ensure_builtins() -> None:
    """Import the builtin scenario definitions exactly once.

    Done lazily (not at package import) so that ``repro.net`` can import
    ``repro.runtime.events`` without dragging the whole experiment stack
    into every interpreter.
    """
    from . import scenarios  # noqa: F401  (registers on import)
