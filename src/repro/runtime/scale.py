"""The ``scale-1m`` scenario: a million distinct client flows.

The ROADMAP's north star is censorship at backbone scale — the paper's
censor watches *all* border-crossing traffic, not forty connections from
one client.  Full TCP emulation at 10^6 flows is out of reach for one
event loop, so this scenario drives the censor's actual hot path
directly: synthetic border-crossing segments (SYN, the feature packet,
FIN) per flow through a real :class:`~repro.gfw.flowtable.FlowTable`
and a real deterministic detector stage, with a streaming
:class:`~repro.analysis.pipeline.FlowCensus` analyzer reducing the
verdict stream to integer sufficient statistics.

The flow space partitions into fixed-size *blocks* (the shardable
units).  Every per-flow quantity — addresses, class, payload bytes,
start time — derives from :func:`~repro.runtime.sharding.flow_key`
``(seed, flow_id)`` alone, never from enumeration order or shared RNG
state, so a flow simulates identically inside any block subset.  Flows
open and close within one simulator event (the table entry is reclaimed
at FIN), which keeps the run constant-memory and keeps the flow table's
cap/sweep hygiene out of the byte-identity equation.  The scenario
deliberately runs no prober fleet: probing draws from a shared
per-world RNG stream and emits float scalar series, both of which
would make a partitioned run diverge from the serial one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.pipeline import AnalysisPipeline, FlowCensus
from ..gfw.flowtable import FlowKey, FlowState, FlowTable
from ..gfw.stages import DetectorContext, build_stage
from ..net.packet import Flags, Segment
from ..net.sim import Simulator
from .scenario import Scenario, register
from .sharding import Sharder, flow_key

__all__ = ["ScaleFlowsConfig", "scale_payload"]

# Responder endpoints: one Shadowsocks-like high-entropy service, one
# plaintext web service.  Class is decided per flow from its key.
SS_RESPONDER = ("203.0.113.5", 8388)
WEB_RESPONDER = ("198.18.0.10", 443)

_WEB_TEMPLATE = (b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n"
                 b"Accept: text/html,application/xhtml+xml\r\n"
                 b"Accept-Language: en-US,en;q=0.9\r\n\r\n")


@dataclass
class ScaleFlowsConfig:
    """Parameters of the million-flow census."""

    seed: int = 0
    flows: int = 1_000_000
    block_size: int = 4096          # flows per shardable unit
    block_period: float = 5.0       # sim-seconds between block starts
    flow_spacing: float = 0.001     # sim-seconds between flows of a block
    ss_fraction: float = 0.5        # probability a flow is Shadowsocks-like
    ss_min_len: int = 600           # feature-packet length range, SS class
    ss_max_len: int = 1200
    web_min_len: int = 80           # feature-packet length range, web class
    web_max_len: int = 600
    entropy_threshold: float = 7.2
    census_bins: int = 16
    max_flows: int = 1 << 18        # flow-table hard cap (never hit here)
    # Sharding restriction: which block labels this world simulates.
    # None (the default, and the serial run) means every block.
    blocks: Optional[Tuple[str, ...]] = None


def _block_labels(config: ScaleFlowsConfig) -> List[str]:
    count = (config.flows + config.block_size - 1) // config.block_size
    return [f"block-{i:05d}" for i in range(count)]


def _selected_blocks(config: ScaleFlowsConfig) -> List[int]:
    labels = _block_labels(config)
    if config.blocks is None:
        selected = labels
    else:
        wanted = set(config.blocks)
        unknown = wanted - set(labels)
        if unknown:
            raise ValueError(f"unknown scale-1m blocks: {sorted(unknown)}")
        selected = [label for label in labels if label in wanted]
    return [int(label.split("-", 1)[1]) for label in selected]


def _flow_shape(config: ScaleFlowsConfig, flow_id: int,
                ) -> Tuple[str, int, Tuple[str, int], bytes]:
    """(src_ip, src_port, responder, feature payload) for one flow.

    Every field is a pure function of ``flow_key(seed, flow_id)``; the
    source address encodes ``flow_id`` directly so connection keys are
    collision-free and serial/sharded tables can never interact through
    accidental 4-tuple reuse.
    """
    key = flow_key(config.seed, flow_id)
    src_ip = (f"10.{(flow_id >> 16) & 0xFF}."
              f"{(flow_id >> 8) & 0xFF}.{flow_id & 0xFF}")
    src_port = 1024 + (key & 0xFFFF) % 60000
    if (key >> 16) % 1000 < int(config.ss_fraction * 1000):
        span = max(1, config.ss_max_len - config.ss_min_len + 1)
        length = config.ss_min_len + (key >> 26) % span
        payload = random.Random(key).randbytes(length)
        responder = SS_RESPONDER
    else:
        span = max(1, config.web_max_len - config.web_min_len + 1)
        length = config.web_min_len + (key >> 26) % span
        repeats = length // len(_WEB_TEMPLATE) + 1
        payload = (_WEB_TEMPLATE * repeats)[:length]
        responder = WEB_RESPONDER
    return src_ip, src_port, responder, payload


class _ScaleWorld:
    """One shard's (or the serial run's) sensor + detector + census."""

    def __init__(self, config: ScaleFlowsConfig):
        self.config = config
        self.sim = Simulator()
        self.bus = self.sim.bus
        self.table = FlowTable(self.sim, max_flows=config.max_flows)
        self.stage = build_stage({"kind": "entropy",
                                  "threshold": config.entropy_threshold})
        self.pipeline = AnalysisPipeline(
            {"census": FlowCensus(bins=config.census_bins)}
        ).attach(self.bus)
        self.table.on_first_initiator_data = self._feature_packet

    # ------------------------------------------------------------ detector

    def _feature_packet(self, key: FlowKey, flow: FlowState,
                        seg: Segment) -> None:
        ctx = DetectorContext(seg.payload, now=self.sim.now)
        result = self.stage.evaluate_batch([ctx])[0]
        if result.flagged:
            self.bus.incr("gfw.conn.flagged")
        if self.bus.wants_records:
            self.bus.emit("scale.flow", {
                "port": flow.responder_port,
                "length": len(seg.payload),
                "entropy": ctx.entropy,
                "flagged": result.flagged,
                "stage": result.stage,
            })

    # -------------------------------------------------------------- driving

    def _process_flow(self, flow_id: int) -> None:
        src_ip, src_port, (dst_ip, dst_port), payload = _flow_shape(
            self.config, flow_id)
        base = dict(src_ip=src_ip, dst_ip=dst_ip,
                    src_port=src_port, dst_port=dst_port)
        # The whole flow lifetime is one same-connection burst: the
        # table computes the connection key once for all three segments.
        self.table.track_burst([
            Segment(flags=Flags.SYN, **base),
            Segment(flags=Flags.ACK | Flags.PSH, payload=payload, **base),
            Segment(flags=Flags.FIN | Flags.ACK, **base),
        ])
        self.bus.incr("scale.segments", 3)

    def _drive_block(self, block: int) -> None:
        config = self.config
        start = block * config.block_size
        stop = min(start + config.block_size, config.flows)
        flows: Iterator[int] = iter(range(start, stop))

        def step(flow_id: int) -> None:
            self._process_flow(flow_id)
            nxt = next(flows, None)
            if nxt is not None:
                self.sim.schedule(config.flow_spacing, step, nxt)

        first = next(flows, None)
        if first is not None:
            self.sim.schedule(block * config.block_period, step, first)

    def run(self) -> "_ScaleWorld":
        for block in _selected_blocks(self.config):
            self._drive_block(block)
        self.sim.run()
        return self


def scale_payload(outputs: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """The scenario payload from finalized analyzer outputs.

    Shared by the serial summarizer and the flows-mode shard merge, so
    both derive the payload from census output with identical
    arithmetic.
    """
    census = outputs["census"]
    flows = int(census["flows"])           # type: ignore[arg-type]
    flagged = int(census["flagged"])       # type: ignore[arg-type]
    return {
        "flows": flows,
        "flagged": flagged,
        "flag_rate": flagged / flows if flows else 0.0,
        "by_port": census["by_port"],
        "by_stage": census["by_stage"],
        "entropy_hist": census["entropy_hist"],
    }


def _build_scale(config: ScaleFlowsConfig) -> _ScaleWorld:
    return _ScaleWorld(config).run()


def _restrict_blocks(params: ScaleFlowsConfig,
                     labels: Sequence[str]) -> Dict[str, object]:
    return {"blocks": tuple(labels)}


register(Scenario(
    name="scale-1m",
    title="Scale: 10^6 distinct client flows through the censor hot path",
    params_type=ScaleFlowsConfig,
    build=_build_scale,
    summarize=lambda world: scale_payload(world.pipeline.outputs()),
    analysis_of=lambda world: world.pipeline.payload(),
    description="Synthetic border-crossing flows (SYN, feature packet, "
                "FIN) through a real flow table and entropy detector; "
                "block-sharded, census-analyzed, probe-free.",
    tags=("scale", "gfw", "shard"),
    sharder=Sharder(
        mode="flows",
        units=_block_labels,
        restrict=_restrict_blocks,
        payload_from_analysis=scale_payload,
    ),
))
