"""Draw-for-draw faster equivalents of hot ``random.Random`` idioms.

CPython's ``Random.randrange(stop)`` reduces to ``self._randbelow(stop)``
for a positive integer stop — the wrapper only normalizes arguments.
Calling the bound ``_randbelow`` directly consumes the *identical*
underlying getrandbits stream, so seeded runs stay byte-identical (a
regression test pins this), while the per-draw wrapper overhead — which
dominates in per-byte loops like salt/nonce/padding generation — is
gone.  This also holds for ``random.Random`` subclasses: ``randrange``
itself dispatches through ``self._randbelow``.
"""

from __future__ import annotations

import random
from itertools import repeat

__all__ = ["byte_draws", "choice_draw", "randint_draw"]


def byte_draws(rng: random.Random, n: int) -> bytes:
    """``bytes(rng.randrange(256) for _ in range(n))``, draw-for-draw."""
    if type(rng) is random.Random:
        # Inline CPython's ``_randbelow_with_getrandbits`` for n=256:
        # draw 9 bits (256.bit_length()), redraw while >= 256.  The
        # getrandbits call sequence — and therefore the seeded stream —
        # is identical to ``_randbelow(256)``; only the per-byte Python
        # wrapper call disappears.  Subclassed RNGs (which may replace
        # the reduction) keep the ``_randbelow`` dispatch below.
        grb = rng.getrandbits
        out = bytearray(n)
        for i in range(n):
            r = grb(9)
            while r >= 256:
                r = grb(9)
            out[i] = r
        return bytes(out)
    return bytes(map(rng._randbelow, repeat(256, n)))


def choice_draw(rng: random.Random, seq):
    """``rng.choice(seq)``, draw-for-draw.

    CPython's ``choice`` is ``seq[self._randbelow(len(seq))]``; for a
    stock ``random.Random`` the ``_randbelow`` reduction is inlined
    against the bound ``getrandbits`` (draw ``len.bit_length()`` bits,
    redraw while out of range) — the identical seeded stream without two
    Python wrapper frames per pick.
    """
    n = len(seq)
    if type(rng) is random.Random:
        k = n.bit_length()
        grb = rng.getrandbits
        r = grb(k)
        while r >= n:
            r = grb(k)
        return seq[r]
    return seq[rng._randbelow(n)]


def randint_draw(rng: random.Random, a: int, b: int) -> int:
    """``rng.randint(a, b)`` (inclusive bounds), draw-for-draw.

    ``randint`` normalizes to ``randrange(a, b + 1)`` which reduces to
    ``a + self._randbelow(b - a + 1)``; same inlining as above.
    """
    width = b - a + 1
    if type(rng) is random.Random:
        k = width.bit_length()
        grb = rng.getrandbits
        r = grb(k)
        while r >= width:
            r = grb(k)
        return a + r
    return a + rng._randbelow(width)
