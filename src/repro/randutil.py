"""Draw-for-draw faster equivalents of hot ``random.Random`` idioms.

CPython's ``Random.randrange(stop)`` reduces to ``self._randbelow(stop)``
for a positive integer stop — the wrapper only normalizes arguments.
Calling the bound ``_randbelow`` directly consumes the *identical*
underlying getrandbits stream, so seeded runs stay byte-identical (a
regression test pins this), while the per-draw wrapper overhead — which
dominates in per-byte loops like salt/nonce/padding generation — is
gone.  This also holds for ``random.Random`` subclasses: ``randrange``
itself dispatches through ``self._randbelow``.
"""

from __future__ import annotations

import random
from itertools import repeat

__all__ = ["byte_draws"]


def byte_draws(rng: random.Random, n: int) -> bytes:
    """``bytes(rng.randrange(256) for _ in range(n))``, draw-for-draw."""
    return bytes(map(rng._randbelow, repeat(256, n)))
