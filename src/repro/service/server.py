"""The asyncio-streams HTTP/1.1 front end of the control plane.

Stdlib only: requests are parsed straight off an ``asyncio`` stream
reader (request line, headers, ``Content-Length`` body), every response
closes its connection, and the record stream uses Server-Sent Events —
delimited by connection close, so no chunked encoding is needed.

Routes:

=============================  ==========================================
``POST   /jobs``               submit a JobSpec JSON body → 202 + job doc
``GET    /jobs``               list known jobs (newest last, no results)
``GET    /jobs/{id}``          one job's status/result document
``DELETE /jobs/{id}``          cancel (exact while pending, best-effort
                               while running)
``GET    /jobs/{id}/records``  live SSE record stream (see below)
``GET    /metrics``            Prometheus text exposition
``GET    /healthz``            liveness probe
``GET    /``                   service/version/scenario discovery doc
=============================  ==========================================

SSE schema: each record arrives as ::

    event: record
    data: {"kind": "...", ...sanitized record fields...}

with ``: keepalive`` comment lines during quiet stretches and a final ::

    event: end
    data: {"job": "<id>", "state": "done", "streamed": N, "dropped": M}

block once the job reaches a terminal state and its stream drains.
Subscribers joining late replay the job's bounded record buffer first,
so a fast job's records are still observable after it finished.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..runtime.runner import JobSpecError, JobSpec
from ..runtime.scenario import canonical_json, scenario_names
from .jobs import JobManager, JobQueueFull
from .metrics import MetricsRegistry
from .streams import RecordBridge

__all__ = ["ControlPlane", "ControlPlaneConfig", "serve_forever"]

MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 8 * 1024 * 1024
SSE_KEEPALIVE_SECONDS = 10.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass
class ControlPlaneConfig:
    """Everything ``python -m repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8388
    workers: int = 2
    queue_size: int = 64
    cache_root: Optional[str] = None   # None = no shared result cache
    stream_socket: Optional[str] = None  # None = auto temp path
    keep_jobs: int = 256
    drain_timeout: float = 30.0


class _BadRequest(Exception):
    """Malformed HTTP from the client; mapped to a 400."""


class ControlPlane:
    """Wires the HTTP server to a JobManager, RecordBridge, and metrics."""

    def __init__(self, config: ControlPlaneConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "repro_http_requests_total", "HTTP requests served, by route",
            ("route", "status"))
        self._m_sse = self.metrics.gauge(
            "repro_sse_clients", "Record-stream subscribers connected now")
        self._stream_dir: Optional[tempfile.TemporaryDirectory] = None
        path = config.stream_socket
        if path is None:
            self._stream_dir = tempfile.TemporaryDirectory(
                prefix="repro-service-")
            path = os.path.join(self._stream_dir.name, "records.sock")
        self.bridge = RecordBridge(path, metrics=self.metrics)
        self.manager = JobManager(
            workers=config.workers, queue_size=config.queue_size,
            cache_root=config.cache_root, bridge=self.bridge,
            metrics=self.metrics, keep_jobs=config.keep_jobs)
        self._server: Optional[asyncio.AbstractServer] = None

    # ----------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The actually-bound TCP port (for ``port=0`` test servers)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        await self.bridge.start()
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.drain(timeout=self.config.drain_timeout)
        await self.bridge.stop()
        if self._stream_dir is not None:
            self._stream_dir.cleanup()
            self._stream_dir = None

    # ------------------------------------------------------------- serving

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        route = "unparsed"
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
            except _BadRequest as exc:
                await self._respond_json(writer, 400, {"error": str(exc)})
                self._m_requests.inc(route="bad", status="400")
                return
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            route, handler, args = self._route(method, path)
            if handler is None:
                status, doc = 404, {"error": f"no route for {method} {path}"}
                await self._respond_json(writer, status, doc)
            elif asyncio.iscoroutinefunction(handler):
                # SSE: the (async) handler owns the writer until disconnect.
                status = await handler(writer, *args)
            else:
                status, doc = handler(body, *args)
                await self._respond_json(writer, status, doc)
            self._m_requests.inc(route=route, status=str(status))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                writer.close()
                await writer.wait_closed()

    async def _read_head(self, reader: asyncio.StreamReader,
                         ) -> Tuple[str, str, Dict[str, str]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                raise
            raise _BadRequest("truncated request head")
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            if ":" not in line:
                raise _BadRequest(f"malformed header line {line!r}")
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Mapping[str, str]) -> bytes:
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(f"bad Content-Length {length_text!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(f"unacceptable Content-Length {length}")
        if length == 0:
            return b""
        return await reader.readexactly(length)

    def _route(self, method: str, path: str):
        """(metric route label, handler, extra args) for one request."""
        path = path.split("?", 1)[0]
        if path == "/jobs":
            if method == "POST":
                return "jobs.submit", self._handle_submit, ()
            if method == "GET":
                return "jobs.list", self._handle_list, ()
            return "jobs", None, ()
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/records") and method == "GET":
                return ("jobs.records", self._handle_records,
                        (rest[:-len("/records")],))
            if "/" not in rest:
                if method == "GET":
                    return "jobs.get", self._handle_get, (rest,)
                if method == "DELETE":
                    return "jobs.cancel", self._handle_cancel, (rest,)
            return "jobs", None, ()
        if path == "/metrics" and method == "GET":
            return "metrics", self._handle_metrics, ()
        if path == "/healthz" and method == "GET":
            return "healthz", self._handle_healthz, ()
        if path == "/" and method == "GET":
            return "index", self._handle_index, ()
        return "unknown", None, ()

    # ------------------------------------------------------------ handlers

    def _handle_submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            data = json.loads(body or b"{}")
        except ValueError:
            return 400, {"error": "request body is not valid JSON"}
        try:
            spec = JobSpec.from_dict(data)
        except JobSpecError as exc:
            return 400, {"error": str(exc)}
        try:
            job = self.manager.submit(spec)
        except JobQueueFull as exc:
            return 503, {"error": str(exc)}
        return 202, job.to_dict(include_result=False)

    def _handle_list(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        return 200, {"jobs": [job.to_dict(include_result=False)
                              for job in self.manager.jobs()]}

    def _handle_get(self, body: bytes,
                    job_id: str) -> Tuple[int, Dict[str, Any]]:
        job = self.manager.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, job.to_dict()

    def _handle_cancel(self, body: bytes,
                       job_id: str) -> Tuple[int, Dict[str, Any]]:
        job = self.manager.cancel(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, job.to_dict(include_result=False)

    def _handle_metrics(self, body: bytes) -> Tuple[int, str]:
        return 200, self.metrics.render()

    def _handle_healthz(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        return 200, {"status": "ok"}

    def _handle_index(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        import repro

        return 200, {
            "service": "repro-control-plane",
            "version": getattr(repro, "__version__", "unknown"),
            "scenarios": scenario_names(),
            "endpoints": [
                "POST /jobs", "GET /jobs", "GET /jobs/{id}",
                "DELETE /jobs/{id}", "GET /jobs/{id}/records",
                "GET /metrics", "GET /healthz",
            ],
        }

    # ------------------------------------------------------------- the SSE

    async def _handle_records(self, writer: asyncio.StreamWriter,
                              job_id: str) -> int:
        job = self.manager.get(job_id)
        if job is None:
            await self._respond_json(
                writer, 404, {"error": f"unknown job {job_id!r}"})
            return 404
        assert job.stream is not None, "service jobs always carry a stream"
        queue = job.stream.subscribe()
        self._m_sse.inc()
        try:
            writer.write(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: text/event-stream\r\n"
                         b"Cache-Control: no-cache\r\n"
                         b"Connection: close\r\n\r\n")
            writer.write(b"retry: 2000\n\n")
            await writer.drain()
            while True:
                try:
                    record = await asyncio.wait_for(
                        queue.get(), timeout=SSE_KEEPALIVE_SECONDS)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                if record is None:
                    break
                payload = canonical_json(record)
                writer.write(b"event: record\ndata: "
                             + payload.encode("utf-8") + b"\n\n")
                await writer.drain()
            end = {"job": job.id, "state": job.state,
                   "streamed": job.stream.received,
                   "dropped": job.stream.dropped}
            writer.write(b"event: end\ndata: "
                         + canonical_json(end).encode("utf-8") + b"\n\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; unsubscribe below
        finally:
            job.stream.unsubscribe(queue)
            self._m_sse.dec()
        return 200

    # ------------------------------------------------------------ plumbing

    async def _respond_json(self, writer: asyncio.StreamWriter, status: int,
                            doc: Any) -> None:
        if isinstance(doc, str):
            body = doc.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (canonical_json(doc) + "\n").encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


async def serve_forever(config: ControlPlaneConfig, *,
                        ready: Optional[asyncio.Event] = None) -> None:
    """Run a control plane until SIGINT/SIGTERM, then drain gracefully.

    ``ready`` (optional) is set once the server is accepting — test
    harnesses wait on it instead of polling the port.
    """
    plane = ControlPlane(config)
    await plane.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, stop.set)
    print(f"repro control plane listening on "
          f"http://{config.host}:{plane.port} "
          f"({config.workers} worker(s), queue {config.queue_size}, "
          f"cache {config.cache_root or 'disabled'})",
          flush=True)
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        print("repro control plane draining...", flush=True)
        await plane.stop()
