"""Counter/gauge registry rendering the Prometheus text format.

Deliberately tiny — the service needs monotonic counters, point-in-time
gauges, and a ``GET /metrics`` text rendering, not histograms or client
pushes.  Values live in plain dicts keyed by label tuples; everything
renders deterministically (sorted by metric name, then label values) so
scrapes and tests see a stable document.

The registry is synchronous and unlocked: the control plane mutates it
only from the event-loop thread, and worker processes never touch it —
job workers report their tallies back inside the job result, and the
manager folds them in on completion.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "MetricsRegistry"]

LabelValues = Tuple[str, ...]


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _format_value(value: float) -> str:
    """Integers render bare (``17``), floats as repr (``0.25``)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared machinery: label handling and sample storage."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Iterable[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self.values: Dict[LabelValues, float] = {}

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def value(self, **labels: str) -> float:
        return self.values.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelValues, float]]:
        return sorted(self.values.items())

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        if not self.values:
            if not self.labelnames:
                lines.append(f"{self.name} 0")
            return lines
        for key, value in self.samples():
            if self.labelnames:
                label_text = ",".join(
                    f'{name}="{_escape(v)}"'
                    for name, v in zip(self.labelnames, key))
                lines.append(f"{self.name}{{{label_text}}} "
                             f"{_format_value(value)}")
            else:
                lines.append(f"{self.name} {_format_value(value)}")
        return lines


class Counter(_Metric):
    """A monotonically-increasing sample per label combination."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self.values[key] = self.values.get(key, 0.0) + amount


class Gauge(_Metric):
    """A settable point-in-time sample per label combination."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self.values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = self._key(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)


class MetricsRegistry:
    """Named metrics plus the ``GET /metrics`` text rendering."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def counter(self, name: str, help_text: str,
                labelnames: Iterable[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(self, name: str, help_text: str,
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))

    def _register(self, metric: _Metric) -> "_Metric":
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric) or \
                    existing.labelnames != metric.labelnames:
                raise ValueError(
                    f"metric {metric.name!r} already registered with a "
                    f"different type or label set")
            return existing
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def render(self) -> str:
        """The full registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"
