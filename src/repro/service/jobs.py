"""Job lifecycle: bounded queue, process-pool execution, graceful drain.

A job is one :class:`~repro.runtime.runner.JobSpec` plus its lifecycle
state::

    pending ──> running ──> done
       │           │    └─> failed
       └───────────┴──────> cancelled

``pending`` jobs wait in a bounded asyncio queue (submissions beyond
the bound are rejected with :class:`JobQueueFull` → HTTP 503, the
server's load-shedding contract).  ``running`` jobs execute
:func:`~repro.runtime.runner.execute_job` in a ``ProcessPoolExecutor``
worker — the same code path as the CLI, so results are byte-identical
to the equivalent ``python -m repro run``.  Cancellation is exact for
pending jobs and best-effort for running ones: a simulation in flight
cannot be interrupted mid-event, so the manager marks the job
``cancelled``, lets the worker finish, and discards its result.

Workers report cache and record-forwarding tallies inside their return
payload; the manager folds them into the metrics registry on the event
loop, so the registry itself needs no cross-process machinery.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import secrets
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..runtime.cache import ResultCache
from ..runtime.events import RecordForwarder, install_record_tap, remove_record_tap
from ..runtime.runner import JobResult, JobSpec, execute_job
from .metrics import MetricsRegistry
from .streams import JobStream, RecordBridge, WorkerRecordSink

__all__ = ["Job", "JobManager", "JobQueueFull", "JobState"]


class JobState:
    """The five lifecycle states (strings, not an enum: they go to JSON)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


class JobQueueFull(RuntimeError):
    """The pending queue is at capacity; the submission was shed."""


@dataclass
class Job:
    """One submitted spec and everything the control plane knows about it."""

    id: str
    spec: JobSpec
    state: str = JobState.PENDING
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[JobResult] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    records_forwarded: int = 0
    records_dropped_worker: int = 0
    stream: Optional[JobStream] = None

    def to_dict(self, *, include_result: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "records": {
                "forwarded": self.records_forwarded,
                "streamed": self.stream.received if self.stream else 0,
                "dropped_worker": self.records_dropped_worker,
                "dropped_slow_consumers":
                    self.stream.dropped if self.stream else 0,
            },
        }
        if self.result is not None:
            doc["wall_time"] = self.result.wall_time
            doc["cache_hits"] = self.result.cache_hits
            doc["cache_misses"] = self.result.cache_misses
            if include_result:
                doc["result"] = self.result.merged
        return doc


class JobManager:
    """Owns the queue, the pool, every Job, and their metrics."""

    def __init__(self, *, workers: int = 2, queue_size: int = 64,
                 cache_root: Optional[str] = None,
                 bridge: Optional[RecordBridge] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 keep_jobs: int = 256) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache_root = cache_root
        self.bridge = bridge
        self.keep_jobs = keep_jobs
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "asyncio.Queue[Job]" = asyncio.Queue(maxsize=queue_size)
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._active: Dict[str, asyncio.Task] = {}
        self._slots = asyncio.Semaphore(workers)
        self._accepting = False
        self._counter = 0

        registry = metrics or MetricsRegistry()
        self.metrics = registry
        self._m_submitted = registry.counter(
            "repro_jobs_submitted_total", "Jobs accepted by POST /jobs")
        self._m_jobs = registry.counter(
            "repro_jobs_total", "Jobs finished, by terminal state",
            ("state",))
        self._m_active = registry.gauge(
            "repro_jobs_active", "Jobs currently pending or running")
        self._m_queue = registry.gauge(
            "repro_jobs_queue_depth", "Jobs waiting in the pending queue")
        self._m_cache_hits = registry.counter(
            "repro_cache_hits_total", "Result-cache hits across all jobs")
        self._m_cache_misses = registry.counter(
            "repro_cache_misses_total",
            "Result-cache misses across all jobs")
        self._m_bus = registry.counter(
            "repro_bus_events_total",
            "Instrumentation-bus counters folded over finished jobs "
            "(flows seen, verdicts by stage, probes sent, ...)",
            ("name",))

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers)
        self._accepting = True
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="job-dispatcher")

    async def drain(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful shutdown: stop intake, let running jobs finish.

        Pending jobs are cancelled (they never started; their specs are
        re-submittable), running jobs get ``timeout`` seconds to finish
        before the pool is torn down under them.
        """
        self._accepting = False
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        while not self._queue.empty():
            job = self._queue.get_nowait()
            if job.state == JobState.PENDING:
                self._finish(job, JobState.CANCELLED)
        self._m_queue.set(0)
        if self._active:
            _, still_running = await asyncio.wait(
                list(self._active.values()), timeout=timeout)
            for task in still_running:
                task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------- intake

    def submit(self, spec: JobSpec) -> Job:
        """Accept one spec; raises :class:`JobQueueFull` at capacity."""
        if not self._accepting:
            raise JobQueueFull("the service is shutting down")
        self._counter += 1
        job = Job(id=f"j{self._counter:04d}-{secrets.token_hex(4)}",
                  spec=spec)
        if self.bridge is not None:
            job.stream = self.bridge.stream_for(job.id)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            if self.bridge is not None:
                self.bridge.forget_stream(job.id)
            raise JobQueueFull(
                f"pending queue is full ({self._queue.maxsize} jobs)")
        self._jobs[job.id] = job
        self._order.append(job.id)
        self._m_submitted.inc()
        self._m_active.inc()
        self._m_queue.set(self._queue.qsize())
        self._evict_old()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return [self._jobs[job_id] for job_id in self._order
                if job_id in self._jobs]

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job; None if unknown.

        Pending jobs are cancelled exactly (the dispatcher skips them);
        running jobs are marked — the worker's result is discarded when
        it lands.  Terminal jobs are left untouched.
        """
        job = self._jobs.get(job_id)
        if job is None:
            return None
        if job.state == JobState.PENDING:
            self._finish(job, JobState.CANCELLED)
        elif job.state == JobState.RUNNING:
            job.cancel_requested = True
            job.state = JobState.CANCELLED
        return job

    # ----------------------------------------------------------- execution

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            self._m_queue.set(self._queue.qsize())
            if job.state != JobState.PENDING:
                continue  # cancelled while queued
            await self._slots.acquire()
            if job.state != JobState.PENDING:  # cancelled while waiting
                self._slots.release()
                continue
            task = asyncio.create_task(self._run_job(job),
                                       name=f"job-{job.id}")
            self._active[job.id] = task

    async def _run_job(self, job: Job) -> None:
        assert self._pool is not None
        loop = asyncio.get_running_loop()
        job.state = JobState.RUNNING
        job.started = time.time()
        payload = {
            "spec": job.spec.to_dict(),
            "job_id": job.id,
            "cache_root": self.cache_root,
            "stream_path": self.bridge.path if self.bridge else None,
        }
        try:
            outcome = await loop.run_in_executor(
                self._pool, _job_worker, payload)
        except (BrokenProcessPool, asyncio.CancelledError) as exc:
            outcome = {"ok": False,
                       "error": f"{type(exc).__name__}: worker pool died"}
        finally:
            self._slots.release()
            self._active.pop(job.id, None)

        records = outcome.get("records") or {}
        job.records_forwarded = int(records.get("forwarded", 0))
        job.records_dropped_worker = int(records.get("dropped", 0))
        cache_stats = outcome.get("cache") or {}
        self._m_cache_hits.inc(int(cache_stats.get("hits", 0)))
        self._m_cache_misses.inc(int(cache_stats.get("misses", 0)))

        if job.cancel_requested:
            self._finish(job, JobState.CANCELLED)
        elif outcome.get("ok"):
            job.result = JobResult.from_json_dict(outcome["result"])
            for name, count in (job.result.merged.get("events") or {}).items():
                self._m_bus.inc(int(count), name=name)
            self._finish(job, JobState.DONE)
        else:
            job.error = str(outcome.get("error") or "unknown worker failure")
            self._finish(job, JobState.FAILED)

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished = time.time()
        self._m_jobs.inc(state=state)
        self._m_active.dec()
        if self.bridge is not None:
            self.bridge.close_stream(job.id)

    def _evict_old(self) -> None:
        """Bound the in-memory job table: drop oldest *terminal* jobs."""
        while len(self._order) > self.keep_jobs:
            for index, job_id in enumerate(self._order):
                job = self._jobs.get(job_id)
                if job is None or job.state in JobState.TERMINAL:
                    del self._order[index]
                    self._jobs.pop(job_id, None)
                    if self.bridge is not None:
                        self.bridge.forget_stream(job_id)
                    break
            else:
                return  # everything live; let the table grow


# ------------------------------------------------------------ worker side


def _job_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level (picklable) pool entry point: execute one JobSpec.

    Returns a plain dict (never raises): exceptions become
    ``{"ok": False, "error": ...}`` so scenario bugs mark the job
    ``failed`` instead of poisoning the pool.  When the payload names a
    record-bridge socket, a :class:`RecordForwarder` is installed as a
    global tap for the duration, so every EventBus the job creates
    streams sanitized records back to the server live.
    """
    spec = JobSpec.from_dict(payload["spec"])
    sink: Optional[WorkerRecordSink] = None
    forwarder: Optional[RecordForwarder] = None
    stream_path = payload.get("stream_path")
    if stream_path:
        try:
            sink = WorkerRecordSink(stream_path, payload["job_id"])
            forwarder = RecordForwarder(sink.send)
            install_record_tap(forwarder)
        except OSError:
            sink = None  # no bridge listening; run without streaming
    cache_root = payload.get("cache_root")
    cache = ResultCache(cache_root) if cache_root else None
    try:
        result = execute_job(spec, cache=cache)
        outcome: Dict[str, Any] = {"ok": True,
                                   "result": result.to_json_dict()}
    except Exception as exc:  # noqa: BLE001 - the job, not the pool, fails
        outcome = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    finally:
        if forwarder is not None:
            remove_record_tap(forwarder)
        if sink is not None:
            sink.close()
    if forwarder is not None:
        outcome["records"] = {"forwarded": forwarder.forwarded,
                              "dropped": forwarder.dropped}
    if cache is not None:
        outcome["cache"] = cache.stats()
    return outcome
