"""The record bridge: EventBus records out of workers, into SSE fan-out.

Jobs execute in pool worker processes; the analyzer records their
EventBuses emit must reach HTTP clients subscribed to
``GET /jobs/{id}/records`` in the server process, live.  The path:

.. code-block:: text

    worker process                      server process (event loop)
    --------------                      ---------------------------
    EventBus.emit(kind, event)
      -> RecordForwarder (global tap)
        -> sanitize_record(...)
          -> WorkerRecordSink  == unix socket ==>  RecordBridge reader
             (one JSON line                          -> JobStream.publish
              per record)                               -> per-subscriber
                                                           asyncio queues

The worker side is synchronous (it runs inside the simulation's hot
loop); the server side is a per-connection asyncio reader task.  The
first line a worker sends is a handshake naming its job id; every
subsequent line is one sanitized record.

Flow control: the worker socket is *blocking*, so a stalled server
process back-pressures the worker rather than ballooning memory.  On
the server side each subscriber gets a bounded :class:`asyncio.Queue`;
a subscriber that cannot keep up has records *dropped* (counted
per-subscriber and in the ``repro_records_dropped_total`` metric)
rather than stalling the bridge or its peers.  Each job also keeps a
bounded replay buffer of its most recent records so a client that
subscribes moments after the job finished still sees the tail.
"""

from __future__ import annotations

import asyncio
import collections
import json
import socket
from typing import Any, AsyncIterator, Deque, Dict, Optional, Set

from .metrics import MetricsRegistry

__all__ = ["JobStream", "RecordBridge", "WorkerRecordSink"]

# Per-subscriber queue depth: beyond this, new records are dropped for
# that subscriber only (slow-consumer policy).
SUBSCRIBER_QUEUE_DEPTH = 1024
# Most-recent records replayed to late subscribers.
REPLAY_BUFFER_DEPTH = 512


class JobStream:
    """One job's record channel: replay buffer plus live subscribers."""

    def __init__(self, job_id: str,
                 replay_depth: int = REPLAY_BUFFER_DEPTH) -> None:
        self.job_id = job_id
        self.buffer: Deque[Dict[str, Any]] = collections.deque(
            maxlen=replay_depth)
        self.received = 0          # records the bridge routed to this job
        self.dropped = 0           # records dropped across all subscribers
        self.truncated = 0         # records evicted from the replay buffer
        self.closed = False
        self._subscribers: Set["asyncio.Queue[Optional[Dict[str, Any]]]"] = set()

    def publish(self, record: Dict[str, Any]) -> int:
        """Route one record; returns how many subscribers dropped it."""
        self.received += 1
        if self.buffer.maxlen and len(self.buffer) == self.buffer.maxlen:
            self.truncated += 1
        self.buffer.append(record)
        dropped = 0
        for queue in self._subscribers:
            try:
                queue.put_nowait(record)
            except asyncio.QueueFull:
                dropped += 1
        self.dropped += dropped
        return dropped

    def close(self) -> None:
        """No more records will arrive; wake every subscriber with EOF."""
        if self.closed:
            return
        self.closed = True
        for queue in self._subscribers:
            try:
                queue.put_nowait(None)
            except asyncio.QueueFull:
                pass  # the sentinel also comes from subscribe()'s refill

    def subscribe(self) -> "asyncio.Queue[Optional[Dict[str, Any]]]":
        """Attach a consumer: replay the buffer, then live records.

        The queue yields record dicts and a ``None`` sentinel once the
        job is finished and the stream drained.
        """
        queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue(
            maxsize=SUBSCRIBER_QUEUE_DEPTH)
        for record in self.buffer:
            try:
                queue.put_nowait(record)
            except asyncio.QueueFull:
                self.dropped += 1
        if self.closed:
            try:
                queue.put_nowait(None)
            except asyncio.QueueFull:
                pass
        else:
            self._subscribers.add(queue)
        return queue

    def unsubscribe(self,
                    queue: "asyncio.Queue[Optional[Dict[str, Any]]]") -> None:
        self._subscribers.discard(queue)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)


class RecordBridge:
    """The server half: a Unix-socket ingest routing records to streams."""

    def __init__(self, path: str,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.path = path
        self._streams: Dict[str, JobStream] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        registry = metrics or MetricsRegistry()
        self.records_total = registry.counter(
            "repro_records_streamed_total",
            "Structured records received from job workers")
        self.drops_total = registry.counter(
            "repro_records_dropped_total",
            "Records dropped on slow subscriber queues",
            ("reason",))

    async def start(self) -> None:
        self._server = await asyncio.start_unix_server(
            self._handle_worker, path=self.path)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for stream in self._streams.values():
            stream.close()

    # ------------------------------------------------------------- streams

    def stream_for(self, job_id: str) -> JobStream:
        """The (created-on-first-use) record stream of one job."""
        stream = self._streams.get(job_id)
        if stream is None:
            stream = self._streams[job_id] = JobStream(job_id)
        return stream

    def close_stream(self, job_id: str) -> None:
        stream = self._streams.get(job_id)
        if stream is not None:
            stream.close()

    def forget_stream(self, job_id: str) -> None:
        stream = self._streams.pop(job_id, None)
        if stream is not None:
            stream.close()

    # -------------------------------------------------------------- ingest

    async def _handle_worker(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One worker connection: handshake line, then record lines."""
        stream: Optional[JobStream] = None
        try:
            handshake = await reader.readline()
            if not handshake:
                return
            try:
                hello = json.loads(handshake)
                job_id = str(hello["job"])
            except (ValueError, KeyError, TypeError):
                return  # not a worker of ours; drop the connection
            stream = self.stream_for(job_id)
            async for line in _lines(reader):
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn line at worker crash; skip
                if not isinstance(record, dict):
                    continue
                self.records_total.inc()
                dropped = stream.publish(record)
                if dropped:
                    self.drops_total.inc(dropped, reason="slow_consumer")
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # worker died mid-line; the job result reports the error
        finally:
            writer.close()
            # The stream stays open: the job may keep running (e.g. the
            # worker reconnects per seed is not a thing today, but the
            # manager owns the close when the job reaches a terminal
            # state, not the socket lifetime).


async def _lines(reader: asyncio.StreamReader) -> AsyncIterator[bytes]:
    while True:
        line = await reader.readline()
        if not line:
            return
        yield line


class WorkerRecordSink:
    """The worker half: JSON-lines over the bridge's Unix socket.

    Synchronous and blocking by design (see the module docstring).
    Construction performs the connect + handshake; ``send`` writes one
    record line.  Any socket failure raises ``OSError``, which the
    :class:`~repro.runtime.events.RecordForwarder` treats as "consumer
    went away": it stops forwarding but the job keeps running.
    """

    def __init__(self, path: str, job_id: str) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self._sock.connect(path)
            self._sock.sendall(
                json.dumps({"job": job_id}).encode("utf-8") + b"\n")
        except OSError:
            self._sock.close()
            raise

    def send(self, record: Dict[str, Any]) -> None:
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        self._sock.sendall(payload + b"\n")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never fails on Linux
            pass
