"""A thin blocking client for the control plane (tests, examples, CI).

Stdlib ``http.client`` only.  Every call opens one connection (the
server closes after each response anyway); :meth:`ServiceClient.records`
holds its connection open and yields SSE events as they arrive.

Quick use::

    client = ServiceClient("127.0.0.1", 8400)
    job = client.submit({"scenario": "quickstart",
                         "overrides": {"connections": 10}})
    for event, data in client.records(job["id"]):
        print(event, data.get("kind"))
    done = client.wait(job["id"])
    print(done["result"]["metrics"])
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response, or a job that finished failed/cancelled."""

    def __init__(self, message: str, status: Optional[int] = None,
                 body: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body or {}


class ServiceClient:
    """Blocking HTTP client bound to one control plane."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8388, *,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing

    def _request(self, method: str, path: str,
                 body: Optional[Mapping[str, Any]] = None,
                 ) -> Tuple[int, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                decoded: Any = json.loads(raw) if raw else {}
            else:
                decoded = raw.decode("utf-8")
            return response.status, decoded
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        status, decoded = self._request(method, path, body)
        if status >= 400:
            error = decoded.get("error") if isinstance(decoded, dict) else decoded
            raise ServiceError(f"{method} {path} -> {status}: {error}",
                               status=status,
                               body=decoded if isinstance(decoded, dict) else None)
        assert isinstance(decoded, dict)
        return decoded

    # ------------------------------------------------------------ the API

    def info(self) -> Dict[str, Any]:
        return self._json("GET", "/")

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        status, text = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"GET /metrics -> {status}", status=status)
        assert isinstance(text, str)
        return text

    def submit(self, spec: Mapping[str, Any]) -> Dict[str, Any]:
        """POST a JobSpec document; returns the accepted job document."""
        return self._json("POST", "/jobs", dict(spec))

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return list(self._json("GET", "/jobs")["jobs"])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll: float = 0.05, raise_on_failure: bool = True,
             ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its doc."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                if raise_on_failure and doc["state"] != "done":
                    raise ServiceError(
                        f"job {job_id} finished {doc['state']}: "
                        f"{doc.get('error')}", body=doc)
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {doc['state']} after {timeout}s")
            time.sleep(poll)

    def run(self, spec: Mapping[str, Any], *,
            timeout: float = 300.0) -> Dict[str, Any]:
        """Submit + wait; returns the merged result document."""
        job = self.submit(spec)
        done = self.wait(job["id"], timeout=timeout)
        return done["result"]

    def records(self, job_id: str, *, max_events: Optional[int] = None,
                ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(event, data)`` SSE pairs until the ``end`` event.

        ``max_events`` stops the iteration early (the connection is
        dropped; the server unsubscribes the slot on disconnect).
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/records")
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    error = json.loads(raw).get("error")
                except ValueError:
                    error = raw.decode("utf-8", "replace")
                raise ServiceError(
                    f"GET /jobs/{job_id}/records -> {response.status}: "
                    f"{error}", status=response.status)
            yielded = 0
            event: Optional[str] = None
            data_lines: List[bytes] = []
            while True:
                line = response.readline()
                if not line:
                    return  # server closed without an end event
                line = line.rstrip(b"\n")
                if line.startswith(b":"):
                    continue  # keepalive comment
                if line.startswith(b"event:"):
                    event = line[len(b"event:"):].strip().decode("utf-8")
                    continue
                if line.startswith(b"data:"):
                    data_lines.append(line[len(b"data:"):].strip())
                    continue
                if line == b"" and (event or data_lines):
                    # blank line = dispatch the accumulated event
                    name = event or "message"
                    try:
                        data = json.loads(b"\n".join(data_lines) or b"{}")
                    except ValueError:
                        data = {}
                    event, data_lines = None, []
                    if not isinstance(data, dict):
                        data = {"value": data}
                    yield name, data
                    yielded += 1
                    if name == "end":
                        return
                    if max_events is not None and yielded >= max_events:
                        return
        finally:
            conn.close()
