"""The censor-as-a-service control plane.

``repro.service`` turns the batch runtime into a long-lived asyncio
server: scenarios are submitted as :class:`~repro.runtime.runner.JobSpec`
documents over HTTP, execute on a process pool through the exact same
:func:`~repro.runtime.runner.execute_job` path the CLI uses (so a job's
result is byte-identical to the equivalent ``python -m repro run``),
stream their structured analyzer records live over Server-Sent Events
while they run, share the on-disk result cache across submissions, and
report Prometheus-style metrics.

Layers (each its own module, stdlib only):

* :mod:`~repro.service.metrics` — counter/gauge registry + text format;
* :mod:`~repro.service.streams` — the record bridge: worker processes
  forward sanitized EventBus records over a Unix socket into per-job
  asyncio fan-out queues with slow-consumer drop accounting;
* :mod:`~repro.service.jobs`    — the JobManager: bounded queue,
  ProcessPoolExecutor workers, job states, graceful drain;
* :mod:`~repro.service.server`  — the asyncio-streams HTTP/1.1 front
  end (``POST /jobs``, ``GET /jobs/{id}``, ``DELETE /jobs/{id}``,
  ``GET /jobs/{id}/records`` SSE, ``GET /metrics``);
* :mod:`~repro.service.client`  — a thin blocking client for tests,
  examples, and CI.

Start one with ``python -m repro serve --host 127.0.0.1 --port 8388``
or programmatically::

    from repro.service import ControlPlaneConfig, serve_forever
    import asyncio

    asyncio.run(serve_forever(ControlPlaneConfig(port=8400, workers=2)))
"""

from .client import ServiceClient, ServiceError
from .jobs import Job, JobManager, JobQueueFull, JobState
from .metrics import Counter, Gauge, MetricsRegistry
from .server import ControlPlane, ControlPlaneConfig, serve_forever
from .streams import JobStream, RecordBridge, WorkerRecordSink

__all__ = [
    "ControlPlane",
    "ControlPlaneConfig",
    "Counter",
    "Gauge",
    "Job",
    "JobManager",
    "JobQueueFull",
    "JobState",
    "JobStream",
    "MetricsRegistry",
    "RecordBridge",
    "ServiceClient",
    "ServiceError",
    "WorkerRecordSink",
    "serve_forever",
]
