"""Plain-text rendering of tables, CDFs, and histograms for the benchmarks.

Every benchmark prints the same rows/series its paper counterpart shows,
using these helpers, so ``pytest benchmarks/ --benchmark-only -s`` reads
like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["render_table", "render_cdf_points", "render_histogram", "banner"]


def banner(title: str) -> str:
    line = "=" * max(len(title), 8)
    return f"\n{line}\n{title}\n{line}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_cdf_points(points: Sequence[Tuple[float, float]],
                      x_label: str = "x", y_label: str = "CDF") -> str:
    rows = [(f"{x:g}", f"{100 * y:.1f}%") for x, y in points]
    return render_table([x_label, y_label], rows)


def render_histogram(counts: Dict[object, int], *, width: int = 40,
                     key_label: str = "value") -> str:
    """Horizontal bar chart over sorted keys."""
    if not counts:
        return "(empty)"
    peak = max(counts.values())
    lines = []
    for key in sorted(counts):
        n = counts[key]
        bar = "#" * max(1, round(width * n / peak)) if n else ""
        lines.append(f"{str(key):>12}  {n:>7}  {bar}")
    return "\n".join([f"{key_label:>12}  {'count':>7}"] + lines)
