"""Streaming analysis: composable, mergeable online analyzers.

The legacy :mod:`repro.analysis` modules are batch functions over full
in-memory captures — fine for a demo, unaffordable at the ROADMAP's
"millions of users" scale where buffering every packet of a run is the
dominant memory cost.  This module restates that analysis as an online
pipeline:

* an :class:`Analyzer` consumes structured events one at a time
  (``observe``), can fold in a peer's state from another shard
  (``merge``), and reduces to a JSON-able summary (``finalize``);
* an :class:`AnalysisPipeline` owns a named set of analyzers and wires
  them to a run's event sources — the per-simulator
  :class:`~repro.runtime.events.EventBus` record channel and live
  :class:`~repro.net.capture.Capture` taps — so results accumulate
  *while the simulation runs*, with memory bounded by the analysis
  state itself (counters, per-probe tuples, ground-truth payloads)
  rather than by total traffic.

Event vocabulary (see :mod:`repro.runtime.events` for the emitters):

==================  ====================================================
``probe``           prober runner dispatched a probe (payload, type, ...)
``probe.result``    a probe finished with a classified reaction
``flow.flagged``    the passive detector flagged a feature packet
``block``           the blocking module installed a block rule
``payload``         a workload client sent a ground-truth payload
``capture``         a tapped host capture saw a segment (pipeline-local)
==================  ====================================================

Analyzer state is JSON-serialisable (``state_dict``/``load_state``), so
it travels inside cached :class:`~repro.runtime.scenario.RunResult`s and
across process boundaries: the runner merges analyzer *states* from
parallel multi-seed shards instead of shipping raw captures, and
``python -m repro analyze`` re-finalizes a cached run without
re-simulating anything.

The batch functions (:func:`~repro.analysis.classify.extract_probes`
and friends) remain as thin verification wrappers; the property tests
assert the streaming outputs are byte-identical to them.
"""

from __future__ import annotations

import base64
import random
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from .classify import ObservedProbe, classify_payload
from .fingerprint import cluster_tsval_sequences, port_statistics
from .overlap import PAPER_FIG4_REGIONS, synthesize_historical_sets, venn3
from .stats import ECDF

__all__ = [
    "AnalysisPipeline",
    "Analyzer",
    "BlockEvents",
    "CaptureProbeClassifier",
    "EcdfAnalyzer",
    "FlaggedConnections",
    "FlowCensus",
    "OverlapAnalyzer",
    "ProbeBlockDelays",
    "ProbeSynTimes",
    "ProbeTally",
    "ProberFingerprint",
    "RandomDataStats",
    "ReplayDelays",
    "SynCount",
    "VerdictRecords",
    "analyzer_kinds",
    "build_analyzer",
    "merge_analysis",
    "register_analyzer",
    "restore_analyzer",
    "series",
]


def _b64e(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _b64d(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def series(values: Iterable[float]) -> Dict[str, float]:
    """Summary stats of a numeric series (empty-safe, JSON-able)."""
    ordered = sorted(values)
    if not ordered:
        return {"count": 0}
    n = len(ordered)
    median = (ordered[n // 2] if n % 2
              else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0)
    return {"count": n, "mean": sum(ordered) / n, "median": median,
            "min": ordered[0], "max": ordered[-1]}


# ------------------------------------------------------------------ protocol


class Analyzer:
    """One online reduction over the event stream.

    Subclasses set a unique ``kind``, register with
    :func:`register_analyzer`, and keep three invariants:

    * ``observe`` must be cheap and must not retain unbounded per-packet
      state — analyzer memory is the sufficient statistic of its output,
      not the traffic that produced it;
    * ``merge`` folds another instance (same kind, same config) into
      this one so shard states combine associatively in seed order;
    * ``state_dict``/``load_state`` round-trip the full state through
      plain JSON types, which is what lets states cross process
      boundaries and live in cached results.
    """

    kind: ClassVar[str] = ""

    def config(self) -> Dict[str, Any]:
        """JSON-able constructor kwargs (identity of the reduction)."""
        return {}

    def observe(self, event: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def merge(self, other: "Analyzer") -> None:
        raise NotImplementedError

    def finalize(self) -> Dict[str, Any]:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def load_state(self, state: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def _check_mergeable(self, other: "Analyzer") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )


_ANALYZERS: Dict[str, Type[Analyzer]] = {}


def register_analyzer(cls: Type[Analyzer]) -> Type[Analyzer]:
    """Class decorator: make ``cls`` restorable by its ``kind``."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must define a non-empty kind")
    _ANALYZERS[cls.kind] = cls
    return cls


def analyzer_kinds() -> List[str]:
    return sorted(_ANALYZERS)


def build_analyzer(kind: str, config: Optional[Mapping[str, Any]] = None) -> Analyzer:
    try:
        cls = _ANALYZERS[kind]
    except KeyError:
        known = ", ".join(analyzer_kinds()) or "(none)"
        raise KeyError(f"unknown analyzer kind {kind!r}; registered: {known}")
    return cls(**dict(config or {}))


def restore_analyzer(spec: Mapping[str, Any]) -> Analyzer:
    """Rebuild a live analyzer from a serialized ``{analyzer, config, state}``."""
    analyzer = build_analyzer(spec["analyzer"], spec.get("config"))
    analyzer.load_state(spec.get("state") or {})
    return analyzer


def merge_analysis(
    per_run: Sequence[Mapping[str, Mapping[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Merge serialized analysis sections from several runs and re-finalize.

    ``per_run`` holds one ``{name: spec}`` mapping per run, in seed
    order.  Returns ``{name: output}``; empty if any run carries no
    analysis (mixing analyzed and unanalyzed runs is not meaningful).
    """
    if not per_run or any(not section for section in per_run):
        return {}
    merged: Dict[str, Dict[str, Any]] = {}
    for name in per_run[0]:
        analyzer = restore_analyzer(per_run[0][name])
        for later in per_run[1:]:
            spec = later.get(name)
            if spec is not None:
                analyzer.merge(restore_analyzer(spec))
        merged[name] = analyzer.finalize()
    return merged


# ------------------------------------------------------------------ pipeline


class AnalysisPipeline:
    """A named analyzer set wired to a run's live event sources.

    ``attach(bus)`` subscribes every analyzer to the bus's structured
    record channel; ``tap_capture`` additionally routes one host
    capture's records (wrapped as ``capture`` events) to a subset of
    analyzers.  ``outputs()`` finalizes exactly once and memoizes, so
    summarizers and serializers see one consistent view.
    """

    def __init__(self, analyzers: Mapping[str, Analyzer]):
        self.analyzers: Dict[str, Analyzer] = dict(analyzers)
        self._bus: Any = None
        self._taps: List[Tuple[Any, Callable[[Any], None]]] = []
        self._outputs: Optional[Dict[str, Dict[str, Any]]] = None

    # -------------------------------------------------------------- wiring

    def attach(self, bus: Any) -> "AnalysisPipeline":
        """Subscribe all analyzers to a bus's structured record channel."""
        self._bus = bus
        bus.subscribe_records(self._observe_all)
        return self

    def tap_capture(self, capture: Any, *, host: str = "",
                    names: Optional[Sequence[str]] = None) -> None:
        """Route one capture's records to the named analyzers (all if None).

        The tap fires per record as it happens, independent of the
        capture's ``buffering`` flag — turning buffering off is what
        makes a large run constant-memory while analysis still sees
        every segment.
        """
        targets = (list(self.analyzers.values()) if names is None
                   else [self.analyzers[n] for n in names])

        def tap(rec: Any) -> None:
            event = {"kind": "capture", "host": host, "time": rec.time,
                     "sent": rec.sent, "segment": rec.segment}
            for analyzer in targets:
                analyzer.observe(event)

        capture.subscribe(tap)
        self._taps.append((capture, tap))

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe_records(self._observe_all)
            self._bus = None
        for capture, tap in self._taps:
            try:
                capture.taps.remove(tap)
            except ValueError:
                pass
        self._taps.clear()

    def _observe_all(self, event: Dict[str, Any]) -> None:
        for analyzer in self.analyzers.values():
            analyzer.observe(event)

    # ------------------------------------------------------------- results

    def outputs(self) -> Dict[str, Dict[str, Any]]:
        """Finalized ``{name: output}``; computed once, then memoized."""
        if self._outputs is None:
            self._outputs = {name: analyzer.finalize()
                             for name, analyzer in self.analyzers.items()}
        return self._outputs

    def payload(self) -> Dict[str, Dict[str, Any]]:
        """Full serialized section: ``{name: {analyzer, config, state, output}}``."""
        outputs = self.outputs()
        return {
            name: {
                "analyzer": analyzer.kind,
                "config": analyzer.config(),
                "state": analyzer.state_dict(),
                "output": outputs[name],
            }
            for name, analyzer in self.analyzers.items()
        }


# ----------------------------------------------------------- probe analyzers


@register_analyzer
class ProbeTally(Analyzer):
    """Per-type, per-source, per-target probe counts (Figures 2-3)."""

    kind = "probe_tally"

    def __init__(self) -> None:
        self.count = 0
        self.by_type: Dict[str, int] = {}
        self.src_ips: Set[str] = set()
        self.by_server: Dict[str, int] = {}

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "probe":
            return
        self.count += 1
        probe_type = event["probe_type"]
        self.by_type[probe_type] = self.by_type.get(probe_type, 0) + 1
        self.src_ips.add(event["src_ip"])
        server = event["server_ip"]
        self.by_server[server] = self.by_server.get(server, 0) + 1

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, ProbeTally)
        self.count += other.count
        for key, n in other.by_type.items():
            self.by_type[key] = self.by_type.get(key, 0) + n
        self.src_ips.update(other.src_ips)
        for key, n in other.by_server.items():
            self.by_server[key] = self.by_server.get(key, 0) + n

    def finalize(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "by_type": dict(sorted(self.by_type.items())),
            "unique_src_ips": len(self.src_ips),
            "by_server": dict(sorted(self.by_server.items())),
        }

    def state_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "by_type": dict(self.by_type),
                "src_ips": sorted(self.src_ips),
                "by_server": dict(self.by_server)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.count = int(state.get("count", 0))
        self.by_type = dict(state.get("by_type") or {})
        self.src_ips = set(state.get("src_ips") or [])
        self.by_server = dict(state.get("by_server") or {})


@register_analyzer
class FlaggedConnections(Analyzer):
    """How many feature packets the passive detector flagged."""

    kind = "flagged_connections"

    def __init__(self) -> None:
        self.count = 0

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") == "flow.flagged":
            self.count += 1

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, FlaggedConnections)
        self.count += other.count

    def finalize(self) -> Dict[str, Any]:
        return {"count": self.count}

    def state_dict(self) -> Dict[str, Any]:
        return {"count": self.count}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.count = int(state.get("count", 0))


@register_analyzer
class ReplayDelays(Analyzer):
    """Figure 7: replay delays, first-occurrence-per-payload and overall.

    First-occurrence is keyed on the replayed payload bytes; events
    arrive in simulation-time order, so "first" matches the batch
    computation over a time-sorted probe log.
    """

    kind = "replay_delays"

    def __init__(self) -> None:
        self.first: Dict[str, float] = {}
        self.all: List[float] = []

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "probe":
            return
        delay = event.get("delay")
        if delay is None:
            return
        self.all.append(float(delay))
        key = _b64e(event["payload"])
        if key not in self.first:
            self.first[key] = float(delay)

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, ReplayDelays)
        self.all.extend(other.all)
        for key, delay in other.first.items():
            if key not in self.first:
                self.first[key] = delay

    def finalize(self) -> Dict[str, Any]:
        return {"first": series(self.first.values()), "all": series(self.all)}

    def state_dict(self) -> Dict[str, Any]:
        return {"first": dict(self.first), "all": list(self.all)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.first = dict(state.get("first") or {})
        self.all = list(state.get("all") or [])


@register_analyzer
class BlockEvents(Analyzer):
    """§6 block-rule installations, in event order."""

    kind = "block_events"

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "block":
            return
        self.events.append({
            "time": event["time"],
            "ip": event["ip"],
            "port": event["port"],
            "unblock_time": event["unblock_time"],
        })

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, BlockEvents)
        self.events.extend(other.events)

    def finalize(self) -> Dict[str, Any]:
        return {"count": len(self.events), "events": list(self.events)}

    def state_dict(self) -> Dict[str, Any]:
        return {"events": list(self.events)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.events = [dict(e) for e in state.get("events") or []]


@register_analyzer
class ProbeBlockDelays(Analyzer):
    """Detection-to-blocking timelines per endpoint (Fifield & Tsai).

    Tracks, keyed on the responder/server IP, the first time a flow to
    the endpoint was flagged, the first active probe it received, and
    the time its block rule landed — then reports the three derived
    delay series (flag→probe, probe→block, flag→block).  State is one
    float per endpoint per table and merging is min-combination, so
    shard order never changes the result.
    """

    kind = "probe_block_delays"

    def __init__(self) -> None:
        self.first_flagged: Dict[str, float] = {}
        self.first_probe: Dict[str, float] = {}
        self.blocked_at: Dict[str, float] = {}

    @staticmethod
    def _note(table: Dict[str, float], ip: str, time: Any) -> None:
        t = float(time)
        prev = table.get(ip)
        if prev is None or t < prev:
            table[ip] = t

    def observe(self, event: Mapping[str, Any]) -> None:
        kind = event.get("kind")
        if kind == "flow.flagged":
            self._note(self.first_flagged, event["responder_ip"], event["time"])
        elif kind == "probe":
            self._note(self.first_probe, event["server_ip"], event["time"])
        elif kind == "block":
            self._note(self.blocked_at, event["ip"], event["time"])

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, ProbeBlockDelays)
        for mine, theirs in ((self.first_flagged, other.first_flagged),
                             (self.first_probe, other.first_probe),
                             (self.blocked_at, other.blocked_at)):
            for ip, t in theirs.items():
                self._note(mine, ip, t)

    def finalize(self) -> Dict[str, Any]:
        endpoints = {
            ip: {
                "flagged_at": self.first_flagged.get(ip),
                "first_probe_at": self.first_probe.get(ip),
                "blocked_at": self.blocked_at.get(ip),
            }
            for ip in sorted(set(self.first_flagged)
                             | set(self.first_probe) | set(self.blocked_at))
        }
        flag_to_probe = [self.first_probe[ip] - self.first_flagged[ip]
                         for ip in sorted(self.first_probe)
                         if ip in self.first_flagged]
        probe_to_block = [self.blocked_at[ip] - self.first_probe[ip]
                          for ip in sorted(self.blocked_at)
                          if ip in self.first_probe]
        flag_to_block = [self.blocked_at[ip] - self.first_flagged[ip]
                         for ip in sorted(self.blocked_at)
                         if ip in self.first_flagged]
        return {
            "endpoints": endpoints,
            "blocked": len(self.blocked_at),
            "flag_to_probe": series(flag_to_probe),
            "probe_to_block": series(probe_to_block),
            "flag_to_block": series(flag_to_block),
        }

    def state_dict(self) -> Dict[str, Any]:
        return {"first_flagged": dict(self.first_flagged),
                "first_probe": dict(self.first_probe),
                "blocked_at": dict(self.blocked_at)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.first_flagged = {str(k): float(v) for k, v
                              in (state.get("first_flagged") or {}).items()}
        self.first_probe = {str(k): float(v) for k, v
                            in (state.get("first_probe") or {}).items()}
        self.blocked_at = {str(k): float(v) for k, v
                           in (state.get("blocked_at") or {}).items()}


@register_analyzer
class VerdictRecords(Analyzer):
    """Detector-pipeline verdicts (flagged feature packets), by stage.

    Consumes the ``verdict`` records the reaction layer emits alongside
    the legacy ``flow.flagged`` events.  Tracks the deciding stage kind,
    score statistics, and per-responder counts — the observables a
    detector-ensemble ablation compares across pipelines.
    """

    kind = "verdict_records"

    def __init__(self, per_server_cap: int = 1024) -> None:
        self.per_server_cap = per_server_cap
        self.count = 0
        self.by_stage: Dict[str, int] = {}
        self.scores: List[float] = []   # sufficient stats kept small below
        self.by_server: Dict[str, int] = {}

    def config(self) -> Dict[str, Any]:
        return {"per_server_cap": self.per_server_cap}

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "verdict":
            return
        self.count += 1
        stage = str(event.get("stage", ""))
        self.by_stage[stage] = self.by_stage.get(stage, 0) + 1
        self.scores.append(float(event.get("score", 0.0)))
        server = f"{event.get('responder_ip')}:{event.get('responder_port')}"
        if server in self.by_server or len(self.by_server) < self.per_server_cap:
            self.by_server[server] = self.by_server.get(server, 0) + 1

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, VerdictRecords)
        self.count += other.count
        for stage, n in other.by_stage.items():
            self.by_stage[stage] = self.by_stage.get(stage, 0) + n
        self.scores.extend(other.scores)
        for server, n in other.by_server.items():
            if server in self.by_server or len(self.by_server) < self.per_server_cap:
                self.by_server[server] = self.by_server.get(server, 0) + n

    def finalize(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "by_stage": dict(sorted(self.by_stage.items())),
            "scores": series(self.scores),
            "by_server": dict(sorted(self.by_server.items())),
        }

    def state_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "by_stage": dict(self.by_stage),
                "scores": list(self.scores),
                "by_server": dict(self.by_server)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.count = int(state.get("count", 0))
        self.by_stage = {str(k): int(v)
                         for k, v in (state.get("by_stage") or {}).items()}
        self.scores = [float(v) for v in state.get("scores") or []]
        self.by_server = {str(k): int(v)
                          for k, v in (state.get("by_server") or {}).items()}


@register_analyzer
class FlowCensus(Analyzer):
    """Aggregate census of ``scale.flow`` records (the scale-1m scenario).

    Deliberately integer-only and order-insensitive: every field is a
    count, so merging shard states is plain addition and the merged
    result is byte-identical to the serial run no matter how the flow
    space was partitioned.  (List- or float-accumulating analyzers like
    :class:`VerdictRecords` cannot make that promise — their state
    depends on observation order.)
    """

    kind = "flow_census"

    def __init__(self, bins: int = 16) -> None:
        self.bins = int(bins)
        self.flows = 0
        self.flagged = 0
        # responder port -> [flows, flagged]
        self.by_port: Dict[str, List[int]] = {}
        self.by_stage: Dict[str, int] = {}
        self.entropy_hist = [0] * self.bins

    def config(self) -> Dict[str, Any]:
        return {"bins": self.bins}

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "scale.flow":
            return
        self.flows += 1
        flagged = bool(event.get("flagged"))
        port = str(event.get("port"))
        tally = self.by_port.get(port)
        if tally is None:
            tally = self.by_port[port] = [0, 0]
        tally[0] += 1
        if flagged:
            self.flagged += 1
            tally[1] += 1
            stage = str(event.get("stage", ""))
            self.by_stage[stage] = self.by_stage.get(stage, 0) + 1
        entropy = float(event.get("entropy", 0.0))
        index = int(entropy / 8.0 * self.bins)
        self.entropy_hist[min(self.bins - 1, max(0, index))] += 1

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, FlowCensus)
        if other.bins != self.bins:
            raise ValueError("cannot merge FlowCensus with different bins")
        self.flows += other.flows
        self.flagged += other.flagged
        for port, (total, hits) in other.by_port.items():
            tally = self.by_port.get(port)
            if tally is None:
                self.by_port[port] = [total, hits]
            else:
                tally[0] += total
                tally[1] += hits
        for stage, n in other.by_stage.items():
            self.by_stage[stage] = self.by_stage.get(stage, 0) + n
        for i, n in enumerate(other.entropy_hist):
            self.entropy_hist[i] += n

    def finalize(self) -> Dict[str, Any]:
        return {
            "flows": self.flows,
            "flagged": self.flagged,
            "by_port": {port: list(tally)
                        for port, tally in sorted(self.by_port.items())},
            "by_stage": dict(sorted(self.by_stage.items())),
            "entropy_hist": list(self.entropy_hist),
        }

    def state_dict(self) -> Dict[str, Any]:
        return {
            "flows": self.flows,
            "flagged": self.flagged,
            "by_port": {port: list(tally)
                        for port, tally in sorted(self.by_port.items())},
            "by_stage": dict(sorted(self.by_stage.items())),
            "entropy_hist": list(self.entropy_hist),
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.flows = int(state.get("flows", 0))
        self.flagged = int(state.get("flagged", 0))
        self.by_port = {str(k): [int(v[0]), int(v[1])]
                        for k, v in (state.get("by_port") or {}).items()}
        self.by_stage = {str(k): int(v)
                         for k, v in (state.get("by_stage") or {}).items()}
        self.entropy_hist = [int(n) for n in
                             state.get("entropy_hist") or [0] * self.bins]


# --------------------------------------------------------- capture analyzers


@register_analyzer
class SynCount(Analyzer):
    """Received-SYN counter for one tapped host capture."""

    kind = "syn_count"

    def __init__(self) -> None:
        self.count = 0

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "capture" or event["sent"]:
            return
        if event["segment"].is_syn:
            self.count += 1

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, SynCount)
        self.count += other.count

    def finalize(self) -> Dict[str, Any]:
        return {"count": self.count}

    def state_dict(self) -> Dict[str, Any]:
        return {"count": self.count}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.count = int(state.get("count", 0))


@register_analyzer
class ProbeSynTimes(Analyzer):
    """§7.1 observable: prober SYN arrival times at one tapped server.

    A prober SYN is any received SYN whose source is neither the
    experiment's own client nor outside the known prober AS prefixes.
    ``finalize`` derives the Figure 11 series: hourly counts over
    ``duration`` and probes/hour inside vs outside the ``windows``.
    """

    kind = "probe_syn_times"

    def __init__(self, client_ip: str = "", duration: float = 0.0,
                 windows: Sequence[Sequence[float]] = ()) -> None:
        self.client_ip = client_ip
        self.duration = float(duration)
        self.windows: List[List[float]] = [[float(s), float(e)]
                                           for s, e in windows]
        self.times: List[float] = []

    def config(self) -> Dict[str, Any]:
        return {"client_ip": self.client_ip, "duration": self.duration,
                "windows": [list(w) for w in self.windows]}

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "capture" or event["sent"]:
            return
        seg = event["segment"]
        if not seg.is_syn or seg.src_ip == self.client_ip:
            return
        from ..net import lookup_asn

        if lookup_asn(seg.src_ip) is not None:
            self.times.append(float(event["time"]))

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, ProbeSynTimes)
        self.times.extend(other.times)

    def finalize(self) -> Dict[str, Any]:
        hours = int(self.duration // 3600) + 1
        hourly = [0] * hours
        for t in self.times:
            if t < self.duration:
                hourly[int(t // 3600)] += 1
        active_seconds = sum(end - start for start, end in self.windows)
        inactive_seconds = self.duration - active_seconds

        def in_window(t: float) -> bool:
            return any(start <= t < end for start, end in self.windows)

        active = sum(1 for t in self.times if in_window(t))
        inactive = sum(1 for t in self.times
                       if t < self.duration and not in_window(t))
        return {
            "count": len(self.times),
            "hourly": hourly,
            "rate_active": (active / (active_seconds / 3600.0)
                            if active_seconds else 0.0),
            "rate_inactive": (inactive / (inactive_seconds / 3600.0)
                              if inactive_seconds else 0.0),
        }

    def state_dict(self) -> Dict[str, Any]:
        return {"times": list(self.times)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.times = list(state.get("times") or [])


@register_analyzer
class CaptureProbeClassifier(Analyzer):
    """§3.2 classification from one tapped server capture, online.

    Streams the server's traffic once, retaining only the sufficient
    statistics of the batch method: the deduplicated ground-truth
    payloads the experiment's own clients sent, plus per-foreign-
    connection SYN metadata and first data payload.  Classification is
    deferred to ``finalize`` so every probe is diffed against the same
    ground-truth set the batch :func:`~repro.analysis.classify.
    extract_probes` would see — byte-identical output without buffering
    the capture.
    """

    kind = "capture_probes"

    def __init__(self, server_port: int = 0,
                 client_ips: Iterable[str] = ()) -> None:
        self.server_port = int(server_port)
        self.client_ips = set(client_ips)
        self.legit: List[bytes] = []
        self._legit_seen: Set[bytes] = set()
        # (src_ip, src_port) -> (time, tsval, ttl) / (time, payload)
        self.syn_meta: Dict[Tuple[str, int],
                            Tuple[float, Optional[int], Optional[int]]] = {}
        self.first_payload: Dict[Tuple[str, int], Tuple[float, bytes]] = {}

    def config(self) -> Dict[str, Any]:
        return {"server_port": self.server_port,
                "client_ips": sorted(self.client_ips)}

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "capture" or event["sent"]:
            return
        seg = event["segment"]
        if seg.dst_port != self.server_port:
            return
        if seg.src_ip in self.client_ips:
            if seg.is_data:
                payload = bytes(seg.payload)
                # Duplicates cannot change a first-match classification;
                # dropping them keeps the ground-truth list at one entry
                # per distinct payload.
                if payload not in self._legit_seen:
                    self._legit_seen.add(payload)
                    self.legit.append(payload)
            return
        key = (seg.src_ip, seg.src_port)
        if seg.is_syn and key not in self.syn_meta:
            self.syn_meta[key] = (float(event["time"]), seg.tsval, seg.ttl)
        elif seg.is_data and key not in self.first_payload:
            self.first_payload[key] = (float(event["time"]), bytes(seg.payload))

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, CaptureProbeClassifier)
        for payload in other.legit:
            if payload not in self._legit_seen:
                self._legit_seen.add(payload)
                self.legit.append(payload)
        for key, meta in other.syn_meta.items():
            self.syn_meta.setdefault(key, meta)
        for key, fp in other.first_payload.items():
            self.first_payload.setdefault(key, fp)

    def probes(self) -> List[ObservedProbe]:
        """The reconstructed probe list, classified against ground truth."""
        out: List[ObservedProbe] = []
        for key, (time, payload) in sorted(self.first_payload.items(),
                                           key=lambda kv: kv[1][0]):
            probe_type, matched = classify_payload(payload, self.legit)
            meta = self.syn_meta.get(key)
            out.append(ObservedProbe(
                time=time,
                src_ip=key[0],
                src_port=key[1],
                dst_port=self.server_port,
                payload=payload,
                probe_type=probe_type,
                matched_payload=matched,
                syn_tsval=meta[1] if meta else None,
                syn_ttl=meta[2] if meta else None,
            ))
        return out

    def finalize(self) -> Dict[str, Any]:
        by_type: Dict[str, int] = {}
        probes = self.probes()
        for probe in probes:
            by_type[probe.probe_type] = by_type.get(probe.probe_type, 0) + 1
        return {"count": len(probes), "by_type": dict(sorted(by_type.items()))}

    def state_dict(self) -> Dict[str, Any]:
        return {
            "legit": [_b64e(p) for p in self.legit],
            "syn_meta": {f"{ip}|{port}": [t, tsval, ttl]
                         for (ip, port), (t, tsval, ttl)
                         in self.syn_meta.items()},
            "first_payload": {f"{ip}|{port}": [t, _b64e(p)]
                              for (ip, port), (t, p)
                              in self.first_payload.items()},
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.legit = [_b64d(s) for s in state.get("legit") or []]
        self._legit_seen = set(self.legit)
        self.syn_meta = {}
        for key, (t, tsval, ttl) in (state.get("syn_meta") or {}).items():
            ip, port = key.rsplit("|", 1)
            self.syn_meta[(ip, int(port))] = (float(t), tsval, ttl)
        self.first_payload = {}
        for key, (t, payload) in (state.get("first_payload") or {}).items():
            ip, port = key.rsplit("|", 1)
            self.first_payload[(ip, int(port))] = (float(t), _b64d(payload))


@register_analyzer
class RandomDataStats(Analyzer):
    """§4.1 reductions: trigger lengths, replay lengths, Figure 9 ratios.

    Observes workload ``payload`` ground truth and ``probe`` events; the
    per-payload entropy map is the only payload-keyed state and holds
    one float per distinct legitimate payload.
    """

    kind = "random_data"

    def __init__(self, bins: int = 8) -> None:
        self.bins = int(bins)
        self.connections = 0
        self.trigger_lengths: List[int] = []
        self.replay_lengths: List[int] = []
        self.legit_bins = [0] * self.bins
        self.replay_bins = [0] * self.bins
        self.entropy_of: Dict[str, float] = {}

    def config(self) -> Dict[str, Any]:
        return {"bins": self.bins}

    def _bin(self, entropy: float) -> int:
        return min(self.bins - 1, int(entropy / 8.0 * self.bins))

    def observe(self, event: Mapping[str, Any]) -> None:
        kind = event.get("kind")
        if kind == "payload":
            from ..gfw import shannon_entropy

            payload = event["payload"]
            entropy = shannon_entropy(payload)
            self.entropy_of[_b64e(payload)] = entropy
            self.legit_bins[self._bin(entropy)] += 1
            self.trigger_lengths.append(len(payload))
            self.connections += 1
        elif kind == "probe" and event.get("is_replay"):
            self.replay_lengths.append(len(event["payload"]))
            source = event.get("source_payload")
            if source is None:
                return
            entropy = self.entropy_of.get(_b64e(source))
            if entropy is None:
                from ..gfw import shannon_entropy

                entropy = shannon_entropy(source)
            self.replay_bins[self._bin(entropy)] += 1

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, RandomDataStats)
        if other.bins != self.bins:
            raise ValueError("cannot merge RandomDataStats with different bins")
        self.connections += other.connections
        self.trigger_lengths.extend(other.trigger_lengths)
        self.replay_lengths.extend(other.replay_lengths)
        for i, n in enumerate(other.legit_bins):
            self.legit_bins[i] += n
        for i, n in enumerate(other.replay_bins):
            self.replay_bins[i] += n
        self.entropy_of.update(other.entropy_of)

    def finalize(self) -> Dict[str, Any]:
        ratio = []
        for i in range(self.bins):
            center = (i + 0.5) * 8.0 / self.bins
            legit = self.legit_bins[i]
            ratio.append([center,
                          self.replay_bins[i] / legit if legit else 0.0])
        return {
            "connections": self.connections,
            "replays": len(self.replay_lengths),
            "trigger_lengths": series(self.trigger_lengths),
            "replay_lengths": series(self.replay_lengths),
            "ratio_by_entropy": ratio,
        }

    def state_dict(self) -> Dict[str, Any]:
        return {
            "connections": self.connections,
            "trigger_lengths": list(self.trigger_lengths),
            "replay_lengths": list(self.replay_lengths),
            "legit_bins": list(self.legit_bins),
            "replay_bins": list(self.replay_bins),
            "entropy_of": dict(self.entropy_of),
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.connections = int(state.get("connections", 0))
        self.trigger_lengths = list(state.get("trigger_lengths") or [])
        self.replay_lengths = list(state.get("replay_lengths") or [])
        self.legit_bins = list(state.get("legit_bins") or [0] * self.bins)
        self.replay_bins = list(state.get("replay_bins") or [0] * self.bins)
        self.entropy_of = dict(state.get("entropy_of") or {})


# ------------------------------------------------------ statistics analyzers


@register_analyzer
class EcdfAnalyzer(Analyzer):
    """ECDF quantiles of one numeric field of one event kind."""

    kind = "ecdf"

    DEFAULT_QUANTILES = (0.25, 0.5, 0.75, 0.9, 0.99)

    def __init__(self, event: str = "probe", field: str = "delay",
                 quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        self.event = event
        self.field = field
        self.quantiles = [float(q) for q in quantiles]
        self.values: List[float] = []

    def config(self) -> Dict[str, Any]:
        return {"event": self.event, "field": self.field,
                "quantiles": list(self.quantiles)}

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != self.event:
            return
        value = event.get(self.field)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.values.append(float(value))

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, EcdfAnalyzer)
        self.values.extend(other.values)

    def finalize(self) -> Dict[str, Any]:
        if not self.values:
            return {"count": 0}
        ecdf = ECDF(self.values)
        return {
            "count": len(self.values),
            "min": ecdf.min,
            "max": ecdf.max,
            "quantiles": {f"{q:g}": ecdf.quantile(q) for q in self.quantiles},
        }

    def state_dict(self) -> Dict[str, Any]:
        return {"values": list(self.values)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.values = list(state.get("values") or [])


@register_analyzer
class OverlapAnalyzer(Analyzer):
    """Figure 4: the prober-IP set, optionally Venn'd against history.

    Collects distinct probe source addresses in first-seen order.  With
    ``synthesize=True`` and enough addresses to plant the overlaps,
    ``finalize`` regenerates the historical (Dunna, Ensafi) sets from
    the configured region counts and reports the Venn regions.
    """

    kind = "overlap"

    def __init__(self, synthesize: bool = False, seed: int = 0,
                 regions: Optional[Mapping[str, int]] = None) -> None:
        self.synthesize = bool(synthesize)
        self.seed = int(seed)
        self.regions = dict(regions) if regions else None
        self.ips: List[str] = []
        self._seen: Set[str] = set()

    def config(self) -> Dict[str, Any]:
        return {"synthesize": self.synthesize, "seed": self.seed,
                "regions": self.regions}

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "probe":
            return
        ip = event["src_ip"]
        if ip not in self._seen:
            self._seen.add(ip)
            self.ips.append(ip)

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, OverlapAnalyzer)
        for ip in other.ips:
            if ip not in self._seen:
                self._seen.add(ip)
                self.ips.append(ip)

    def finalize(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"unique_ips": len(self.ips)}
        if self.synthesize:
            regions = dict(self.regions or PAPER_FIG4_REGIONS)
            need = regions["ss_d"] + regions["ss_e"] + regions["ss_d_e"]
            if len(self.ips) >= need:
                dunna, ensafi = synthesize_historical_sets(
                    self.ips, random.Random(self.seed), regions)
                out["venn"] = venn3(set(self.ips), dunna, ensafi)
        return out

    def state_dict(self) -> Dict[str, Any]:
        return {"ips": list(self.ips)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.ips = list(state.get("ips") or [])
        self._seen = set(self.ips)


@register_analyzer
class ProberFingerprint(Analyzer):
    """§3.4 fingerprints from the probe stream: TSval processes and ports."""

    kind = "fingerprint"

    def __init__(self, rates: Sequence[float] = (250.0, 1000.0, 1009.0)) -> None:
        self.rates = [float(r) for r in rates]
        self.points: List[List[float]] = []   # [time, tsval]
        self.ports: List[int] = []

    def config(self) -> Dict[str, Any]:
        return {"rates": list(self.rates)}

    def observe(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "probe":
            return
        self.points.append([float(event["time"]), int(event["tsval"])])
        self.ports.append(int(event["src_port"]))

    def merge(self, other: Analyzer) -> None:
        self._check_mergeable(other)
        assert isinstance(other, ProberFingerprint)
        self.points.extend(other.points)
        self.ports.extend(other.ports)

    def finalize(self) -> Dict[str, Any]:
        clusters = cluster_tsval_sequences(
            [(t, int(v)) for t, v in self.points], rates=self.rates)
        return {
            "points": len(self.points),
            "clusters": [{"rate_hz": c.rate_hz, "size": c.size}
                         for c in clusters],
            "ports": port_statistics(self.ports) if self.ports else None,
        }

    def state_dict(self) -> Dict[str, Any]:
        return {"points": [list(p) for p in self.points],
                "ports": list(self.ports)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.points = [list(p) for p in state.get("points") or []]
        self.ports = list(state.get("ports") or [])
