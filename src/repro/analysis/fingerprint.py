"""Prober fingerprinting (§3.4): TSval processes, ports, TTL, IP ID.

The headline result (Figure 6): although probes come from thousands of
addresses, their TCP timestamps fall on a handful of shared linear
sequences — evidence of centralized control.  We recover those sequences
by clustering (time, tsval) points under candidate clock rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TsvalCluster", "cluster_tsval_sequences", "port_statistics",
           "ttl_statistics", "ip_id_statistics"]

_CANDIDATE_RATES = (250.0, 1000.0, 1009.0)
_WRAP = 1 << 32


@dataclass
class TsvalCluster:
    """One recovered TSval process."""

    rate_hz: float
    offset: float  # tsval at time 0 (mod 2^32)
    points: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.points)

    def measured_rate(self) -> Optional[float]:
        """Least-squares slope over the cluster's own points."""
        if len(self.points) < 2:
            return None
        ordered = sorted(self.points)
        t0 = ordered[0][0]
        xs = [t - t0 for t, _ in ordered]
        # Unwrap sequentially: consecutive deltas are assumed < 2^31,
        # which holds whenever inter-probe gaps stay under ~2^31/rate
        # seconds (weeks, for the rates in play).  This survives total
        # spans far beyond a single wraparound.
        ys = [0]
        for (_, prev), (_, curr) in zip(ordered, ordered[1:]):
            delta = ((curr - prev + _WRAP // 2) % _WRAP) - _WRAP // 2
            ys.append(ys[-1] + delta)
        n = len(xs)
        sx, sy = sum(xs), sum(ys)
        sxx = sum(x * x for x in xs)
        sxy = sum(x * y for x, y in zip(xs, ys))
        denom = n * sxx - sx * sx
        if denom == 0:
            return None
        return (n * sxy - sx * sy) / denom


def cluster_tsval_sequences(
    points: Sequence[Tuple[float, int]],
    rates: Sequence[float] = _CANDIDATE_RATES,
    tolerance: float = 5000.0,
) -> List[TsvalCluster]:
    """Group (time, tsval) observations into shared linear sequences.

    Along one process's sequence at clock rate ``r``, the *intercept*
    ``(tsval - r*t) mod 2^32`` is constant (and invariant under TSval
    wraparound).  For each candidate rate in turn, points whose
    intercepts agree within ``tolerance`` ticks form a cluster; clustered
    points are removed before trying the next rate.  Two processes with
    near-identical intercepts merge — hence the paper's careful
    "at least seven" phrasing.  Each cluster's true rate is then
    re-estimated from its own points and relabeled to the closest
    candidate.
    """
    remaining = list(sorted(points))
    clusters: List[TsvalCluster] = []
    for rate in rates:
        if not remaining:
            break
        items = sorted(
            (((tsval - rate * t) % _WRAP), t, tsval) for t, tsval in remaining
        )
        groups: List[List[Tuple[float, float, int]]] = []
        current: List[Tuple[float, float, int]] = []
        for item in items:
            if current and item[0] - current[0][0] > tolerance:
                groups.append(current)
                current = []
            current.append(item)
        if current:
            groups.append(current)
        # Intercepts live on a circle: merge the first and last groups if
        # they meet across the 2^32 boundary.
        if len(groups) > 1 and (groups[0][0][0] + _WRAP - groups[-1][0][0]) <= tolerance:
            groups[0] = groups.pop() + groups[0]
        claimed = set()
        for group in groups:
            if len(group) < 2:
                continue
            cluster = TsvalCluster(
                rate_hz=rate,
                offset=group[0][0],
                points=[(t, tsval) for _, t, tsval in sorted(group, key=lambda g: g[1])],
            )
            clusters.append(cluster)
            claimed.update((t, tsval) for _, t, tsval in group)
        remaining = [p for p in remaining if p not in claimed]
    for t, tsval in remaining:  # unmatched singletons
        clusters.append(TsvalCluster(rate_hz=rates[0],
                                     offset=(tsval - rates[0] * t) % _WRAP,
                                     points=[(t, tsval)]))
    # Relabel each cluster with the candidate rate closest to its own slope.
    for cluster in clusters:
        measured = cluster.measured_rate()
        if measured is not None and measured > 0:
            cluster.rate_hz = min(rates, key=lambda r: abs(r - measured))
    return sorted(clusters, key=lambda c: -c.size)


def port_statistics(ports: Sequence[int]) -> Dict[str, float]:
    """Figure 5 summary: share in the Linux default range, min, max."""
    if not ports:
        raise ValueError("no ports to analyze")
    in_linux = sum(1 for p in ports if 32768 <= p <= 60999)
    below_1024 = sum(1 for p in ports if p < 1024)
    return {
        "count": len(ports),
        "linux_range_share": in_linux / len(ports),
        "below_1024": below_1024,
        "min": min(ports),
        "max": max(ports),
    }


def ttl_statistics(ttls: Sequence[int]) -> Dict[str, int]:
    if not ttls:
        raise ValueError("no TTLs to analyze")
    return {"min": min(ttls), "max": max(ttls), "count": len(ttls)}


def ip_id_statistics(ip_ids: Sequence[int]) -> Dict[str, float]:
    """'No clear pattern' check: distinct fraction and serial correlation."""
    if len(ip_ids) < 2:
        raise ValueError("need at least two IP IDs")
    n = len(ip_ids)
    distinct = len(set(ip_ids)) / n
    mean = sum(ip_ids) / n
    num = sum((a - mean) * (b - mean) for a, b in zip(ip_ids, ip_ids[1:]))
    den = sum((a - mean) ** 2 for a in ip_ids)
    autocorr = num / den if den else 0.0
    return {"count": n, "distinct_fraction": distinct, "lag1_autocorr": autocorr}
