"""Measurement analysis: probe classification, fingerprinting, statistics."""

from .classify import ObservedProbe, classify_payload, extract_probes
from .fingerprint import (
    TsvalCluster,
    cluster_tsval_sequences,
    ip_id_statistics,
    port_statistics,
    ttl_statistics,
)
from .overlap import PAPER_FIG4_REGIONS, synthesize_historical_sets, venn3
from .report import banner, render_cdf_points, render_histogram, render_table
from .stats import ECDF, probes_per_ip, tally, top_n

__all__ = [
    "ECDF",
    "ObservedProbe",
    "PAPER_FIG4_REGIONS",
    "TsvalCluster",
    "banner",
    "classify_payload",
    "cluster_tsval_sequences",
    "extract_probes",
    "ip_id_statistics",
    "port_statistics",
    "probes_per_ip",
    "render_cdf_points",
    "render_histogram",
    "render_table",
    "synthesize_historical_sets",
    "tally",
    "top_n",
    "ttl_statistics",
    "venn3",
]
