"""Measurement-side probe classification (the method behind §3.2).

Given a server-side packet capture and the set of the experimenter's own
client endpoints, reconstruct which inbound connections were probes and
type them R1–R6 / NR1–NR3 by diffing their first payload against the
recorded legitimate payloads — exactly how the paper's authors decided
"replay with byte 0 changed" etc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..gfw.probes import NR1_LENGTHS, NR2_LENGTH, NR3_LENGTHS, ProbeType
from ..net.capture import Capture

__all__ = ["ObservedProbe", "classify_payload", "extract_probes"]

# Offset-set signatures for the byte-changed replay types.
_SIGNATURES: List[Tuple[str, Set[int]]] = [
    (ProbeType.R2, {0}),
    (ProbeType.R3, set(range(8)) | {62, 63}),
    (ProbeType.R4, {16}),
    (ProbeType.R5, {6, 16}),
    (ProbeType.R6, set(range(16, 33))),
]


@dataclass
class ObservedProbe:
    """One probe connection reconstructed from a capture."""

    time: float
    src_ip: str
    src_port: int
    dst_port: int
    payload: bytes
    probe_type: str
    matched_payload: Optional[bytes] = None  # the legit payload it replays
    syn_tsval: Optional[int] = None
    syn_ttl: Optional[int] = None

    @property
    def is_replay(self) -> bool:
        return self.probe_type.startswith("R")


def classify_payload(payload: bytes,
                     legit_payloads: Sequence[bytes]) -> Tuple[str, Optional[bytes]]:
    """Type one probe payload against the recorded legitimate payloads."""
    by_len: Dict[int, List[bytes]] = {}
    for lp in legit_payloads:
        by_len.setdefault(len(lp), []).append(lp)
    for candidate in by_len.get(len(payload), ()):
        if candidate == payload:
            return ProbeType.R1, candidate
        diff = {i for i, (a, b) in enumerate(zip(payload, candidate)) if a != b}
        for probe_type, signature in _SIGNATURES:
            effective = {off for off in signature if off < len(payload)}
            if diff and diff <= effective:
                return probe_type, candidate
    if len(payload) in NR1_LENGTHS:
        return ProbeType.NR1, None
    if len(payload) == NR2_LENGTH:
        return ProbeType.NR2, None
    if len(payload) in NR3_LENGTHS:
        return ProbeType.NR3, None
    return "UNKNOWN", None


def extract_probes(
    capture: Capture,
    server_port: int,
    client_ips: Iterable[str],
    legit_payloads: Optional[Sequence[bytes]] = None,
) -> List[ObservedProbe]:
    """Pull probe connections out of a server-side capture.

    A probe is any inbound connection to ``server_port`` from an address
    other than the experimenter's own clients.  ``legit_payloads``
    defaults to the first payloads the clients themselves sent.
    """
    clients = set(client_ips)
    if legit_payloads is None:
        legit_payloads = [
            bytes(rec.segment.payload)
            for rec in capture.received()
            if rec.segment.is_data
            and rec.segment.dst_port == server_port
            and rec.segment.src_ip in clients
        ]
    # Collect per-connection SYN metadata and first payload.
    syn_meta: Dict[Tuple[str, int], Tuple[float, Optional[int], Optional[int]]] = {}
    first_payload: Dict[Tuple[str, int], Tuple[float, bytes]] = {}
    for rec in capture.received():
        seg = rec.segment
        if seg.dst_port != server_port or seg.src_ip in clients:
            continue
        key = (seg.src_ip, seg.src_port)
        if seg.is_syn and key not in syn_meta:
            syn_meta[key] = (rec.time, seg.tsval, seg.ttl)
        elif seg.is_data and key not in first_payload:
            first_payload[key] = (rec.time, bytes(seg.payload))

    probes: List[ObservedProbe] = []
    for key, (time, payload) in sorted(first_payload.items(), key=lambda kv: kv[1][0]):
        probe_type, matched = classify_payload(payload, legit_payloads)
        meta = syn_meta.get(key)
        probes.append(ObservedProbe(
            time=time,
            src_ip=key[0],
            src_port=key[1],
            dst_port=server_port,
            payload=payload,
            probe_type=probe_type,
            matched_payload=matched,
            syn_tsval=meta[1] if meta else None,
            syn_ttl=meta[2] if meta else None,
        ))
    return probes
