"""Prober-dataset overlap (Figure 4).

The paper compares its 12,300 prober IPs with two earlier datasets —
934 addresses probing Tor in 2018 (Dunna et al.) and ~22,000 addresses
from 2010–2015 (Ensafi et al.) — and finds only slight overlap,
consistent with high churn in the prober pool.  The Venn region counts
implied by the figure:

* Shadowsocks only: 12,128;  SS∩Ensafi: 167;  SS∩Dunna: 5
* Dunna only: 895;  Dunna∩Ensafi: 34;  triple: 0

We regenerate historical datasets with those overlap properties from
the same AS address pools, so the figure can be reproduced end-to-end.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Set, Tuple

from ..net.asdb import ASDatabase

__all__ = ["PAPER_FIG4_REGIONS", "venn3", "synthesize_historical_sets"]

# Region counts implied by Figure 4 (sets: SS = this paper, D = Dunna 2018,
# E = Ensafi 2015).
PAPER_FIG4_REGIONS: Dict[str, int] = {
    "ss_only": 12128,
    "d_only": 895,
    "e_only": 21167,
    "ss_d": 5,
    "ss_e": 167,
    "d_e": 34,
    "ss_d_e": 0,
}


def venn3(ss: Set[str], d: Set[str], e: Set[str]) -> Dict[str, int]:
    """Three-set Venn region sizes, keyed like PAPER_FIG4_REGIONS."""
    triple = ss & d & e
    return {
        "ss_only": len(ss - d - e),
        "d_only": len(d - ss - e),
        "e_only": len(e - ss - d),
        "ss_d": len((ss & d) - e),
        "ss_e": len((ss & e) - d),
        "d_e": len((d & e) - ss),
        "ss_d_e": len(triple),
    }


def synthesize_historical_sets(
    current_ips: Iterable[str],
    rng: random.Random,
    regions: Dict[str, int] = None,
) -> Tuple[Set[str], Set[str]]:
    """Build (Dunna-2018, Ensafi-2015) sets with the target overlaps.

    The historical sets draw fresh addresses from the same AS pools
    (prober infrastructure churns *within* the same networks), then the
    exact overlap counts are planted from the current set.
    """
    regions = dict(regions or PAPER_FIG4_REGIONS)
    current = list(dict.fromkeys(current_ips))  # stable de-dup
    need_from_current = regions["ss_d"] + regions["ss_e"] + regions["ss_d_e"]
    if len(current) < need_from_current:
        raise ValueError(
            f"need at least {need_from_current} current IPs, got {len(current)}"
        )
    picked = rng.sample(current, need_from_current)
    idx = 0
    ss_d = set(picked[idx : idx + regions["ss_d"]]); idx += regions["ss_d"]
    ss_e = set(picked[idx : idx + regions["ss_e"]]); idx += regions["ss_e"]
    ss_d_e = set(picked[idx : idx + regions["ss_d_e"]])

    asdb = ASDatabase()
    current_set = set(current)

    def fresh(count: int, avoid: Set[str]) -> Set[str]:
        out: Set[str] = set()
        while len(out) < count:
            ip = asdb.sample_ip(rng)
            if ip not in avoid and ip not in out and ip not in current_set:
                out.add(ip)
        return out

    d_e = fresh(regions["d_e"], set())
    d_only = fresh(regions["d_only"], d_e)
    e_only = fresh(regions["e_only"], d_e | d_only)

    dunna = ss_d | ss_d_e | d_e | d_only
    ensafi = ss_e | ss_d_e | d_e | e_only
    return dunna, ensafi
