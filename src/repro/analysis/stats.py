"""Small statistics helpers shared by the analysis and the benchmarks."""

from __future__ import annotations

import bisect
from collections import Counter
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

__all__ = ["ECDF", "tally", "top_n", "probes_per_ip"]

T = TypeVar("T")


class ECDF:
    """Empirical CDF with interpolation-free step semantics."""

    def __init__(self, values: Iterable[float]):
        self.values = sorted(values)
        if not self.values:
            raise ValueError("ECDF needs at least one value")

    def __call__(self, x: float) -> float:
        return bisect.bisect_right(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        if q == 1.0:
            return self.values[-1]
        index = int(q * len(self.values))
        return self.values[min(index, len(self.values) - 1)]

    @property
    def min(self) -> float:
        return self.values[0]

    @property
    def max(self) -> float:
        return self.values[-1]

    def sample_points(self, xs: Sequence[float]) -> List[Tuple[float, float]]:
        return [(x, self(x)) for x in xs]


def tally(items: Iterable[T], key: Callable[[T], object] = lambda x: x) -> Counter:
    """Count items by a key function."""
    counter: Counter = Counter()
    for item in items:
        counter[key(item)] += 1
    return counter


def top_n(counter: Dict, n: int) -> List[Tuple[object, int]]:
    return Counter(counter).most_common(n)


def probes_per_ip(probe_sources: Iterable[str]) -> Counter:
    """Figure 3's underlying tally: probes sent per source address."""
    return tally(probe_sources)
