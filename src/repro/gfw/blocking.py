"""The GFW's blocking module (§6).

Observed behaviour encoded here:

* blocking is **by port or by whole IP** (both occurred);
* only the **server-to-client direction** is dropped (null routing);
* blocking is **rare** relative to probing — the paper saw only 3 of 63
  vantage points blocked, and offers two hypotheses: a *human-gated*
  decision (more blocking during politically sensitive periods) and an
  *implementation-dependent* one (all three blocked servers ran
  ShadowsocksR or Shadowsocks-python);
* **no periodic recheck**: one server was unblocked more than a week
  later without receiving any probes first.

Both hypotheses are modeled and can be toggled for ablation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .prober import ProbeRecord, Reaction
from .scheduler import ServerProbeState

__all__ = ["BlockingPolicy", "BlockEvent", "BlockingModule",
           "SENSITIVE_PERIODS_2019"]

# The politically sensitive windows §2.2 and §6 associate with blocking
# waves, as day-of-year offsets (in seconds) for experiments that anchor
# their clock to Jan 1: the Tiananmen anniversary (Jun 4), the PRC 70th
# anniversary (Oct 1), and the 4th Plenary Session (Oct 28 - 31, 2019).
_DAY = 86_400.0
SENSITIVE_PERIODS_2019 = [
    (154 * _DAY, 157 * _DAY),   # around June 4
    (273 * _DAY, 277 * _DAY),   # around October 1
    (300 * _DAY, 304 * _DAY),   # 4th Plenary Session
]


@dataclass
class BlockingPolicy:
    human_gated: bool = True
    # [start, end) windows of simulation time during which the human
    # operators act (politically sensitive periods).
    sensitive_periods: List[Tuple[float, float]] = field(default_factory=list)
    # Per-confirmation probability that a listed server is actually blocked
    # when the gate is open.  Low: few probed servers ever get blocked.
    block_probability: float = 0.05
    block_by_ip_probability: float = 0.5
    # Unblock after roughly this long, without rechecking.
    unblock_after: float = 8 * 24 * 3600.0
    unblock_jitter: float = 4 * 24 * 3600.0
    # Evidence thresholds for putting a server on the candidate list.
    # Statistical (RST/FIN-ACK pattern) evidence accumulates slowly — the
    # GFW needs *many* probes to be confident (§5.2.2, §6) — while a
    # replay answered with data is near-conclusive and confirms fast
    # (the implementation-vulnerability hypothesis for why the blocked
    # servers all ran ShadowsocksR / Shadowsocks-python).
    min_confirming_reactions: int = 40
    fast_confirm_reactions: int = 2


@dataclass
class BlockEvent:
    time: float
    ip: str
    port: Optional[int]  # None = blocked by IP
    unblock_time: float


class BlockingModule:
    """Maintains the blocklist and decides when to add to it."""

    def __init__(self, sim, rng: Optional[random.Random] = None,
                 policy: Optional[BlockingPolicy] = None):
        self.sim = sim
        self.rng = rng or random.Random(0xB10C)
        self.policy = policy or BlockingPolicy()
        self._blocked_ports: Dict[Tuple[str, int], float] = {}  # -> unblock time
        self._blocked_ips: Dict[str, float] = {}
        self.events: List[BlockEvent] = []
        # Per-candidate evidence: replay probes answered with data, and
        # "distinctive" error reactions (RST / server-first FIN-ACK).
        self.candidates: Dict[Tuple[str, int], Dict[str, int]] = {}

    # ------------------------------------------------------------ decisions

    def gate_open(self, now: float) -> bool:
        if not self.policy.human_gated:
            return True
        return any(start <= now < end for start, end in self.policy.sensitive_periods)

    def consider(self, state: ServerProbeState, record: ProbeRecord) -> None:
        """Feed one probe result into the evidence model.

        A server is confirmable when it *both* answers replays with data
        and shows distinctive error reactions to other probes — the
        combination only replay-vulnerable, RST-on-error implementations
        (ShadowsocksR, Shadowsocks-python, old Outline) exhibit.  A
        server whose every error is a timeout looks like any silent TCP
        service and needs an implausible volume of statistical evidence,
        which is the paper's hypothesis for why its Outline and libev
        servers were intensively probed yet rarely blocked.
        """
        key = (state.ip, state.port)
        if self.is_blocked(state.ip, state.port):
            return
        evidence = self.candidates.setdefault(key, {"replay_data": 0, "distinctive": 0})
        if record.probe.is_replay and record.reaction == Reaction.DATA:
            evidence["replay_data"] += 1
        elif record.reaction in (Reaction.RST, Reaction.FINACK):
            evidence["distinctive"] += 1
        confirmed = (
            evidence["replay_data"] >= 1
            and evidence["distinctive"] >= self.policy.fast_confirm_reactions
        ) or evidence["distinctive"] >= self.policy.min_confirming_reactions
        if confirmed:
            self._maybe_block(state)

    def _maybe_block(self, state: ServerProbeState) -> None:
        now = self.sim.now
        if not self.gate_open(now):
            return
        if self.rng.random() >= self.policy.block_probability:
            return
        self.block(state.ip, state.port)

    def block(self, ip: str, port: Optional[int] = None,
              by_ip: Optional[bool] = None) -> BlockEvent:
        """Add a block rule (used by decisions and by experiments directly)."""
        now = self.sim.now
        if by_ip is None:
            by_ip = self.rng.random() < self.policy.block_by_ip_probability
        unblock_time = now + self.policy.unblock_after + self.rng.uniform(
            0, self.policy.unblock_jitter
        )
        if by_ip or port is None:
            self._blocked_ips[ip] = unblock_time
            event = BlockEvent(now, ip, None, unblock_time)
        else:
            self._blocked_ports[(ip, port)] = unblock_time
            event = BlockEvent(now, ip, port, unblock_time)
        self.events.append(event)
        bus = self.sim.bus
        bus.incr("gfw.block.applied")
        if bus.wants_records:
            bus.emit("block", {
                "time": event.time,
                "ip": event.ip,
                "port": event.port,
                "unblock_time": event.unblock_time,
            })
        self.sim.schedule(unblock_time - now, self._unblock, event)
        return event

    def _unblock(self, event: BlockEvent) -> None:
        # No recheck probes: the entry just lapses (§6).
        if event.port is None:
            self._blocked_ips.pop(event.ip, None)
        else:
            self._blocked_ports.pop((event.ip, event.port), None)

    # --------------------------------------------------------------- lookup

    def is_blocked(self, ip: str, port: Optional[int] = None) -> bool:
        if ip in self._blocked_ips:
            return True
        return port is not None and (ip, port) in self._blocked_ports

    def should_drop(self, seg) -> bool:
        """Unidirectional null-routing: drop the server->client direction.

        Runs once per segment at the firewall, so the :meth:`is_blocked`
        delegation is inlined (two dict membership probes).
        """
        return (seg.src_ip in self._blocked_ips
                or (seg.src_ip, seg.src_port) in self._blocked_ports)

    @property
    def blocked_count(self) -> int:
        return len(self._blocked_ips) + len(self._blocked_ports)
