"""Alternative passive detectors from the related work (§8).

The paper situates the GFW's classifier among published proof-of-concept
detectors; two recurring designs are implemented here for comparison:

* :class:`EntropyClassifier` — flag a connection if the per-byte entropy
  of its first data packet exceeds a threshold (Zhixin Wang's attack and
  the sssniff tools);
* :class:`LengthDistributionClassifier` — flag a connection whose
  first-packet length falls where the *target* protocol's length
  distribution concentrates relative to background traffic (Madeye's
  sssniff used packet-length distributions).

Both are *trainable* from labeled examples and expose the same
``flag(payload) -> bool`` interface, so they can be swapped into
evaluations against the paper's hand-built detector.  An evaluation
helper computes precision/recall over labeled payload sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .entropy import shannon_entropy

__all__ = ["EntropyClassifier", "LengthDistributionClassifier",
           "DetectorEvaluation", "evaluate_detector"]


class EntropyClassifier:
    """Threshold on first-packet entropy.

    ``fit`` picks the threshold maximizing balanced accuracy over the
    training sets; or construct with an explicit ``threshold``.
    """

    def __init__(self, threshold: float = 7.0, min_length: int = 16):
        self.threshold = threshold
        # Entropy of very short payloads is meaninglessly low; skip them.
        self.min_length = min_length

    def fit(self, positives: Sequence[bytes], negatives: Sequence[bytes]) -> "EntropyClassifier":
        # Inclusive upper bound: 8.0 bits/byte is a legal threshold (a
        # grid stopping at 7.9 could never select it, so corpora whose
        # negatives sit in [7.9, 8.0) were unseparable).
        candidates = [e / 10.0 for e in range(10, 81)]
        best, best_score = self.threshold, -1.0
        pos = [shannon_entropy(p) for p in positives if len(p) >= self.min_length]
        neg = [shannon_entropy(p) for p in negatives if len(p) >= self.min_length]
        if not pos or not neg:
            raise ValueError("need non-trivial positive and negative samples")
        for threshold in candidates:
            tpr = sum(1 for e in pos if e >= threshold) / len(pos)
            tnr = sum(1 for e in neg if e < threshold) / len(neg)
            score = (tpr + tnr) / 2
            if score > best_score:
                best, best_score = threshold, score
        self.threshold = best
        return self

    def flag(self, payload: bytes) -> bool:
        if len(payload) < self.min_length:
            return False
        return shannon_entropy(payload) >= self.threshold


class LengthDistributionClassifier:
    """Histogram likelihood-ratio test on the first-packet length."""

    def __init__(self, bin_width: int = 32, ratio_threshold: float = 1.0,
                 smoothing: float = 1.0):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.ratio_threshold = ratio_threshold
        self.smoothing = smoothing
        self._pos_hist: Dict[int, float] = {}
        self._neg_hist: Dict[int, float] = {}
        self._fitted = False

    def _bin(self, length: int) -> int:
        return length // self.bin_width

    def fit(self, positives: Sequence[bytes], negatives: Sequence[bytes]
            ) -> "LengthDistributionClassifier":
        if not positives or not negatives:
            raise ValueError("need positive and negative samples")
        for hist, samples in ((self._pos_hist, positives),
                              (self._neg_hist, negatives)):
            hist.clear()
            for payload in samples:
                b = self._bin(len(payload))
                hist[b] = hist.get(b, 0.0) + 1.0
            total = sum(hist.values())
            for b in hist:
                hist[b] /= total
        self._fitted = True
        return self

    def likelihood_ratio(self, payload: bytes) -> float:
        if not self._fitted:
            raise RuntimeError("call fit() first")
        b = self._bin(len(payload))
        # Laplace-style smoothing against empty bins.
        eps = self.smoothing / 1000.0
        p = self._pos_hist.get(b, 0.0) + eps
        q = self._neg_hist.get(b, 0.0) + eps
        return p / q

    def flag(self, payload: bytes) -> bool:
        return self.likelihood_ratio(payload) > self.ratio_threshold


@dataclass
class DetectorEvaluation:
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def evaluate_detector(flag, positives: Iterable[bytes],
                      negatives: Iterable[bytes]) -> DetectorEvaluation:
    """Score any ``flag(payload) -> bool`` callable on labeled payloads."""
    tp = fn = fp = tn = 0
    for payload in positives:
        if flag(payload):
            tp += 1
        else:
            fn += 1
    for payload in negatives:
        if flag(payload):
            fp += 1
        else:
            tn += 1
    return DetectorEvaluation(tp, fp, fn, tn)
