"""Reaction layer: what the censor *does* about a detector verdict.

The third stage of the sensor → detector → reaction pipeline.  The
orchestrator hands this layer typed :class:`Verdict` records (never raw
detector internals); the policy turns flagged verdicts into staged
active probing (:class:`~repro.gfw.scheduler.ProbeScheduler`) and feeds
probe results into the :class:`~repro.gfw.blocking.BlockingModule`'s
evidence model — the ad-hoc cross-wiring the monolithic firewall used to
do inline.

On the instrumentation bus a flagged verdict emits two structured
records: the legacy ``flow.flagged`` event (field-compatible with every
existing analyzer, keeping streaming analysis byte-identical) and a
richer ``verdict`` record carrying the deciding stage and its score,
consumed by the ``verdict_records`` analyzer for detector-ensemble
ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from .blocking import BlockingModule, BlockingPolicy
from .flowtable import FlowState
from .prober import ProbeRecord
from .scheduler import ProbeScheduler, ServerProbeState

__all__ = ["ReactionPolicy", "Verdict"]


@dataclass(frozen=True)
class Verdict:
    """One detector decision on one feature packet, as a typed record."""

    time: float
    initiator_ip: str
    initiator_port: int
    responder_ip: str
    responder_port: int
    length: int          # feature-packet payload length
    flagged: bool
    score: float         # probability / likelihood behind the decision
    stage: str           # kind of the deciding detector stage
    # Protocol classification from the deciding stage; selects the probing
    # playbook (None -> the scheduler's default, i.e. "shadowsocks").
    protocol: Optional[str] = None


class ReactionPolicy:
    """Consumes verdicts and probe results; owns probing and blocking."""

    def __init__(
        self,
        sim,
        scheduler: ProbeScheduler,
        blocking: BlockingModule,
        *,
        flag_hook: Optional[Callable[[FlowState, bytes], None]] = None,
    ):
        self.sim = sim
        self.scheduler = scheduler
        self.blocking = blocking
        # Hook for tests/experiments, invoked on every flagged verdict
        # between record emission and probe scheduling (the monolith's
        # ``on_flag`` call point).
        self.flag_hook = flag_hook or (lambda flow, payload: None)
        self.scheduler.on_probe_result = self._on_probe_result

    # ------------------------------------------------------------- verdicts

    def on_verdict(self, verdict: Verdict, flow: FlowState, payload: bytes) -> None:
        """React to a flagged feature packet: record it, then probe."""
        if not verdict.flagged:
            return
        bus = self.sim.bus
        if bus.wants_records:
            bus.emit("flow.flagged", {
                "time": verdict.time,
                "initiator_ip": verdict.initiator_ip,
                "initiator_port": verdict.initiator_port,
                "responder_ip": verdict.responder_ip,
                "responder_port": verdict.responder_port,
                "length": verdict.length,
            })
            bus.emit("verdict", {
                "time": verdict.time,
                "initiator_ip": verdict.initiator_ip,
                "initiator_port": verdict.initiator_port,
                "responder_ip": verdict.responder_ip,
                "responder_port": verdict.responder_port,
                "length": verdict.length,
                "score": verdict.score,
                "stage": verdict.stage,
                # Only non-default classifications widen the record: default
                # runs keep their byte-identical "verdict" payloads.
                **({"protocol": verdict.protocol} if verdict.protocol else {}),
            })
        self.flag_hook(flow, payload)
        self.scheduler.on_flagged_connection(
            verdict.responder_ip, verdict.responder_port, payload,
            protocol=verdict.protocol,
        )

    def on_server_data(self, ip: str, port: int) -> None:
        """Passively observed responder data: the endpoint serves something."""
        self.scheduler.note_server_data(ip, port)

    # --------------------------------------------------------------- probes

    def _on_probe_result(self, state: ServerProbeState, record: ProbeRecord) -> None:
        # The endpoint's protocol playbook picks the escalation timeline
        # (the default delegates to BlockingModule.consider, the paper's
        # Shadowsocks evidence model).
        behavior = self.scheduler.behavior_for(state.protocol)
        behavior.consider_blocking(state, record, self.blocking)

    # ------------------------------------------------------------- blocking

    def should_drop(self, seg) -> bool:
        return self.blocking.should_drop(seg)

    # ------------------------------------------------------------- builders

    @classmethod
    def default(cls, sim, runner, *, forge, delay_model, rng: random.Random,
                scheduler_config=None,
                blocking_policy: Optional[BlockingPolicy] = None,
                blocking_rng: Optional[random.Random] = None,
                probe_behaviors=None,
                flag_hook=None) -> "ReactionPolicy":
        """The paper's reaction chain: staged prober + gated blocking."""
        scheduler = ProbeScheduler(runner, forge=forge, delay_model=delay_model,
                                   rng=rng, config=scheduler_config,
                                   behaviors=probe_behaviors)
        blocking = BlockingModule(sim, rng=blocking_rng, policy=blocking_policy)
        return cls(sim, scheduler, blocking, flag_hook=flag_hook)
