"""Passive traffic-analysis detector (first data packet length + entropy).

The paper establishes, via the random-data experiments of §4, that the
GFW flags a connection as *suspected Shadowsocks* from the first
data-carrying packet alone, using:

* **payload length** — replays concentrate on 160–700 bytes (max 999)
  with a strong affinity for particular remainders mod 16 (Figure 8:
  remainder 9 in 168–263, remainder 2 in 384–687, both in between);
* **per-byte entropy** — a packet of entropy 7.2 is ≈4× as likely to be
  flagged as one of entropy 3.0, though *every* entropy may be flagged
  (Figure 9).

The detector is generative: it returns a flag probability, which the
firewall samples.  ``base_rate`` calibrates the absolute per-connection
replay ratio (≈0.2% at the most-favoured operating point, per Figure 9's
y-axis); experiments that need more probe volume may scale it up without
distorting the *shape* of either curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from .entropy import shannon_entropy

__all__ = ["DetectorConfig", "PassiveDetector"]


@dataclass
class DetectorConfig:
    """Tunable parameters of the passive classifier."""

    base_rate: float = 0.002      # flag probability at the ideal operating point
    min_length: int = 160         # no replay was ever shorter (Fig 8: min 161)
    max_length: int = 999         # ... or longer than 999 bytes
    core_low: int = 160           # the 160-700 byte sweet spot
    core_high: int = 700
    # Remainder-mod-16 affinity bands (Figure 8).  Real dataclass fields
    # (not class attributes) so they are per-instance, constructor- and
    # ``--set``-overridable, and part of the canonical params identity.
    band1: Tuple[int, int] = (168, 263)   # remainder 9 dominates (72%)
    band2: Tuple[int, int] = (264, 383)   # mixed: 9 (37%) and 2 (32%)
    band3: Tuple[int, int] = (384, 687)   # remainder 2 dominates (96%)
    # Entropy ramp (Figure 9): weight rises ~linearly, 4x from H=3 to H=7.2.
    entropy_low: float = 3.0
    entropy_high: float = 7.2
    entropy_low_weight: float = 0.25
    length_filter: bool = True    # ablation knob
    entropy_filter: bool = True   # ablation knob


class PassiveDetector:
    """Stateless per-packet classifier."""

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config or DetectorConfig()

    # The three reaction weights within each band are chosen to reproduce
    # the measured replay shares: e.g. in band1, 72% of replayed lengths
    # have remainder 9 even though only 1/16 of offered lengths do.

    def length_weight(self, length: int) -> float:
        cfg = self.config
        if not cfg.length_filter:
            return 1.0
        if length < cfg.min_length or length > cfg.max_length:
            return 0.0
        core = 1.0 if length <= cfg.core_high else 0.08
        return core * self._remainder_weight(length)

    def _remainder_weight(self, length: int) -> float:
        cfg = self.config
        r = length % 16
        if cfg.band1[0] <= length <= cfg.band1[1]:
            return 1.0 if r == 9 else 0.026  # 1.0 vs 15*0.026 -> ~72% share
        if cfg.band2[0] <= length <= cfg.band2[1]:
            if r == 9:
                return 1.0
            if r == 2:
                return 0.865  # 37% vs 32% share
            return 0.06
        if cfg.band3[0] <= length <= cfg.band3[1]:
            return 1.0 if r == 2 else 0.0028  # ~96% share
        return 0.4

    def entropy_weight(self, entropy: float) -> float:
        cfg = self.config
        if not cfg.entropy_filter:
            return 1.0
        if entropy <= cfg.entropy_low:
            # Low-entropy packets may still be flagged, just rarely.
            return cfg.entropy_low_weight * max(0.5, entropy / cfg.entropy_low)
        if entropy >= cfg.entropy_high:
            return 1.0
        span = cfg.entropy_high - cfg.entropy_low
        frac = (entropy - cfg.entropy_low) / span
        return cfg.entropy_low_weight + (1.0 - cfg.entropy_low_weight) * frac

    def flag_probability(self, payload: bytes) -> float:
        """Probability that this first data packet draws replay probes."""
        if not payload:
            return 0.0
        return (
            self.config.base_rate
            * self.length_weight(len(payload))
            * self.entropy_weight(shannon_entropy(payload))
        )

    def inspect(self, payload: bytes, rng: random.Random) -> bool:
        """Sample the flag decision for one first data packet."""
        return rng.random() < self.flag_probability(payload)
