"""Execution of individual probes: one TCP connection per probe.

The prober connects from a fleet identity (IP, port, TSval process, TTL),
sends the probe payload, and classifies the server's reaction exactly the
way the paper's prober simulator does:

* ``RST``      — server reset the connection;
* ``FINACK``   — server closed first with FIN/ACK;
* ``DATA``     — server answered with data (the prober then ACKs and
  closes, per §5.3);
* ``TIMEOUT``  — nothing happened before the prober's own timeout
  (the GFW gives up in under 10 s);
* ``UNREACHABLE`` — the SYN went unanswered (e.g. server blocked/down).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from .probes import Probe

__all__ = ["Reaction", "ProbeRecord", "ProberRunner"]


class Reaction:
    RST = "RST"
    FINACK = "FINACK"
    DATA = "DATA"
    TIMEOUT = "TIMEOUT"
    UNREACHABLE = "UNREACHABLE"


@dataclass
class ProbeRecord:
    """Everything the measurement side can know about one probe."""

    probe: Probe
    server_ip: str
    server_port: int
    src_ip: str
    src_port: int
    time_sent: float
    tsval: int
    process_name: str
    trigger_time: Optional[float] = None  # legit connection a replay derives from
    reaction: Optional[str] = None
    response_bytes: int = 0
    time_done: Optional[float] = None

    @property
    def delay(self) -> Optional[float]:
        """Replay delay relative to the triggering legitimate connection."""
        if self.trigger_time is None:
            return None
        return self.time_sent - self.trigger_time

    @property
    def probe_type(self) -> str:
        return self.probe.probe_type


class ProberRunner:
    """Sends probes using fleet identities and records reactions."""

    SYN_TIMEOUT = 12.0

    def __init__(self, fleet, rng: Optional[random.Random] = None):
        self.fleet = fleet
        self.rng = rng or random.Random(0x9B0E)
        self.log: list = []

    @property
    def sim(self):
        return self.fleet.host.sim

    def send_probe(
        self,
        probe: Probe,
        server_ip: str,
        server_port: int,
        *,
        trigger_time: Optional[float] = None,
        on_result: Optional[Callable[[ProbeRecord], None]] = None,
    ) -> ProbeRecord:
        fleet = self.fleet
        src_ip = fleet.pick_ip()
        process = fleet.pick_process()
        timeout = fleet.pick_timeout()

        conn = None
        for _ in range(8):  # retry on the (rare) 4-tuple collision
            src_port = fleet.pick_port()
            try:
                conn = fleet.host.connect(
                    server_ip, server_port,
                    src_ip=src_ip, src_port=src_port,
                    ttl=fleet.config.initial_ttl,
                    tsval_source=process.source(),
                )
                break
            except ValueError:
                continue
        if conn is None:
            raise RuntimeError("could not allocate a prober source port")

        record = ProbeRecord(
            probe=probe,
            server_ip=server_ip,
            server_port=server_port,
            src_ip=src_ip,
            src_port=src_port,
            time_sent=self.sim.now,
            tsval=process.tsval_at(self.sim.now),
            process_name=process.name,
            trigger_time=trigger_time,
        )
        self.log.append(record)
        bus = self.sim.bus
        bus.incr("probe.sent")
        bus.incr(f"probe.type.{probe.probe_type}")
        if trigger_time is not None:
            bus.observe("probe.replay_delay", self.sim.now - trigger_time)
        if bus.wants_records:
            bus.emit("probe", {
                "time": record.time_sent,
                "src_ip": src_ip,
                "src_port": src_port,
                "server_ip": server_ip,
                "server_port": server_port,
                "probe_type": probe.probe_type,
                "is_replay": probe.is_replay,
                "payload": probe.payload,
                "source_payload": probe.source_payload,
                "tsval": record.tsval,
                "process": process.name,
                "trigger_time": trigger_time,
                "delay": record.delay,
            })

        done = False
        probe_timer = None

        def finish(reaction: str) -> None:
            nonlocal done
            if done:
                return
            done = True
            record.reaction = reaction
            record.time_done = self.sim.now
            bus = self.sim.bus
            bus.incr(f"probe.reaction.{reaction}")
            if bus.wants_records:
                bus.emit("probe.result", {
                    "time": record.time_done,
                    "src_ip": record.src_ip,
                    "src_port": record.src_port,
                    "server_ip": record.server_ip,
                    "server_port": record.server_port,
                    "probe_type": record.probe_type,
                    "reaction": reaction,
                    "response_bytes": record.response_bytes,
                })
            for ev in (syn_timer, probe_timer):
                if ev is not None:
                    ev.cancel()
            if on_result is not None:
                on_result(record)

        def on_connected() -> None:
            nonlocal probe_timer
            syn_timer.cancel()
            conn.send(probe.payload)
            probe_timer = self.sim.schedule(timeout, on_timeout)

        def on_data(data: bytes) -> None:
            record.response_bytes += len(data)
            if not done:
                # First response data: ACK then close, per the paper.
                finish(Reaction.DATA)
                conn.close()

        def on_fin() -> None:
            conn.close()
            finish(Reaction.FINACK)

        def on_reset() -> None:
            finish(Reaction.RST)

        def on_timeout() -> None:
            conn.close()
            finish(Reaction.TIMEOUT)

        def on_syn_timeout() -> None:
            conn.abort()
            finish(Reaction.UNREACHABLE)

        conn.on_connected = on_connected
        conn.on_data = on_data
        conn.on_remote_fin = on_fin
        conn.on_reset = on_reset
        syn_timer = self.sim.schedule(self.SYN_TIMEOUT, on_syn_timeout)
        return record
