"""Staged probing driver: generic scheduling + per-protocol playbooks.

The *mechanics* of probing live here — per-server state, probe budget,
delayed firing through the prober fleet, result plumbing.  The
*playbook* (which probes a flagged connection draws, and how the
endpoint escalates through stages) is per-protocol: each flagged flow
carries a protocol classification from the detector, and the scheduler
dispatches to the matching :class:`~repro.gfw.probing.ProbeBehavior`
from the behaviour registry.

The default behaviour is the source paper's Shadowsocks stage model:

* **Stage 1** — a flagged connection draws replay probes: an identical
  replay (R1), often a byte-0-changed replay (R2), sometimes repeated
  many times (payloads were replayed up to 47 times), plus random NR2
  probes of 221 bytes.  Delays follow the Figure 7 distribution.
* **Stage 2** — entered only once the server has *responded with data*
  to a stage-1 replay probe (the replay-vulnerable implementations):
  byte-changed replays R3 and R4 arrive in volume, R5 rarely.  This is
  why Outline (no replay filter then) received R3–R5 and
  Shadowsocks-libev never did.
* **NR1 drip** — servers that are long-term suspects (many flagged
  connections *and* observed to answer their own clients with data)
  receive the NR1 length-trio battery, a few probes per hour rather
  than all at once.

The relative probe-type frequencies reproduce Figure 2 (NR2 ≈ 3× all
NR1 combined) and the Exp 1.a tallies (R1 ≈ 2.5× R2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from .delays import ReplayDelayModel
from .probes import Probe, ProbeForge
from .prober import ProbeRecord, ProberRunner

__all__ = ["SchedulerConfig", "ServerProbeState", "ProbeScheduler"]


@dataclass
class SchedulerConfig:
    # Stage 1.
    r2_probability: float = 0.40          # R2 per flagged connection vs R1's 1.0
    nr2_probability: float = 0.30         # NR2 per flagged connection
    repeat_geometric_p: float = 0.30      # extra replays of the same payload
    max_replays_per_payload: int = 47     # hard cap observed in the wild
    # Stage 2 (after the server responds to a replay).
    stage2_burst_low: int = 8
    stage2_burst_high: int = 24
    stage2_spread_hours: float = 6.0
    r5_probability: float = 0.02          # only two R5s were ever observed
    r6_probability: float = 0.01          # Exp 1.b: 11 replays with bytes 16-32 changed
    # NR1 drip.
    nr1_flag_threshold: int = 10          # long-term suspect cutoff
    # Per flagged connection past the threshold; with a 1-3 probe batch this
    # yields NR2 ~ 3x all NR1 in the long run, the Figure 2 ratio.
    nr1_probability: float = 0.05
    nr1_spread_hours: float = 1.0         # "a few in each hour"
    nr3_probability: float = 0.002        # rare stray lengths
    # §5.3: ~10% of NR2 probes were sent to the same server more than once
    # — consistent with the duplicate-probe replay-filter check.
    nr2_duplicate_probability: float = 0.10
    # Resource bound per server, far above anything the paper observed.
    max_probes_per_server: int = 100_000


@dataclass
class ServerProbeState:
    """Accumulated GFW knowledge about one suspected endpoint."""

    ip: str
    port: int
    flag_count: int = 0
    stage: int = 1
    serves_data: bool = False     # server answered its own clients with data
    probes_sent: int = 0
    replay_responses: int = 0     # replay probes the server answered with data
    recorded_payloads: List[Tuple[float, bytes]] = field(default_factory=list)
    reactions: Dict[str, int] = field(default_factory=dict)
    # Protocol classification from the first verdict that flagged this
    # endpoint (sticky); None until flagged, then e.g. "shadowsocks"/"tor".
    protocol: Optional[str] = None

    def note_reaction(self, record: ProbeRecord) -> None:
        self.reactions[record.reaction] = self.reactions.get(record.reaction, 0) + 1


class ProbeScheduler:
    """Drives the staged probing of every suspected server."""

    MAX_RECORDED_PAYLOADS = 512

    def __init__(
        self,
        runner: ProberRunner,
        forge: Optional[ProbeForge] = None,
        delay_model: Optional[ReplayDelayModel] = None,
        rng: Optional[random.Random] = None,
        config: Optional[SchedulerConfig] = None,
        behaviors: Optional[Mapping[str, Union[str, Mapping[str, Any]]]] = None,
        default_protocol: str = "shadowsocks",
    ):
        self.runner = runner
        self.rng = rng or random.Random(0x5CED)
        self.forge = forge or ProbeForge(self.rng)
        self.delay_model = delay_model or ReplayDelayModel()
        self.config = config or SchedulerConfig()
        self.servers: Dict[Tuple[str, int], ServerProbeState] = {}
        # Per-protocol playbook overrides: protocol name -> behaviour spec.
        # Unlisted protocols resolve to the behaviour registered under their
        # own name (so {"tor": {...params...}} tweaks tor; plain "tor"
        # protocol classifications work with no spec at all).
        self.behavior_specs: Dict[str, Union[str, Mapping[str, Any]]] = dict(
            behaviors or {})
        self.default_protocol = default_protocol
        self._behaviors: Dict[str, Any] = {}
        # Hook for the blocking module: called on every probe result.
        self.on_probe_result: Callable[[ServerProbeState, ProbeRecord], None] = (
            lambda state, record: None
        )

    @property
    def sim(self):
        return self.runner.sim

    def behavior_for(self, protocol: Optional[str]):
        """The probing playbook for a protocol classification (cached)."""
        name = protocol or self.default_protocol
        behavior = self._behaviors.get(name)
        if behavior is None:
            # Lazy import: probing.py imports our dataclasses at module load.
            from .probing import build_behavior

            spec = self.behavior_specs.get(name, name)
            behavior = build_behavior(spec, self)
            self._behaviors[name] = behavior
        return behavior

    def state_for(self, ip: str, port: int) -> ServerProbeState:
        key = (ip, port)
        if key not in self.servers:
            self.servers[key] = ServerProbeState(ip, port)
        return self.servers[key]

    # ------------------------------------------------------------- triggers

    def on_flagged_connection(self, ip: str, port: int, payload: bytes,
                              protocol: Optional[str] = None) -> None:
        """A passively flagged first data packet: start stage-1 probing."""
        state = self.state_for(ip, port)
        state.flag_count += 1
        if state.protocol is None:
            state.protocol = protocol or self.default_protocol
        now = self.sim.now
        if len(state.recorded_payloads) < self.MAX_RECORDED_PAYLOADS:
            state.recorded_payloads.append((now, payload))
        self.behavior_for(state.protocol).on_flagged(state, payload, now)

    def note_server_data(self, ip: str, port: int) -> None:
        """Passively observed server->client data (it serves *something*)."""
        self.state_for(ip, port).serves_data = True

    # ----------------------------------------------------------- scheduling

    def _schedule(self, probe: Probe, state: ServerProbeState, delay: float,
                  trigger_time: Optional[float] = None) -> None:
        if state.probes_sent >= self.config.max_probes_per_server:
            return
        state.probes_sent += 1
        self.sim.schedule(delay, self._fire, probe, state, trigger_time)

    def _fire(self, probe: Probe, state: ServerProbeState,
              trigger_time: Optional[float]) -> None:
        self.runner.send_probe(
            probe, state.ip, state.port,
            trigger_time=trigger_time,
            on_result=lambda record: self._handle_result(state, record),
        )

    # -------------------------------------------------------------- results

    def _handle_result(self, state: ServerProbeState, record: ProbeRecord) -> None:
        state.note_reaction(record)
        self.behavior_for(state.protocol).on_result(state, record)
        self.on_probe_result(state, record)

    # -------------------------------------------- back-compat escape hatches

    def _enter_stage2(self, state: ServerProbeState) -> None:
        """Fire the Shadowsocks stage-2 burst directly (ablation hook)."""
        self.behavior_for(state.protocol)._enter_stage2(state)
