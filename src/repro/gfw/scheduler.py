"""Staged probing logic per suspected server (§4.2, §5).

Stage model inferred by the paper:

* **Stage 1** — a flagged connection draws replay probes: an identical
  replay (R1), often a byte-0-changed replay (R2), sometimes repeated
  many times (payloads were replayed up to 47 times), plus random NR2
  probes of 221 bytes.  Delays follow the Figure 7 distribution.
* **Stage 2** — entered only once the server has *responded with data*
  to a stage-1 replay probe (the replay-vulnerable implementations):
  byte-changed replays R3 and R4 arrive in volume, R5 rarely.  This is
  why Outline (no replay filter then) received R3–R5 and
  Shadowsocks-libev never did.
* **NR1 drip** — servers that are long-term suspects (many flagged
  connections *and* observed to answer their own clients with data)
  receive the NR1 length-trio battery, a few probes per hour rather
  than all at once.

The relative probe-type frequencies reproduce Figure 2 (NR2 ≈ 3× all
NR1 combined) and the Exp 1.a tallies (R1 ≈ 2.5× R2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .delays import ReplayDelayModel
from .probes import Probe, ProbeForge, ProbeType
from .prober import ProbeRecord, ProberRunner, Reaction

__all__ = ["SchedulerConfig", "ServerProbeState", "ProbeScheduler"]


@dataclass
class SchedulerConfig:
    # Stage 1.
    r2_probability: float = 0.40          # R2 per flagged connection vs R1's 1.0
    nr2_probability: float = 0.30         # NR2 per flagged connection
    repeat_geometric_p: float = 0.30      # extra replays of the same payload
    max_replays_per_payload: int = 47     # hard cap observed in the wild
    # Stage 2 (after the server responds to a replay).
    stage2_burst_low: int = 8
    stage2_burst_high: int = 24
    stage2_spread_hours: float = 6.0
    r5_probability: float = 0.02          # only two R5s were ever observed
    r6_probability: float = 0.01          # Exp 1.b: 11 replays with bytes 16-32 changed
    # NR1 drip.
    nr1_flag_threshold: int = 10          # long-term suspect cutoff
    # Per flagged connection past the threshold; with a 1-3 probe batch this
    # yields NR2 ~ 3x all NR1 in the long run, the Figure 2 ratio.
    nr1_probability: float = 0.05
    nr1_spread_hours: float = 1.0         # "a few in each hour"
    nr3_probability: float = 0.002        # rare stray lengths
    # §5.3: ~10% of NR2 probes were sent to the same server more than once
    # — consistent with the duplicate-probe replay-filter check.
    nr2_duplicate_probability: float = 0.10
    # Resource bound per server, far above anything the paper observed.
    max_probes_per_server: int = 100_000


@dataclass
class ServerProbeState:
    """Accumulated GFW knowledge about one suspected endpoint."""

    ip: str
    port: int
    flag_count: int = 0
    stage: int = 1
    serves_data: bool = False     # server answered its own clients with data
    probes_sent: int = 0
    replay_responses: int = 0     # replay probes the server answered with data
    recorded_payloads: List[Tuple[float, bytes]] = field(default_factory=list)
    reactions: Dict[str, int] = field(default_factory=dict)

    def note_reaction(self, record: ProbeRecord) -> None:
        self.reactions[record.reaction] = self.reactions.get(record.reaction, 0) + 1


class ProbeScheduler:
    """Drives the staged probing of every suspected server."""

    MAX_RECORDED_PAYLOADS = 512

    def __init__(
        self,
        runner: ProberRunner,
        forge: Optional[ProbeForge] = None,
        delay_model: Optional[ReplayDelayModel] = None,
        rng: Optional[random.Random] = None,
        config: Optional[SchedulerConfig] = None,
    ):
        self.runner = runner
        self.rng = rng or random.Random(0x5CED)
        self.forge = forge or ProbeForge(self.rng)
        self.delay_model = delay_model or ReplayDelayModel()
        self.config = config or SchedulerConfig()
        self.servers: Dict[Tuple[str, int], ServerProbeState] = {}
        # Hook for the blocking module: called on every probe result.
        self.on_probe_result: Callable[[ServerProbeState, ProbeRecord], None] = (
            lambda state, record: None
        )

    @property
    def sim(self):
        return self.runner.sim

    def state_for(self, ip: str, port: int) -> ServerProbeState:
        key = (ip, port)
        if key not in self.servers:
            self.servers[key] = ServerProbeState(ip, port)
        return self.servers[key]

    # ------------------------------------------------------------- triggers

    def on_flagged_connection(self, ip: str, port: int, payload: bytes) -> None:
        """A passively flagged first data packet: start stage-1 probing."""
        state = self.state_for(ip, port)
        state.flag_count += 1
        now = self.sim.now
        if len(state.recorded_payloads) < self.MAX_RECORDED_PAYLOADS:
            state.recorded_payloads.append((now, payload))

        cfg = self.config
        self._schedule_replays(state, payload, now, ProbeType.R1)
        if self.rng.random() < cfg.r2_probability:
            self._schedule_replays(state, payload, now, ProbeType.R2)
        if self.rng.random() < cfg.nr2_probability:
            nr2 = self.forge.nr2()
            self._schedule(nr2, state, self.delay_model.sample(self.rng))
            if self.rng.random() < cfg.nr2_duplicate_probability:
                # Re-send the *same* payload later: the duplicate-probe
                # replay-filter check of §5.3.
                self._schedule(nr2, state, self.delay_model.sample(self.rng))
        if self.rng.random() < cfg.nr3_probability:
            self._schedule(self.forge.nr3(), state, self.delay_model.sample(self.rng))
        if (
            state.serves_data
            and state.flag_count >= cfg.nr1_flag_threshold
            and self.rng.random() < cfg.nr1_probability
        ):
            # Drip a small NR1 batch over the next hour or so.
            for _ in range(self.rng.randint(1, 3)):
                spread = self.rng.uniform(0, cfg.nr1_spread_hours * 3600)
                self._schedule(self.forge.nr1(), state, spread)

    def note_server_data(self, ip: str, port: int) -> None:
        """Passively observed server->client data (it serves *something*)."""
        self.state_for(ip, port).serves_data = True

    # ----------------------------------------------------------- scheduling

    def _schedule_replays(self, state: ServerProbeState, payload: bytes,
                          trigger_time: float, probe_type: str) -> None:
        cfg = self.config
        repeats = 1
        while (
            repeats < cfg.max_replays_per_payload
            and self.rng.random() < cfg.repeat_geometric_p
        ):
            repeats += 1
        for _ in range(repeats):
            delay = self.delay_model.sample(self.rng)
            probe = self.forge.replay(payload, probe_type)
            self._schedule(probe, state, delay, trigger_time=trigger_time)

    def _schedule(self, probe: Probe, state: ServerProbeState, delay: float,
                  trigger_time: Optional[float] = None) -> None:
        if state.probes_sent >= self.config.max_probes_per_server:
            return
        state.probes_sent += 1
        self.sim.schedule(delay, self._fire, probe, state, trigger_time)

    def _fire(self, probe: Probe, state: ServerProbeState,
              trigger_time: Optional[float]) -> None:
        self.runner.send_probe(
            probe, state.ip, state.port,
            trigger_time=trigger_time,
            on_result=lambda record: self._handle_result(state, record),
        )

    # -------------------------------------------------------------- results

    def _handle_result(self, state: ServerProbeState, record: ProbeRecord) -> None:
        state.note_reaction(record)
        if record.probe.is_replay and record.reaction == Reaction.DATA:
            state.replay_responses += 1
            if state.stage == 1:
                state.stage = 2
                self.sim.bus.incr("scheduler.stage2")
                self._enter_stage2(state)
        self.on_probe_result(state, record)

    def _enter_stage2(self, state: ServerProbeState) -> None:
        """The server answered a replay: unleash R3/R4 (and rarely R5/R6)."""
        cfg = self.config
        if not state.recorded_payloads:
            return
        burst = self.rng.randint(cfg.stage2_burst_low, cfg.stage2_burst_high)
        for _ in range(burst):
            recorded_at, payload = self.rng.choice(state.recorded_payloads)
            roll = self.rng.random()
            if roll < cfg.r5_probability:
                probe_type = ProbeType.R5
            elif roll < cfg.r5_probability + cfg.r6_probability:
                probe_type = ProbeType.R6
            elif roll < 0.5:
                probe_type = ProbeType.R3
            else:
                probe_type = ProbeType.R4
            delay = self.rng.uniform(0, cfg.stage2_spread_hours * 3600)
            self._schedule(self.forge.replay(payload, probe_type), state, delay,
                           trigger_time=recorded_at)
