"""First-class flow table: the GFW's sensor-layer connection state.

Extracted from the :class:`~repro.gfw.firewall.GreatFirewall` monolith so
flow bookkeeping is an independently testable, benchmarkable subsystem.
The table owns

* **flow creation** on border-crossing SYNs, keyed on the canonical
  connection 4-tuple;
* **feature-packet detection** — the first data segment from the
  connection's initiator (the packet the paper's passive classifier
  inspects) and the first responder data (evidence the endpoint serves
  *something*), surfaced through the ``on_first_initiator_data`` /
  ``on_first_responder_data`` callbacks the orchestrator installs;
* **hygiene** — the amortized idle sweep, the hard count cap that
  reclaims the least-recently-seen quartile, and the flag-dedup window
  that stops a retransmitted SYN from re-flagging one connection;
* **per-flow detector scratch state** — :attr:`FlowState.scratch`, a
  lazily allocated dict detector stages may use for stateful
  per-connection features without growing the core flow record.

Counter emissions (``gfw.flow.opened``, ``gfw.flow.evicted``,
``gfw.flow.syn.retransmit``, ``gfw.conn.reflag.suppressed``) keep their
pre-refactor names and firing points, so existing dashboards and cached
result snapshots stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.packet import Flags, Segment
from ..runtime.sharding import flow_key, shard_of

__all__ = ["FlowKey", "FlowState", "FlowTable"]

FlowKey = Tuple[Any, ...]

# Bit masks for the inlined flag tests on the tracking hot path.
_SYN_ACK_MASK = Flags.SYN | Flags.ACK
_FIN_RST_MASK = Flags.FIN | Flags.RST


@dataclass
class FlowState:
    """One tracked border-crossing connection."""

    initiator_ip: str
    initiator_port: int
    responder_ip: str
    responder_port: int
    saw_initiator_data: bool = False
    saw_responder_data: bool = False
    last_seen: float = 0.0
    # Per-flow detector scratch: stages that keep per-connection state
    # (counters, partial reassembly, feature accumulators) store it here.
    # Lazily allocated — stateless stages never pay for the dict.
    scratch: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def scratchpad(self) -> Dict[str, Any]:
        if self.scratch is None:
            self.scratch = {}
        return self.scratch


class FlowTable:
    """Flow creation, eviction, and flag dedup for the censor's sensor."""

    # Amortization period (in tracked segments) for the idle-flow sweep.
    EVICTION_SWEEP_INTERVAL = 4096

    def __init__(
        self,
        sim,
        *,
        idle_timeout: Optional[float] = None,
        max_flows: int = 1 << 18,
        flag_dedup_window: float = 60.0,
        shard: Optional[Tuple[int, int]] = None,
    ):
        self.sim = sim
        self.flows: Dict[FlowKey, FlowState] = {}
        # Flow-space partition: ``(index, count)`` makes this table one
        # of ``count`` disjoint sensors — it silently ignores new flows
        # whose seed-stable ``flow_key`` hashes to another shard (the
        # same keying the runner's unit partitioner uses, so both layers
        # always agree on who owns a flow).  ``None`` tracks everything.
        if shard is not None:
            index, count = shard
            if not 0 <= index < count:
                raise ValueError(f"shard index {index} not in [0, {count})")
        self.shard = shard
        # Flow-table hygiene: flows that never see FIN/RST (SYN scans,
        # NR probes, half-open connections) must not accumulate forever
        # on multi-week runs.  ``max_flows`` is a hard count cap (the
        # oldest quartile is reclaimed when it is hit); setting
        # ``idle_timeout`` (seconds) additionally sweeps flows idle
        # longer than that, amortized over tracked segments.
        self.idle_timeout = idle_timeout
        self.max_flows = max_flows
        self.flag_dedup_window = flag_dedup_window
        # Replay/retransmission hardening: connection keys whose feature
        # packet was already flagged recently, so a retransmitted SYN
        # recreating the flow entry cannot double-count the flag.
        self._flagged_recently: Dict[FlowKey, float] = {}
        self._track_calls = 0
        self.opened = 0
        self.evicted = 0
        # Sensor events, installed by the orchestrator: the feature
        # packet (first initiator data — what the detector stages see)
        # and the first responder data (the endpoint serves something).
        self.on_first_initiator_data: Callable[[FlowKey, FlowState, Segment], None] = (
            lambda key, flow, seg: None
        )
        self.on_first_responder_data: Callable[[FlowState], None] = lambda flow: None

    def __len__(self) -> int:
        return len(self.flows)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self.flows

    # ------------------------------------------------------------- tracking

    def track(self, seg: Segment, *, reliable: bool = True) -> None:
        """Fold one border-crossing segment into the table.

        Fires the ``on_first_*`` callbacks at the exact points the
        monolithic firewall used to act, so detector and reaction side
        effects interleave with table mutations identically.
        """
        self.track_keyed(seg, seg.conn_key(), reliable=reliable)

    def track_burst(self, segs: List[Segment], *, reliable: bool = True) -> None:
        """Fold a same-connection burst into the table.

        The connection key is computed once for the whole burst; each
        segment is then tracked individually, so sweep amortization and
        the ``on_first_*`` callback firing points are byte-identical to
        per-segment :meth:`track` calls.
        """
        if not segs:
            return
        key = segs[0].conn_key()
        for seg in segs:
            self.track_keyed(seg, key, reliable=reliable)

    def track_keyed(self, seg: Segment, key: FlowKey, *,
                    reliable: bool = True) -> None:
        """:meth:`track` with the connection key precomputed by the caller
        (burst entry points share one key across a whole burst)."""
        self._track_calls += 1
        if self._track_calls % self.EVICTION_SWEEP_INTERVAL == 0:
            self.sweep(self.sim.now)
        # Flag predicates are inlined as bit tests (rather than the
        # Segment.is_syn/is_data properties): this method runs for every
        # border-crossing segment.
        flags = seg.flags
        flow = self.flows.get(key)
        if flow is None:
            if flags & _SYN_ACK_MASK == Flags.SYN:
                if (self.shard is not None
                        and shard_of(flow_key(*key), self.shard[1])
                        != self.shard[0]):
                    return
                if len(self.flows) >= self.max_flows:
                    self.evict_oldest()
                self.flows[key] = FlowState(
                    initiator_ip=seg.src_ip,
                    initiator_port=seg.src_port,
                    responder_ip=seg.dst_ip,
                    responder_port=seg.dst_port,
                    last_seen=self.sim.now,
                )
                self.opened += 1
                self.sim.bus.incr("gfw.flow.opened")
            return
        flow.last_seen = self.sim.now
        if flags & _SYN_ACK_MASK == Flags.SYN:
            # A SYN on a live flow is not a new connection.  On a lossy
            # network it is a retransmission (counted); on a reliable one
            # it can only be ephemeral-port reuse against a stale entry.
            if not reliable:
                self.sim.bus.incr("gfw.flow.syn.retransmit")
            return
        if seg.payload:
            from_initiator = (
                (seg.src_ip, seg.src_port) == (flow.initiator_ip, flow.initiator_port)
            )
            if from_initiator and not flow.saw_initiator_data:
                flow.saw_initiator_data = True
                self.on_first_initiator_data(key, flow, seg)
            elif not from_initiator and not flow.saw_responder_data:
                flow.saw_responder_data = True
                self.on_first_responder_data(flow)
        if flags & _FIN_RST_MASK:
            # Connection teardown: the feature packet (if any) has been
            # seen by now, so the flow entry can be reclaimed.
            del self.flows[key]

    # ------------------------------------------------------------ flag dedup

    def recently_flagged(self, key: FlowKey, now: float) -> bool:
        """True if this connection key was flagged inside the dedup window."""
        flagged_at = self._flagged_recently.get(key)
        return flagged_at is not None and now - flagged_at <= self.flag_dedup_window

    def note_flagged(self, key: FlowKey, now: float) -> None:
        self._flagged_recently[key] = now

    # -------------------------------------------------------------- hygiene

    def sweep(self, now: float) -> None:
        """Reclaim flows idle past the timeout (and stale flag records)."""
        if self._flagged_recently:
            stale = [k for k, t in self._flagged_recently.items()
                     if now - t > self.flag_dedup_window]
            for k in stale:
                del self._flagged_recently[k]
        if self.idle_timeout is None:
            return
        idle = [k for k, f in self.flows.items()
                if now - f.last_seen > self.idle_timeout]
        for k in idle:
            del self.flows[k]
        if idle:
            self.evicted += len(idle)
            self.sim.bus.incr("gfw.flow.evicted", len(idle))

    def evict_oldest(self) -> None:
        """Hard cap: reclaim the least-recently-seen quartile of the table."""
        victims: List[FlowKey] = sorted(
            self.flows, key=lambda k: self.flows[k].last_seen
        )
        count = max(1, len(victims) // 4)
        for k in victims[:count]:
            del self.flows[k]
        self.evicted += count
        self.sim.bus.incr("gfw.flow.evicted", count)
