"""Detector stages: the pluggable middle layer of the censor pipeline.

The paper's hand-built length/entropy classifier (:mod:`.detector`) is
one point in a space of passive detectors the real censor plausibly runs
side by side — related work documents entropy-threshold attacks,
packet-length-distribution classifiers, and per-protocol detectors for
VMess-style proxies.  This module makes that space first-class:

* :class:`DetectorStage` — the in-path protocol: ``evaluate`` one
  feature packet (a :class:`DetectorContext`) to a :class:`StageResult`,
  or ``evaluate_batch`` a queue of them for throughput;
* a **registry** (:func:`register_stage` / :func:`build_stage`) that
  constructs stages from JSON-able specs, so scenario configs and the
  CLI (``--detectors``) can swap and compose detectors without code;
* **ensemble combinators** — ``any`` / ``all`` / ``weighted`` — that
  compose member stages into one in-path detector, which is how
  detector-ensemble ablations run against the full probing/blocking
  pipeline instead of offline payload sets.

Determinism contract: a stage must draw from ``ctx.rng`` either *never*
or *exactly once per evaluation*, regardless of the payload.  Ensembles
always evaluate every member (no short-circuiting), so the RNG stream
consumed by a composed pipeline is independent of individual member
outcomes — the property that keeps seeded runs reproducible when
detectors are ablated in and out.

Spec grammar (JSON-able, canonicalizable into scenario params)::

    "passive"                                     # bare kind
    {"kind": "passive", "base_rate": 1.0}         # kind + constructor args
    {"kind": "any", "members": ["passive", {"kind": "entropy"}]}
    {"kind": "weighted", "members": [...], "weights": [...], "threshold": 0.5}
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from .altdetectors import EntropyClassifier, LengthDistributionClassifier
from .detector import DetectorConfig, PassiveDetector
from .entropy import shannon_entropy

__all__ = [
    "DetectorContext",
    "DetectorStage",
    "EnsembleStage",
    "EntropyStage",
    "LengthDistStage",
    "PassiveStage",
    "StageResult",
    "TorStage",
    "VmessStage",
    "build_stage",
    "register_stage",
    "stage_kinds",
    "training_corpus",
]

DetectorSpec = Union[str, Mapping[str, Any]]


@dataclass(frozen=True)
class StageResult:
    """One stage's decision on one feature packet."""

    flagged: bool
    score: float        # the probability / likelihood behind the decision
    stage: str          # kind of the deciding stage ("passive", "any", ...)
    # Protocol classification of the flagged traffic, selecting the
    # censor's probing playbook downstream (None -> default, i.e. the
    # paper's Shadowsocks model).  Stages that recognize a specific
    # protocol (vmess, tor) set it; generic stages leave it None.
    protocol: Optional[str] = None


class DetectorContext:
    """Everything a stage may inspect about one feature packet.

    Shared across every stage of an ensemble so derived features are
    computed once: :attr:`entropy` is lazy and memoized, which keeps an
    ensemble of three entropy-consuming stages at one histogram pass.
    ``flow`` is the sensor-layer :class:`~repro.gfw.flowtable.FlowState`
    (``None`` for offline corpus evaluation); stateful stages keep
    per-connection scratch in ``flow.scratchpad()``.
    """

    __slots__ = ("payload", "now", "rng", "flow", "_entropy")

    def __init__(self, payload: bytes, *, now: float = 0.0,
                 rng: Optional[random.Random] = None, flow: Any = None):
        self.payload = payload
        self.now = now
        self.rng = rng if rng is not None else random.Random(0)
        self.flow = flow
        self._entropy: Optional[float] = None

    @property
    def entropy(self) -> float:
        if self._entropy is None:
            self._entropy = shannon_entropy(self.payload)
        return self._entropy


class DetectorStage:
    """In-path detector protocol; subclasses register with a ``kind``."""

    kind: str = ""

    def spec(self) -> Dict[str, Any]:
        """JSON-able ``{"kind": ..., **params}`` rebuilding this stage."""
        raise NotImplementedError

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        raise NotImplementedError

    def evaluate_batch(self, ctxs: Sequence[DetectorContext]) -> List[StageResult]:
        """Evaluate a queue of feature packets.

        Semantically identical to mapping :meth:`evaluate` in order
        (property-tested); stages override it to hoist per-call overhead
        out of the loop for throughput-critical paths — the detector
        benchmark and offline corpus sweeps feed thousands of queued
        first-data packets through here.
        """
        return [self.evaluate(ctx) for ctx in ctxs]


_STAGES: Dict[str, Callable[..., DetectorStage]] = {}


def register_stage(cls):
    """Class decorator: make a stage constructible from its ``kind``."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must define a non-empty kind")
    _STAGES[cls.kind] = cls
    return cls


def stage_kinds() -> List[str]:
    return sorted(_STAGES)


def build_stage(spec: DetectorSpec) -> DetectorStage:
    """Construct a stage tree from a JSON-able spec (see module doc)."""
    if isinstance(spec, str):
        spec = {"kind": spec}
    if not isinstance(spec, Mapping):
        raise TypeError(f"detector spec must be a string or mapping, got {spec!r}")
    params = dict(spec)
    kind = params.pop("kind", None)
    if kind is None:
        raise ValueError(f"detector spec {spec!r} has no 'kind'")
    try:
        cls = _STAGES[kind]
    except KeyError:
        known = ", ".join(stage_kinds()) or "(none)"
        raise KeyError(f"unknown detector kind {kind!r}; registered: {known}")
    if "members" in params:
        params["members"] = [build_stage(m) for m in params["members"]]
    return cls(**params)


# -------------------------------------------------------------- leaf stages


@register_stage
class PassiveStage(DetectorStage):
    """The paper's generative length/entropy classifier, in-path.

    Wraps :class:`~repro.gfw.detector.PassiveDetector` and samples its
    flag probability with exactly one ``ctx.rng`` draw per packet — the
    same draw the monolithic firewall made, which is what keeps the
    default pipeline byte-identical to the pre-refactor censor.
    """

    kind = "passive"

    def __init__(self, detector: Optional[PassiveDetector] = None, **config: Any):
        if detector is not None and config:
            raise ValueError("pass either a detector or config fields, not both")
        self.detector = detector or PassiveDetector(DetectorConfig(**config))

    def spec(self) -> Dict[str, Any]:
        cfg, defaults = self.detector.config, DetectorConfig()
        params = {
            name: getattr(cfg, name)
            for name in cfg.__dataclass_fields__
            if getattr(cfg, name) != getattr(defaults, name)
        }
        return {"kind": self.kind, **params}

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        probability = self.detector.flag_probability(ctx.payload)
        return StageResult(ctx.rng.random() < probability, probability, self.kind)

    def evaluate_batch(self, ctxs: Sequence[DetectorContext]) -> List[StageResult]:
        flag_probability = self.detector.flag_probability
        kind = self.kind
        return [
            StageResult(ctx.rng.random() < p, p, kind)
            for ctx in ctxs
            for p in (flag_probability(ctx.payload),)
        ]


@register_stage
class EntropyStage(DetectorStage):
    """Entropy-threshold detector (§8's sssniff family), in-path.

    Deterministic: flags every first packet at or above the threshold.
    """

    kind = "entropy"

    def __init__(self, threshold: float = 7.0, min_length: int = 16):
        self.classifier = EntropyClassifier(threshold=threshold,
                                            min_length=min_length)

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "threshold": self.classifier.threshold,
                "min_length": self.classifier.min_length}

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        if len(ctx.payload) < self.classifier.min_length:
            return StageResult(False, 0.0, self.kind)
        return StageResult(ctx.entropy >= self.classifier.threshold,
                           ctx.entropy / 8.0, self.kind)


@register_stage
class LengthDistStage(DetectorStage):
    """Packet-length likelihood-ratio detector (Madeye's sssniff), in-path.

    Wraps a :class:`~repro.gfw.altdetectors.LengthDistributionClassifier`
    fitted on a deterministic synthetic corpus (Shadowsocks first packets
    vs plaintext HTTP/TLS first packets) derived from ``train_seed``, so
    the fitted stage is reproducible from its spec alone.  The score is
    the likelihood ratio, which makes this stage a natural member of
    ``weighted`` ensembles.
    """

    kind = "length-dist"

    def __init__(self, bin_width: int = 32, ratio_threshold: float = 1.0,
                 train_seed: int = 7, train_samples: int = 400,
                 train_method: str = "chacha20-ietf-poly1305"):
        self.train_seed = train_seed
        self.train_samples = train_samples
        self.train_method = train_method
        positives, negatives = training_corpus(
            seed=train_seed, samples=train_samples, method=train_method)
        self.classifier = LengthDistributionClassifier(
            bin_width=bin_width, ratio_threshold=ratio_threshold,
        ).fit(positives, negatives)

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "bin_width": self.classifier.bin_width,
                "ratio_threshold": self.classifier.ratio_threshold,
                "train_seed": self.train_seed,
                "train_samples": self.train_samples,
                "train_method": self.train_method}

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        ratio = self.classifier.likelihood_ratio(ctx.payload)
        return StageResult(ratio > self.classifier.ratio_threshold, ratio,
                           self.kind)


# VMess legacy header geometry (see repro.vmess.protocol): 16-byte
# HMAC-MD5 auth + AES-128-CFB command section of 45 fixed bytes, plus
# the address (4 for IPv4, 1+len for hostnames) and 0-15 padding bytes.
VMESS_AUTH_LEN = 16
VMESS_COMMAND_FIXED = 45
VMESS_MIN_FIRST = VMESS_AUTH_LEN + VMESS_COMMAND_FIXED + 4          # IPv4, no pad
VMESS_MAX_HEADER = VMESS_AUTH_LEN + VMESS_COMMAND_FIXED + 1 + 255 + 15


@register_stage
class VmessStage(DetectorStage):
    """VMess-aware length/entropy detector (the paper's §9 outlook).

    A legacy VMess first packet is an HMAC-MD5 tag followed by AES-CFB
    ciphertext — indistinguishable from random, like Shadowsocks — but
    its *length* is confined to the header geometry above (plus any
    coalesced first data chunk).  The stage flags first packets that are
    both high-entropy and long enough to carry a VMess handshake,
    mirroring how the random-data trigger would extend to VMess.
    """

    kind = "vmess"

    def __init__(self, entropy_min: float = 7.0, min_length: int = VMESS_MIN_FIRST,
                 max_length: int = 0):
        self.entropy_min = entropy_min
        self.min_length = min_length
        # 0 = unbounded: first packets may coalesce header + data.
        self.max_length = max_length

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "entropy_min": self.entropy_min,
                "min_length": self.min_length, "max_length": self.max_length}

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        length = len(ctx.payload)
        if length < self.min_length:
            return StageResult(False, 0.0, self.kind)
        if self.max_length and length > self.max_length:
            return StageResult(False, 0.0, self.kind)
        return StageResult(ctx.entropy >= self.entropy_min, ctx.entropy / 8.0,
                           self.kind)


# Tor cell wire constants (see repro.obfs.wire): a VERSIONS cell is
# CIRCID(2) | CMD(1)=7 | LEN(2) | LEN/2 u16 versions.
TOR_VERSIONS_PREFIX = b"\x00\x00\x07"


@register_stage
class TorStage(DetectorStage):
    """Tor/obfs bridge detector (Winter & Lindskog's DPI trigger).

    Two triggers, both deterministic:

    * **Vanilla Tor** — the first packet parses as a Tor VERSIONS cell
      (the DPI fingerprint the GFW was observed to match);
    * **obfs-style fully encrypted** — the first packet is
      near-maximum-entropy for its length with no printable structure,
      in a handshake-sized band.  Entropy is compared as a *ratio* of
      the per-length maximum (``log2(n)`` caps the observable entropy of
      an ``n``-byte packet), so short obfs handshakes are not missed the
      way an absolute 7-bit threshold would.

    Flagged packets carry ``protocol="tor"``, routing the endpoint to
    the Tor probing playbook instead of the Shadowsocks replay model.
    """

    kind = "tor"

    def __init__(self, min_length: int = 32, max_length: int = 16384,
                 entropy_efficiency: float = 0.9):
        self.min_length = min_length
        self.max_length = max_length
        self.entropy_efficiency = entropy_efficiency

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "min_length": self.min_length,
                "max_length": self.max_length,
                "entropy_efficiency": self.entropy_efficiency}

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        payload = ctx.payload
        length = len(payload)
        if length >= 5 and payload.startswith(TOR_VERSIONS_PREFIX):
            body_len = int.from_bytes(payload[3:5], "big")
            if body_len % 2 == 0 and length >= 5 + body_len:
                return StageResult(True, 1.0, self.kind, protocol="tor")
        if length < self.min_length or length > self.max_length:
            return StageResult(False, 0.0, self.kind)
        cap = min(8.0, math.log2(length))
        efficiency = ctx.entropy / cap if cap > 0 else 0.0
        flagged = efficiency >= self.entropy_efficiency
        return StageResult(flagged, efficiency, self.kind,
                           protocol="tor" if flagged else None)


# ---------------------------------------------------------------- ensembles


class EnsembleStage(DetectorStage):
    """Common machinery for stages composed of member stages."""

    def __init__(self, members: Sequence[DetectorStage]):
        if not members:
            raise ValueError(f"{self.kind!r} ensemble needs at least one member")
        self.members = list(members)

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "members": [m.spec() for m in self.members]}

    def _evaluate_members(self, ctx: DetectorContext) -> List[StageResult]:
        # Every member always runs: the RNG stream consumed must not
        # depend on earlier members' outcomes (see module doc).
        return [member.evaluate(ctx) for member in self.members]

    @staticmethod
    def _protocol_of(results: Sequence[StageResult]) -> Optional[str]:
        """Propagate the first flagged member's protocol classification."""
        for r in results:
            if r.flagged and r.protocol is not None:
                return r.protocol
        return None


@register_stage
class AnyStage(EnsembleStage):
    """Flag when *any* member flags (union of detectors)."""

    kind = "any"

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        results = self._evaluate_members(ctx)
        return StageResult(any(r.flagged for r in results),
                           max(r.score for r in results), self.kind,
                           protocol=self._protocol_of(results))


@register_stage
class AllStage(EnsembleStage):
    """Flag only when *every* member flags (intersection)."""

    kind = "all"

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        results = self._evaluate_members(ctx)
        return StageResult(all(r.flagged for r in results),
                           min(r.score for r in results), self.kind,
                           protocol=self._protocol_of(results))


@register_stage
class WeightedStage(EnsembleStage):
    """Flag when the weighted member-score sum reaches ``threshold``.

    Scores, not booleans, are combined: probabilistic members contribute
    their flag probability, deterministic members their normalized
    feature score, so the ensemble is a calibrated linear vote.
    """

    kind = "weighted"

    def __init__(self, members: Sequence[DetectorStage],
                 weights: Optional[Sequence[float]] = None,
                 threshold: float = 0.5):
        super().__init__(members)
        self.weights = list(weights) if weights is not None else [1.0] * len(self.members)
        if len(self.weights) != len(self.members):
            raise ValueError(
                f"{len(self.weights)} weights for {len(self.members)} members")
        self.threshold = threshold

    def spec(self) -> Dict[str, Any]:
        return {**super().spec(), "weights": list(self.weights),
                "threshold": self.threshold}

    def evaluate(self, ctx: DetectorContext) -> StageResult:
        results = self._evaluate_members(ctx)
        score = sum(w * r.score for w, r in zip(self.weights, results))
        return StageResult(score >= self.threshold, score, self.kind,
                           protocol=self._protocol_of(results))


# ---------------------------------------------------------- training corpus


def training_corpus(seed: int = 7, samples: int = 400,
                    method: str = "chacha20-ietf-poly1305"):
    """Deterministic (positives, negatives) first-packet sets.

    Positives are Shadowsocks AEAD first packets (salt + encrypted
    target + request); negatives are plaintext HTTP GETs and TLS
    ClientHellos — the same generators the detector-feature ablation
    uses.  Everything derives from ``seed``, so trainable stages built
    from a spec are reproducible across processes.
    """
    # Imported lazily: repro.workloads/shadowsocks must not become
    # import-time dependencies of the gfw package.
    from ..shadowsocks import encode_target
    from ..shadowsocks.aead_session import AeadEncryptor, aead_master_key
    from ..workloads import SITES, http_get_request, site_request, tls_client_hello

    rng = random.Random(seed)
    master = aead_master_key("pw", method)
    positives = []
    for _ in range(samples):
        site = rng.choice(SITES)
        payload = encode_target(site, 443) + site_request(site, rng)
        enc = AeadEncryptor(method, master, rng=rng)
        positives.append(enc.encrypt(payload))
    negatives = []
    for _ in range(samples):
        site = rng.choice(SITES)
        if rng.random() < 0.5:
            negatives.append(http_get_request(site, rng))
        else:
            negatives.append(tls_client_hello(site, rng))
    return positives, negatives
