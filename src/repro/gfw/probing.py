"""Per-protocol probing playbooks: the censor's reaction engine, pluggable.

PR 5 made the *detector* pluggable; this module does the same for the
probing side.  The staged Shadowsocks replay/NR logic that used to be
hard-wired into :class:`~repro.gfw.scheduler.ProbeScheduler` is now one
:class:`ProbeBehavior` in a registry keyed by protocol name, and the
scheduler dispatches to the behaviour selected by the flagged flow's
protocol classification (``Verdict.protocol``, defaulting to
``"shadowsocks"``).

* ``"shadowsocks"`` — the source paper's playbook, moved here verbatim
  from the scheduler: stage-1 R1/R2 replays with geometric repeats and
  Figure 7 delays, probabilistic NR2/NR3, the NR1 drip for long-term
  suspects, and the stage-2 R3-R6 burst once a replay is answered with
  data.  Byte-identical to the pre-refactor scheduler (property-tested):
  same RNG draws from the scheduler's single stream, in the same order.

* ``"tor"`` — the GFW's Tor/obfs active probing per Winter & Lindskog
  (*How China Is Blocking Tor*): garbage binary probes plus a forged Tor
  VERSIONS handshake, a confirmation burst once a suspected bridge
  answers the handshake, and block rollout deferred to the next *batch
  boundary* — reproducing the probe-to-block delay clustering Fifield &
  Tsai measured (*Censors' Delay in Blocking Circumvention Proxies*).

Spec grammar mirrors the detector-stage registry::

    "shadowsocks"                                  # bare kind
    {"kind": "tor", "batch_interval": 900.0}       # kind + params
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Tuple, Union

from .delays import ReplayDelayModel
from .prober import ProbeRecord, Reaction
from .probes import ProbeType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scheduler imports us)
    from .blocking import BlockingModule
    from .scheduler import ProbeScheduler, ServerProbeState

__all__ = [
    "FT_TOR_ANCHORS",
    "ProbeBehavior",
    "ShadowsocksProbeBehavior",
    "TorProbeBehavior",
    "behavior_kinds",
    "build_behavior",
    "register_behavior",
]

BehaviorSpec = Union[str, Mapping[str, Any]]

# Tor probe-delay anchors (CDF value, delay seconds).  Winter & Lindskog
# observed quasi-real-time probing (most probes within seconds to
# minutes of the triggering connection); Fifield & Tsai's longitudinal
# measurements add a minutes-scale median and an hours-scale tail.
FT_TOR_ANCHORS: List[Tuple[float, float]] = [
    (0.00, 0.5),
    (0.30, 15.0),
    (0.60, 60.0),
    (0.85, 600.0),
    (0.97, 3600.0),
    (1.00, 21600.0),
]


class ProbeBehavior:
    """One protocol's probing playbook, driven by the scheduler.

    A behaviour owns no RNG, forge, or clock of its own: everything is
    drawn from the owning scheduler so a behaviour's draws interleave
    into the scheduler's single seeded stream (the property that keeps
    the default path byte-identical to the pre-refactor monolith).
    """

    kind: str = ""

    def __init__(self, scheduler: "ProbeScheduler"):
        self.scheduler = scheduler

    # Convenience accessors: behaviours read the scheduler's machinery.
    @property
    def rng(self):
        return self.scheduler.rng

    @property
    def forge(self):
        return self.scheduler.forge

    @property
    def sim(self):
        return self.scheduler.sim

    def spec(self) -> Dict[str, Any]:
        """JSON-able ``{"kind": ..., **params}`` rebuilding this behaviour."""
        return {"kind": self.kind}

    def on_flagged(self, state: "ServerProbeState", payload: bytes,
                   now: float) -> None:
        """A flagged connection to ``state``'s endpoint: schedule probes."""
        raise NotImplementedError

    def on_result(self, state: "ServerProbeState", record: ProbeRecord) -> None:
        """A probe completed: drive stage escalation (default: none)."""

    def consider_blocking(self, state: "ServerProbeState", record: ProbeRecord,
                          blocking: "BlockingModule") -> None:
        """Feed a probe result into the block-escalation timeline.

        The default is the paper's Shadowsocks evidence model
        (:meth:`BlockingModule.consider`); protocol behaviours override
        this to select a different escalation timeline.
        """
        blocking.consider(state, record)


_BEHAVIORS: Dict[str, Callable[..., ProbeBehavior]] = {}


def register_behavior(cls):
    """Class decorator: make a behaviour constructible from its ``kind``."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must define a non-empty kind")
    _BEHAVIORS[cls.kind] = cls
    return cls


def behavior_kinds() -> List[str]:
    return sorted(_BEHAVIORS)


def build_behavior(spec: BehaviorSpec, scheduler: "ProbeScheduler") -> ProbeBehavior:
    """Construct a probing behaviour from a JSON-able spec."""
    if isinstance(spec, str):
        spec = {"kind": spec}
    if not isinstance(spec, Mapping):
        raise TypeError(
            f"probe-behavior spec must be a string or mapping, got {spec!r}")
    params = dict(spec)
    kind = params.pop("kind", None)
    if kind is None:
        raise ValueError(f"probe-behavior spec {spec!r} has no 'kind'")
    try:
        cls = _BEHAVIORS[kind]
    except KeyError:
        known = ", ".join(behavior_kinds()) or "(none)"
        raise KeyError(f"unknown probe-behavior kind {kind!r}; registered: {known}")
    return cls(scheduler, **params)


# ----------------------------------------------------- the paper's playbook


@register_behavior
class ShadowsocksProbeBehavior(ProbeBehavior):
    """The source paper's staged replay/NR playbook (§4.2, §5).

    The logic is the pre-refactor scheduler body, relocated: stage 1
    replays and random probes per flagged connection, the NR1 drip for
    long-term suspects, and the stage-2 burst once the server answers a
    replay with data.  All randomness comes from ``scheduler.rng`` in
    the original draw order.
    """

    kind = "shadowsocks"

    def on_flagged(self, state: "ServerProbeState", payload: bytes,
                   now: float) -> None:
        sched = self.scheduler
        cfg = sched.config
        rng = sched.rng
        self._schedule_replays(state, payload, now, ProbeType.R1)
        if rng.random() < cfg.r2_probability:
            self._schedule_replays(state, payload, now, ProbeType.R2)
        if rng.random() < cfg.nr2_probability:
            nr2 = sched.forge.nr2()
            sched._schedule(nr2, state, sched.delay_model.sample(rng))
            if rng.random() < cfg.nr2_duplicate_probability:
                # Re-send the *same* payload later: the duplicate-probe
                # replay-filter check of §5.3.
                sched._schedule(nr2, state, sched.delay_model.sample(rng))
        if rng.random() < cfg.nr3_probability:
            sched._schedule(sched.forge.nr3(), state,
                            sched.delay_model.sample(rng))
        if (
            state.serves_data
            and state.flag_count >= cfg.nr1_flag_threshold
            and rng.random() < cfg.nr1_probability
        ):
            # Drip a small NR1 batch over the next hour or so.
            for _ in range(rng.randint(1, 3)):
                spread = rng.uniform(0, cfg.nr1_spread_hours * 3600)
                sched._schedule(sched.forge.nr1(), state, spread)

    def _schedule_replays(self, state: "ServerProbeState", payload: bytes,
                          trigger_time: float, probe_type: str) -> None:
        sched = self.scheduler
        cfg = sched.config
        rng = sched.rng
        repeats = 1
        while (
            repeats < cfg.max_replays_per_payload
            and rng.random() < cfg.repeat_geometric_p
        ):
            repeats += 1
        for _ in range(repeats):
            delay = sched.delay_model.sample(rng)
            probe = sched.forge.replay(payload, probe_type)
            sched._schedule(probe, state, delay, trigger_time=trigger_time)

    def on_result(self, state: "ServerProbeState", record: ProbeRecord) -> None:
        if record.probe.is_replay and record.reaction == Reaction.DATA:
            state.replay_responses += 1
            if state.stage == 1:
                state.stage = 2
                self.sim.bus.incr("scheduler.stage2")
                self._enter_stage2(state)

    def _enter_stage2(self, state: "ServerProbeState") -> None:
        """The server answered a replay: unleash R3/R4 (and rarely R5/R6)."""
        sched = self.scheduler
        cfg = sched.config
        rng = sched.rng
        if not state.recorded_payloads:
            return
        burst = rng.randint(cfg.stage2_burst_low, cfg.stage2_burst_high)
        for _ in range(burst):
            recorded_at, payload = rng.choice(state.recorded_payloads)
            roll = rng.random()
            if roll < cfg.r5_probability:
                probe_type = ProbeType.R5
            elif roll < cfg.r5_probability + cfg.r6_probability:
                probe_type = ProbeType.R6
            elif roll < 0.5:
                probe_type = ProbeType.R3
            else:
                probe_type = ProbeType.R4
            delay = rng.uniform(0, cfg.stage2_spread_hours * 3600)
            sched._schedule(sched.forge.replay(payload, probe_type), state, delay,
                            trigger_time=recorded_at)


# --------------------------------------------------- Tor/obfs active probing


@register_behavior
class TorProbeBehavior(ProbeBehavior):
    """GFW Tor active probing: garbage probes, handshakes, batched blocks.

    Stage model (Winter & Lindskog; Fifield & Tsai):

    * **Stage 1** — each flagged connection draws a garbage binary probe
      (uniformly random bytes) and, usually, a forged Tor VERSIONS
      handshake, after a delay from the Tor probe-delay distribution.
    * **Stage 2** — entered once the endpoint *answers the handshake
      like a bridge* (a VERSIONS reply): a short confirmation burst of
      further handshake probes over the next minutes.
    * **Block rollout** — a confirmed bridge is not blocked immediately:
      the rule lands at the next multiple of ``batch_interval``
      (plus a small processing jitter), reproducing the batched
      probe-to-block delay clustering of Fifield & Tsai.  The block
      bypasses the Shadowsocks evidence model and its human gate — Tor
      bridge blocking was observed to be automatic.
    """

    kind = "tor"

    def __init__(
        self,
        scheduler: "ProbeScheduler",
        *,
        garbage_probability: float = 1.0,
        handshake_probability: float = 0.85,
        confirm_burst_low: int = 2,
        confirm_burst_high: int = 5,
        confirm_spread: float = 600.0,
        batch_interval: float = 900.0,
        batch_jitter: float = 30.0,
        block_by_ip_probability: float = 0.3,
    ):
        super().__init__(scheduler)
        self.garbage_probability = garbage_probability
        self.handshake_probability = handshake_probability
        self.confirm_burst_low = confirm_burst_low
        self.confirm_burst_high = confirm_burst_high
        self.confirm_spread = confirm_spread
        self.batch_interval = batch_interval
        self.batch_jitter = batch_jitter
        self.block_by_ip_probability = block_by_ip_probability
        self.delays = ReplayDelayModel(FT_TOR_ANCHORS)
        # Endpoints whose block is already scheduled (or applied).
        self._block_scheduled: set = set()

    def spec(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "garbage_probability": self.garbage_probability,
            "handshake_probability": self.handshake_probability,
            "confirm_burst_low": self.confirm_burst_low,
            "confirm_burst_high": self.confirm_burst_high,
            "confirm_spread": self.confirm_spread,
            "batch_interval": self.batch_interval,
            "batch_jitter": self.batch_jitter,
            "block_by_ip_probability": self.block_by_ip_probability,
        }

    def on_flagged(self, state: "ServerProbeState", payload: bytes,
                   now: float) -> None:
        sched = self.scheduler
        rng = sched.rng
        if rng.random() < self.garbage_probability:
            sched._schedule(sched.forge.garbage(), state,
                            self.delays.sample(rng), trigger_time=now)
        if rng.random() < self.handshake_probability:
            sched._schedule(sched.forge.tor_handshake(), state,
                            self.delays.sample(rng), trigger_time=now)

    # A bridge is *confirmed* when a probe draws data: the forged
    # VERSIONS handshake (vanilla Tor answers it) or the garbage binary
    # probe (obfs3's unauthenticated handshake answers any block of the
    # right size).  obfs4 answers neither.
    _CONFIRMING = (ProbeType.TORH, ProbeType.GARBAGE)

    def _confirms(self, record: ProbeRecord) -> bool:
        return (record.probe_type in self._CONFIRMING
                and record.reaction == Reaction.DATA)

    def on_result(self, state: "ServerProbeState", record: ProbeRecord) -> None:
        if self._confirms(record) and state.stage == 1:
            state.stage = 2
            self.sim.bus.incr("scheduler.tor.confirmed")
            sched = self.scheduler
            rng = sched.rng
            burst = rng.randint(self.confirm_burst_low, self.confirm_burst_high)
            for _ in range(burst):
                sched._schedule(sched.forge.tor_handshake(), state,
                                rng.uniform(0, self.confirm_spread))

    def consider_blocking(self, state: "ServerProbeState", record: ProbeRecord,
                          blocking: "BlockingModule") -> None:
        if not self._confirms(record):
            return
        key = (state.ip, state.port)
        if key in self._block_scheduled or blocking.is_blocked(state.ip, state.port):
            return
        self._block_scheduled.add(key)
        rng = self.rng
        now = self.sim.now
        # Next batch boundary relative to the epoch, plus processing jitter.
        wait = self.batch_interval - (now % self.batch_interval)
        wait += rng.uniform(0, self.batch_jitter)
        by_ip = rng.random() < self.block_by_ip_probability
        self.sim.bus.incr("scheduler.tor.block_scheduled")
        self.sim.schedule(wait, blocking.block, state.ip, state.port, by_ip)
