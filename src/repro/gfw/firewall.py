"""The Great Firewall as an on-path middlebox (thin orchestrator).

The censor is three explicit layers threaded together here:

* **sensor** — the border predicate plus the first-class
  :class:`~repro.gfw.flowtable.FlowTable`, which owns flow creation,
  eviction, flag dedup, and surfaces the feature packet (first
  initiator data) and first responder data;
* **detector** — a :class:`~repro.gfw.stages.DetectorStage` pipeline
  built from a JSON-able ``detectors`` spec (default: the paper's
  passive length/entropy classifier), evaluated per feature packet;
* **reaction** — a :class:`~repro.gfw.reaction.ReactionPolicy`
  consuming typed :class:`~repro.gfw.reaction.Verdict` records and
  driving the staged probe scheduler and the blocking module.

Triggering is bidirectional (§4.2): the initiator may be on either side
of the border.  With no ``detectors`` spec the pipeline is byte-identical
to the pre-refactor monolith (property-tested): same RNG draws, same
counter emissions, same probe schedule.
"""

from __future__ import annotations

import random
from typing import Any, List, Mapping, Optional, Tuple, Union

from ..net.capture import Capture
from ..net.host import Host
from ..net.ipaddr import ip_to_int, parse_cidr
from ..net.network import Middlebox, Network
from ..net.packet import Segment
from .blocking import BlockingPolicy
from .delays import ReplayDelayModel
from .detector import DetectorConfig, PassiveDetector
from .fleet import FleetConfig, ProberFleet
from .flowtable import FlowKey, FlowState, FlowTable
from .probes import ProbeForge
from .prober import ProberRunner
from .reaction import ReactionPolicy, Verdict
from .scheduler import SchedulerConfig
from .stages import DetectorContext, DetectorStage, PassiveStage, build_stage

__all__ = ["GreatFirewall", "FlowState"]

FLEET_HOST_IP = "100.64.0.1"  # the fleet's anchor address (never a probe source)

DetectorsSpec = Union[str, Mapping[str, Any], DetectorStage]


class GreatFirewall(Middlebox):
    """On-path censor: sensor → detector → reaction."""

    EVICTION_SWEEP_INTERVAL = FlowTable.EVICTION_SWEEP_INTERVAL

    def __init__(
        self,
        sim,
        network: Network,
        inside_cidrs: List[str],
        *,
        rng: Optional[random.Random] = None,
        detector_config: Optional[DetectorConfig] = None,
        detectors: Optional[DetectorsSpec] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        fleet_config: Optional[FleetConfig] = None,
        blocking_policy: Optional[BlockingPolicy] = None,
        probe_behaviors: Optional[Mapping[str, Any]] = None,
        flow_idle_timeout: Optional[float] = None,
        max_flows: int = 1 << 18,
        inside_cache_max: int = 1 << 16,
        shard: Optional[Tuple[int, int]] = None,
    ):
        self.sim = sim
        self.network = network
        self.inside_cidrs = list(inside_cidrs)
        # Precompile the border predicate: it runs on every segment.
        self._inside_masks = []
        for cidr in self.inside_cidrs:
            base, prefix = parse_cidr(cidr)
            mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
            self._inside_masks.append((base, mask))
        self._inside_cache: dict = {}
        # Directional 4-tuple -> canonical connection key.  ``conn_key``
        # builds two tuples and sorts them per segment; single-segment
        # sensor entries hit this memo instead.  Bounded like the inside
        # cache: dropping it costs recomputation, never correctness.
        self._conn_key_cache: dict = {}
        self.rng = rng or random.Random(0x6F0)

        # Detector layer: the spec wins when given; otherwise the
        # classic passive classifier (kept as ``self.detector`` for
        # introspection either way, when the pipeline is passive).
        self.detector = PassiveDetector(detector_config)
        if detectors is None:
            self.pipeline: DetectorStage = PassiveStage(detector=self.detector)
        elif isinstance(detectors, DetectorStage):
            self.pipeline = detectors
        else:
            self.pipeline = build_stage(detectors)
        if isinstance(self.pipeline, PassiveStage):
            self.detector = self.pipeline.detector

        self.fleet_host = Host(sim, network, FLEET_HOST_IP, "gfw-fleet",
                               rng=random.Random(self.rng.randrange(1 << 30)))
        self.fleet = ProberFleet(self.fleet_host,
                                 rng=random.Random(self.rng.randrange(1 << 30)),
                                 config=fleet_config)
        self.runner = ProberRunner(self.fleet,
                                   rng=random.Random(self.rng.randrange(1 << 30)))
        self.forge = ProbeForge(random.Random(self.rng.randrange(1 << 30)))
        self.reactions = ReactionPolicy.default(
            sim, self.runner,
            forge=self.forge,
            delay_model=ReplayDelayModel(),
            rng=random.Random(self.rng.randrange(1 << 30)),
            scheduler_config=scheduler_config,
            blocking_policy=blocking_policy,
            blocking_rng=random.Random(self.rng.randrange(1 << 30)),
            probe_behaviors=probe_behaviors,
            flag_hook=lambda flow, payload: self.on_flag(flow, payload),
        )

        # Fused per-segment blocking probe: ReactionPolicy's drop check is
        # two delegating frames around two dict-membership tests, so alias
        # the blocking module's tables directly (they are stable dict
        # attributes, mutated in place and never rebound).  A custom
        # reaction policy without a ``blocking`` module falls back to the
        # ``should_drop`` method call.
        blocking = getattr(self.reactions, "blocking", None)
        self._blocked_ips = getattr(blocking, "_blocked_ips", None)
        self._blocked_ports = getattr(blocking, "_blocked_ports", None)
        if self._blocked_ips is None or self._blocked_ports is None:
            self._blocked_ips = self._blocked_ports = None

        # (src_ip, dst_ip) -> "does the sensor care" (border-crossing and
        # not fleet traffic).  Fleet IPs can grow (minting), so entries
        # are validated against the fleet address-set size.
        self._pair_cache: dict = {}
        self._pair_cache_ver = -1

        # Sensor layer: the flow table owns connection state + hygiene.
        # ``shard`` makes this censor one of N disjoint sensors over the
        # flow space (see repro.runtime.sharding).
        self.flow_table = FlowTable(sim, idle_timeout=flow_idle_timeout,
                                    max_flows=max_flows, shard=shard)
        self.flow_table.on_first_initiator_data = self._first_initiator_data
        self.flow_table.on_first_responder_data = self._first_responder_data
        self.inside_cache_max = inside_cache_max
        # Off by default: long experiments would otherwise accumulate
        # millions of records.  Enable for debugging.
        self.capture = Capture()
        self.capture.enabled = False
        self.flagged_connections = 0
        self.dropped_segments = 0
        # Hook for tests/experiments: called on every flag decision.
        self.on_flag = lambda flow, payload: None
        network.add_middlebox(self)

    # ------------------------------------------------------------- geometry

    def is_inside(self, ip: str) -> bool:
        cached = self._inside_cache.get(ip)
        if cached is None:
            value = ip_to_int(ip)
            cached = any((value & mask) == base for base, mask in self._inside_masks)
            if len(self._inside_cache) >= self.inside_cache_max:
                # Pure cache: dropping it costs recomputation, never
                # correctness, and bounds memory against address churn.
                self._inside_cache.clear()
                self.sim.bus.incr("gfw.cache.inside_cleared")
            self._inside_cache[ip] = cached
        return cached

    def crosses_border(self, seg: Segment) -> bool:
        # Inlined cache probes: this predicate runs per segment (or per
        # burst), and after warm-up virtually every address is cached.
        cache = self._inside_cache
        src = cache.get(seg.src_ip)
        if src is None:
            src = self.is_inside(seg.src_ip)
        dst = cache.get(seg.dst_ip)
        if dst is None:
            dst = self.is_inside(seg.dst_ip)
        return src != dst

    def _is_fleet_traffic(self, seg: Segment) -> bool:
        fleet_ips = self.fleet_host.extra_ips
        return (
            seg.src_ip == FLEET_HOST_IP or seg.dst_ip == FLEET_HOST_IP
            or seg.src_ip in fleet_ips or seg.dst_ip in fleet_ips
        )

    def _conn_key(self, seg: Segment):
        """Memoized :meth:`Segment.conn_key` keyed on the directional flow."""
        flow = (seg.src_ip, seg.src_port, seg.dst_ip, seg.dst_port)
        key = self._conn_key_cache.get(flow)
        if key is None:
            key = seg.conn_key()
            if len(self._conn_key_cache) >= self.inside_cache_max:
                self._conn_key_cache.clear()
            self._conn_key_cache[flow] = key
        return key

    # ------------------------------------------------------------ main path

    def _interesting(self, src_ip: str, dst_ip: str) -> bool:
        """Memoized "does the sensor care about this IP pair" predicate
        (border-crossing and not the probing fleet's own traffic)."""
        ver = len(self.fleet_host.extra_ips)
        cache = self._pair_cache
        if ver != self._pair_cache_ver:
            cache.clear()
            self._pair_cache_ver = ver
        key = (src_ip, dst_ip)
        interesting = cache.get(key)
        if interesting is None:
            inside = self._inside_cache
            src = inside.get(src_ip)
            if src is None:
                src = self.is_inside(src_ip)
            dst = inside.get(dst_ip)
            if dst is None:
                dst = self.is_inside(dst_ip)
            fleet_ips = self.fleet_host.extra_ips
            interesting = (src != dst
                           and src_ip != FLEET_HOST_IP
                           and dst_ip != FLEET_HOST_IP
                           and src_ip not in fleet_ips
                           and dst_ip not in fleet_ips)
            if len(cache) >= self.inside_cache_max:
                cache.clear()
            cache[key] = interesting
        return interesting

    def process(self, seg: Segment, network: Network) -> List[Segment]:
        # Inlined blocking probe (see __init__): two dict membership
        # tests in place of two delegating calls per segment.
        bips = self._blocked_ips
        if bips is None:
            dropped = self.reactions.should_drop(seg)
        else:
            dropped = (seg.src_ip in bips
                       or (seg.src_ip, seg.src_port) in self._blocked_ports)
        if dropped:
            self.dropped_segments += 1
            self.sim.bus.incr("gfw.segment.dropped")
            return []
        # Inlined warm probe of the ``_interesting`` pair memo.
        if len(self.fleet_host.extra_ips) == self._pair_cache_ver:
            interesting = self._pair_cache.get((seg.src_ip, seg.dst_ip))
            if interesting is None:
                interesting = self._interesting(seg.src_ip, seg.dst_ip)
        else:
            interesting = self._interesting(seg.src_ip, seg.dst_ip)
        if not interesting:
            return [seg]
        # The GFW capture is disabled by default; skip the call outright
        # rather than paying ``record``'s own early-out per segment.
        capture = self.capture
        if capture.enabled:
            capture.record(seg, self.sim.now, sent=False)
        self.flow_table.track_keyed(seg, self._conn_key(seg),
                                    reliable=self.network.reliable)
        return [seg]

    def process_burst(self, segs: List[Segment],
                      network: Network) -> List[Segment]:
        """Batched sensor entry: one burst, one border/flow-key lookup.

        All segments in a burst share one directional flow, so the
        border predicate, the fleet check, and the connection key are
        hoisted out of the loop.  Everything order-sensitive stays
        per-segment and in order: ``should_drop`` is re-checked before
        every segment (an earlier segment's verdict may have installed a
        blocking rule that must catch the rest of the burst) and
        ``track`` side effects (sweeps, callbacks, verdicts) interleave
        exactly as in the sequential path.
        """
        first = segs[0]
        interesting = self._interesting(first.src_ip, first.dst_ip)
        bips = self._blocked_ips
        bports = self._blocked_ports
        should_drop = self.reactions.should_drop if bips is None else None
        bus = self.sim.bus
        forwarded: List[Segment] = []
        if not interesting:
            for seg in segs:
                if (should_drop(seg) if should_drop is not None
                        else (seg.src_ip in bips
                              or (seg.src_ip, seg.src_port) in bports)):
                    self.dropped_segments += 1
                    bus.incr("gfw.segment.dropped")
                else:
                    forwarded.append(seg)
            return forwarded
        track_keyed = self.flow_table.track_keyed
        key = self._conn_key(first)
        reliable = self.network.reliable
        capture = self.capture
        record = capture.record if capture.enabled else None
        now = self.sim.now
        for seg in segs:
            if (should_drop(seg) if should_drop is not None
                    else (seg.src_ip in bips
                          or (seg.src_ip, seg.src_port) in bports)):
                self.dropped_segments += 1
                bus.incr("gfw.segment.dropped")
                continue
            if record is not None:
                record(seg, now, sent=False)
            track_keyed(seg, key, reliable=reliable)
            forwarded.append(seg)
        return forwarded

    # --------------------------------------------------- sensor → detector

    def _first_responder_data(self, flow: FlowState) -> None:
        self.reactions.on_server_data(flow.responder_ip, flow.responder_port)

    def _first_initiator_data(self, key: FlowKey, flow: FlowState,
                              seg: Segment) -> None:
        """The feature packet: first data from the connection's initiator."""
        now = self.sim.now
        if self.flow_table.recently_flagged(key, now):
            # A retransmitted SYN re-created the flow entry after a
            # teardown and the feature packet arrived again: one
            # connection, one flag decision.
            self.sim.bus.incr("gfw.conn.reflag.suppressed")
            return
        ctx = DetectorContext(seg.payload, now=now, rng=self.rng, flow=flow)
        # Route through the batch entry (PR 5): for a single-context
        # batch every stage draws RNG identically to ``evaluate``, and
        # stages with vectorized batch paths get to use them.
        result = self.pipeline.evaluate_batch([ctx])[0]
        if not result.flagged:
            return
        self.flagged_connections += 1
        self.sim.bus.incr("gfw.conn.flagged")
        self.flow_table.note_flagged(key, now)
        self.reactions.on_verdict(
            Verdict(
                time=now,
                initiator_ip=flow.initiator_ip,
                initiator_port=flow.initiator_port,
                responder_ip=flow.responder_ip,
                responder_port=flow.responder_port,
                length=len(seg.payload),
                flagged=True,
                score=result.score,
                stage=result.stage,
                protocol=result.protocol,
            ),
            flow,
            seg.payload,
        )

    # ----------------------------------------------- back-compat shortcuts

    @property
    def scheduler(self):
        return self.reactions.scheduler

    @property
    def blocking(self):
        return self.reactions.blocking

    @property
    def probe_log(self):
        return self.runner.log

    @property
    def flows(self):
        return self.flow_table.flows

    @property
    def inspected_connections(self) -> int:
        return self.flow_table.opened

    @property
    def evicted_flows(self) -> int:
        return self.flow_table.evicted

    @property
    def flow_idle_timeout(self) -> Optional[float]:
        return self.flow_table.idle_timeout

    @property
    def max_flows(self) -> int:
        return self.flow_table.max_flows

    @property
    def flag_dedup_window(self) -> float:
        return self.flow_table.flag_dedup_window

    @property
    def _track_calls(self) -> int:
        return self.flow_table._track_calls

    @_track_calls.setter
    def _track_calls(self, value: int) -> None:
        self.flow_table._track_calls = value
