"""The Great Firewall as an on-path middlebox.

Ties the pieces together: flow tracking on border-crossing traffic, the
passive length/entropy detector, the staged probe scheduler driving the
prober fleet, and the blocking module.  Triggering is bidirectional
(§4.2): the initiator may be on either side of the border.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.capture import Capture
from ..net.host import Host
from ..net.ipaddr import ip_to_int, parse_cidr
from ..net.network import Middlebox, Network
from ..net.packet import Flags, Segment
from .blocking import BlockingModule, BlockingPolicy
from .delays import ReplayDelayModel
from .detector import DetectorConfig, PassiveDetector
from .fleet import FleetConfig, ProberFleet
from .probes import ProbeForge
from .prober import ProberRunner
from .scheduler import ProbeScheduler, SchedulerConfig

__all__ = ["GreatFirewall", "FlowState"]

FLEET_HOST_IP = "100.64.0.1"  # the fleet's anchor address (never a probe source)


@dataclass
class FlowState:
    initiator_ip: str
    initiator_port: int
    responder_ip: str
    responder_port: int
    saw_initiator_data: bool = False
    saw_responder_data: bool = False
    last_seen: float = 0.0


class GreatFirewall(Middlebox):
    """On-path censor: detect, probe, block."""

    def __init__(
        self,
        sim,
        network: Network,
        inside_cidrs: List[str],
        *,
        rng: Optional[random.Random] = None,
        detector_config: Optional[DetectorConfig] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        fleet_config: Optional[FleetConfig] = None,
        blocking_policy: Optional[BlockingPolicy] = None,
        flow_idle_timeout: Optional[float] = None,
        max_flows: int = 1 << 18,
        inside_cache_max: int = 1 << 16,
    ):
        self.sim = sim
        self.network = network
        self.inside_cidrs = list(inside_cidrs)
        # Precompile the border predicate: it runs on every segment.
        self._inside_masks = []
        for cidr in self.inside_cidrs:
            base, prefix = parse_cidr(cidr)
            mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
            self._inside_masks.append((base, mask))
        self._inside_cache: Dict[str, bool] = {}
        self.rng = rng or random.Random(0x6F0)

        self.detector = PassiveDetector(detector_config)
        self.fleet_host = Host(sim, network, FLEET_HOST_IP, "gfw-fleet",
                               rng=random.Random(self.rng.randrange(1 << 30)))
        self.fleet = ProberFleet(self.fleet_host,
                                 rng=random.Random(self.rng.randrange(1 << 30)),
                                 config=fleet_config)
        self.runner = ProberRunner(self.fleet,
                                   rng=random.Random(self.rng.randrange(1 << 30)))
        self.forge = ProbeForge(random.Random(self.rng.randrange(1 << 30)))
        self.scheduler = ProbeScheduler(
            self.runner,
            forge=self.forge,
            delay_model=ReplayDelayModel(),
            rng=random.Random(self.rng.randrange(1 << 30)),
            config=scheduler_config,
        )
        self.blocking = BlockingModule(sim,
                                       rng=random.Random(self.rng.randrange(1 << 30)),
                                       policy=blocking_policy)
        self.scheduler.on_probe_result = self.blocking.consider

        self.flows: Dict[tuple, FlowState] = {}
        # Flow-table hygiene: flows that never see FIN/RST (SYN scans,
        # NR probes, half-open connections) must not accumulate forever
        # on multi-week runs.  ``max_flows`` is a hard count cap (the
        # oldest quartile is reclaimed when it is hit); setting
        # ``flow_idle_timeout`` (seconds) additionally sweeps flows idle
        # longer than that, amortized over tracked segments.
        self.flow_idle_timeout = flow_idle_timeout
        self.max_flows = max_flows
        self.inside_cache_max = inside_cache_max
        self._track_calls = 0
        self.evicted_flows = 0
        # Replay/retransmission hardening: connection keys whose feature
        # packet was already flagged recently, so a retransmitted SYN
        # recreating the flow entry cannot double-count the flag.
        self._flagged_recently: Dict[tuple, float] = {}
        self.flag_dedup_window = 60.0
        # Off by default: long experiments would otherwise accumulate
        # millions of records.  Enable for debugging.
        self.capture = Capture()
        self.capture.enabled = False
        self.flagged_connections = 0
        self.inspected_connections = 0
        self.dropped_segments = 0
        # Hook for tests/experiments: called on every flag decision.
        self.on_flag: Callable[[FlowState, bytes], None] = lambda flow, payload: None
        network.add_middlebox(self)

    # ------------------------------------------------------------- geometry

    def is_inside(self, ip: str) -> bool:
        cached = self._inside_cache.get(ip)
        if cached is None:
            value = ip_to_int(ip)
            cached = any((value & mask) == base for base, mask in self._inside_masks)
            if len(self._inside_cache) >= self.inside_cache_max:
                # Pure cache: dropping it costs recomputation, never
                # correctness, and bounds memory against address churn.
                self._inside_cache.clear()
                self.sim.bus.incr("gfw.cache.inside_cleared")
            self._inside_cache[ip] = cached
        return cached

    def crosses_border(self, seg: Segment) -> bool:
        return self.is_inside(seg.src_ip) != self.is_inside(seg.dst_ip)

    def _is_fleet_traffic(self, seg: Segment) -> bool:
        fleet_ips = self.fleet_host.extra_ips
        return (
            seg.src_ip == FLEET_HOST_IP or seg.dst_ip == FLEET_HOST_IP
            or seg.src_ip in fleet_ips or seg.dst_ip in fleet_ips
        )

    # ------------------------------------------------------------ main path

    def process(self, seg: Segment, network: Network) -> List[Segment]:
        if self.blocking.should_drop(seg):
            self.dropped_segments += 1
            self.sim.bus.incr("gfw.segment.dropped")
            return []
        if not self.crosses_border(seg) or self._is_fleet_traffic(seg):
            return [seg]
        self.capture.record(seg, self.sim.now, sent=False)
        self._track(seg)
        return [seg]

    # Amortization period (in tracked segments) for the idle-flow sweep.
    EVICTION_SWEEP_INTERVAL = 4096

    def _track(self, seg: Segment) -> None:
        self._track_calls += 1
        if self._track_calls % self.EVICTION_SWEEP_INTERVAL == 0:
            self._evict_idle_flows()
        key = seg.conn_key()
        flow = self.flows.get(key)
        if flow is None:
            if seg.is_syn:
                if len(self.flows) >= self.max_flows:
                    self._evict_oldest_flows()
                self.flows[key] = FlowState(
                    initiator_ip=seg.src_ip,
                    initiator_port=seg.src_port,
                    responder_ip=seg.dst_ip,
                    responder_port=seg.dst_port,
                    last_seen=self.sim.now,
                )
                self.inspected_connections += 1
                self.sim.bus.incr("gfw.flow.opened")
            return
        flow.last_seen = self.sim.now
        if seg.is_syn:
            # A SYN on a live flow is not a new connection.  On a lossy
            # network it is a retransmission (counted); on a reliable one
            # it can only be ephemeral-port reuse against a stale entry.
            if not self.network.reliable:
                self.sim.bus.incr("gfw.flow.syn.retransmit")
            return
        if seg.is_data:
            from_initiator = (
                (seg.src_ip, seg.src_port) == (flow.initiator_ip, flow.initiator_port)
            )
            if from_initiator and not flow.saw_initiator_data:
                flow.saw_initiator_data = True
                self._first_initiator_data(key, flow, seg)
            elif not from_initiator and not flow.saw_responder_data:
                flow.saw_responder_data = True
                self.scheduler.note_server_data(flow.responder_ip, flow.responder_port)
        if seg.has(Flags.RST) or seg.has(Flags.FIN):
            # Connection teardown: the feature packet (if any) has been
            # seen by now, so the flow entry can be reclaimed.
            del self.flows[key]

    def _first_initiator_data(self, key: tuple, flow: FlowState, seg: Segment) -> None:
        """The feature packet: first data from the connection's initiator."""
        flagged_at = self._flagged_recently.get(key)
        if flagged_at is not None and self.sim.now - flagged_at <= self.flag_dedup_window:
            # A retransmitted SYN re-created the flow entry after a
            # teardown and the feature packet arrived again: one
            # connection, one flag decision.
            self.sim.bus.incr("gfw.conn.reflag.suppressed")
            return
        if self.detector.inspect(seg.payload, self.rng):
            self.flagged_connections += 1
            self.sim.bus.incr("gfw.conn.flagged")
            self._flagged_recently[key] = self.sim.now
            bus = self.sim.bus
            if bus.wants_records:
                bus.emit("flow.flagged", {
                    "time": self.sim.now,
                    "initiator_ip": flow.initiator_ip,
                    "initiator_port": flow.initiator_port,
                    "responder_ip": flow.responder_ip,
                    "responder_port": flow.responder_port,
                    "length": len(seg.payload),
                })
            self.on_flag(flow, seg.payload)
            self.scheduler.on_flagged_connection(
                flow.responder_ip, flow.responder_port, seg.payload
            )

    # -------------------------------------------------- flow-table hygiene

    def _evict_idle_flows(self) -> None:
        """Reclaim flows idle past the timeout (and stale flag records)."""
        now = self.sim.now
        if self._flagged_recently:
            stale = [k for k, t in self._flagged_recently.items()
                     if now - t > self.flag_dedup_window]
            for k in stale:
                del self._flagged_recently[k]
        if self.flow_idle_timeout is None:
            return
        idle = [k for k, f in self.flows.items()
                if now - f.last_seen > self.flow_idle_timeout]
        for k in idle:
            del self.flows[k]
        if idle:
            self.evicted_flows += len(idle)
            self.sim.bus.incr("gfw.flow.evicted", len(idle))

    def _evict_oldest_flows(self) -> None:
        """Hard cap: reclaim the least-recently-seen quartile of the table."""
        victims = sorted(self.flows, key=lambda k: self.flows[k].last_seen)
        count = max(1, len(victims) // 4)
        for k in victims[:count]:
            del self.flows[k]
        self.evicted_flows += count
        self.sim.bus.incr("gfw.flow.evicted", count)

    # ------------------------------------------------------------ shortcuts

    @property
    def probe_log(self):
        return self.runner.log
