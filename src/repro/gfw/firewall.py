"""The Great Firewall as an on-path middlebox.

Ties the pieces together: flow tracking on border-crossing traffic, the
passive length/entropy detector, the staged probe scheduler driving the
prober fleet, and the blocking module.  Triggering is bidirectional
(§4.2): the initiator may be on either side of the border.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.capture import Capture
from ..net.host import Host
from ..net.ipaddr import ip_to_int, parse_cidr
from ..net.network import Middlebox, Network
from ..net.packet import Flags, Segment
from .blocking import BlockingModule, BlockingPolicy
from .delays import ReplayDelayModel
from .detector import DetectorConfig, PassiveDetector
from .fleet import FleetConfig, ProberFleet
from .probes import ProbeForge
from .prober import ProberRunner
from .scheduler import ProbeScheduler, SchedulerConfig

__all__ = ["GreatFirewall", "FlowState"]

FLEET_HOST_IP = "100.64.0.1"  # the fleet's anchor address (never a probe source)


@dataclass
class FlowState:
    initiator_ip: str
    initiator_port: int
    responder_ip: str
    responder_port: int
    saw_initiator_data: bool = False
    saw_responder_data: bool = False


class GreatFirewall(Middlebox):
    """On-path censor: detect, probe, block."""

    def __init__(
        self,
        sim,
        network: Network,
        inside_cidrs: List[str],
        *,
        rng: Optional[random.Random] = None,
        detector_config: Optional[DetectorConfig] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        fleet_config: Optional[FleetConfig] = None,
        blocking_policy: Optional[BlockingPolicy] = None,
    ):
        self.sim = sim
        self.network = network
        self.inside_cidrs = list(inside_cidrs)
        # Precompile the border predicate: it runs on every segment.
        self._inside_masks = []
        for cidr in self.inside_cidrs:
            base, prefix = parse_cidr(cidr)
            mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
            self._inside_masks.append((base, mask))
        self._inside_cache: Dict[str, bool] = {}
        self.rng = rng or random.Random(0x6F0)

        self.detector = PassiveDetector(detector_config)
        self.fleet_host = Host(sim, network, FLEET_HOST_IP, "gfw-fleet",
                               rng=random.Random(self.rng.randrange(1 << 30)))
        self.fleet = ProberFleet(self.fleet_host,
                                 rng=random.Random(self.rng.randrange(1 << 30)),
                                 config=fleet_config)
        self.runner = ProberRunner(self.fleet,
                                   rng=random.Random(self.rng.randrange(1 << 30)))
        self.forge = ProbeForge(random.Random(self.rng.randrange(1 << 30)))
        self.scheduler = ProbeScheduler(
            self.runner,
            forge=self.forge,
            delay_model=ReplayDelayModel(),
            rng=random.Random(self.rng.randrange(1 << 30)),
            config=scheduler_config,
        )
        self.blocking = BlockingModule(sim,
                                       rng=random.Random(self.rng.randrange(1 << 30)),
                                       policy=blocking_policy)
        self.scheduler.on_probe_result = self.blocking.consider

        self.flows: Dict[tuple, FlowState] = {}
        # Off by default: long experiments would otherwise accumulate
        # millions of records.  Enable for debugging.
        self.capture = Capture()
        self.capture.enabled = False
        self.flagged_connections = 0
        self.inspected_connections = 0
        self.dropped_segments = 0
        # Hook for tests/experiments: called on every flag decision.
        self.on_flag: Callable[[FlowState, bytes], None] = lambda flow, payload: None
        network.add_middlebox(self)

    # ------------------------------------------------------------- geometry

    def is_inside(self, ip: str) -> bool:
        cached = self._inside_cache.get(ip)
        if cached is None:
            value = ip_to_int(ip)
            cached = any((value & mask) == base for base, mask in self._inside_masks)
            self._inside_cache[ip] = cached
        return cached

    def crosses_border(self, seg: Segment) -> bool:
        return self.is_inside(seg.src_ip) != self.is_inside(seg.dst_ip)

    def _is_fleet_traffic(self, seg: Segment) -> bool:
        fleet_ips = self.fleet_host.extra_ips
        return (
            seg.src_ip == FLEET_HOST_IP or seg.dst_ip == FLEET_HOST_IP
            or seg.src_ip in fleet_ips or seg.dst_ip in fleet_ips
        )

    # ------------------------------------------------------------ main path

    def process(self, seg: Segment, network: Network) -> List[Segment]:
        if self.blocking.should_drop(seg):
            self.dropped_segments += 1
            self.sim.bus.incr("gfw.segment.dropped")
            return []
        if not self.crosses_border(seg) or self._is_fleet_traffic(seg):
            return [seg]
        self.capture.record(seg, self.sim.now, sent=False)
        self._track(seg)
        return [seg]

    def _track(self, seg: Segment) -> None:
        key = seg.conn_key()
        flow = self.flows.get(key)
        if flow is None:
            if seg.is_syn:
                self.flows[key] = FlowState(
                    initiator_ip=seg.src_ip,
                    initiator_port=seg.src_port,
                    responder_ip=seg.dst_ip,
                    responder_port=seg.dst_port,
                )
                self.inspected_connections += 1
                self.sim.bus.incr("gfw.flow.opened")
            return
        if seg.is_data:
            from_initiator = (
                (seg.src_ip, seg.src_port) == (flow.initiator_ip, flow.initiator_port)
            )
            if from_initiator and not flow.saw_initiator_data:
                flow.saw_initiator_data = True
                self._first_initiator_data(flow, seg)
            elif not from_initiator and not flow.saw_responder_data:
                flow.saw_responder_data = True
                self.scheduler.note_server_data(flow.responder_ip, flow.responder_port)
        if seg.has(Flags.RST) or seg.has(Flags.FIN):
            # Connection teardown: the feature packet (if any) has been
            # seen by now, so the flow entry can be reclaimed.
            del self.flows[key]

    def _first_initiator_data(self, flow: FlowState, seg: Segment) -> None:
        """The feature packet: first data from the connection's initiator."""
        if self.detector.inspect(seg.payload, self.rng):
            self.flagged_connections += 1
            self.sim.bus.incr("gfw.conn.flagged")
            self.on_flag(flow, seg.payload)
            self.scheduler.on_flagged_connection(
                flow.responder_ip, flow.responder_port, seg.payload
            )

    # ------------------------------------------------------------ shortcuts

    @property
    def probe_log(self):
        return self.runner.log
