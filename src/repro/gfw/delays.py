"""Replay-delay model (Figure 7).

The measured CDF of the delay between a legitimate connection and the
replay probes derived from it:  >20% within 1 s, >50% within 1 min,
>75% within 15 min, minimum 0.28 s, maximum 569.55 h.  We reproduce the
distribution by piecewise log-linear interpolation between those anchor
quantiles, which by construction matches every figure callout.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

__all__ = ["ReplayDelayModel", "FIG7_ANCHORS"]

# (CDF value, delay seconds) anchors read off Figure 7 ("first replay" curve).
FIG7_ANCHORS: List[Tuple[float, float]] = [
    (0.00, 0.28),          # minimum observed delay
    (0.22, 1.0),           # >20% within one second
    (0.52, 60.0),          # >50% within one minute
    (0.77, 900.0),         # >75% within 15 minutes
    (0.85, 3600.0),        # 1 hour
    (0.93, 36000.0),       # 10 hours
    (1.00, 569.55 * 3600),  # maximum observed delay: 569.55 hours
]


class ReplayDelayModel:
    """Sampler for replay-probe delays."""

    def __init__(self, anchors: List[Tuple[float, float]] = None):
        self.anchors = list(anchors or FIG7_ANCHORS)
        if any(b[0] <= a[0] or b[1] <= a[1]
               for a, b in zip(self.anchors, self.anchors[1:])):
            raise ValueError("anchors must be strictly increasing in both axes")

    def sample(self, rng: random.Random) -> float:
        """Draw one delay in seconds."""
        u = rng.random()
        for (u0, d0), (u1, d1) in zip(self.anchors, self.anchors[1:]):
            if u <= u1:
                frac = (u - u0) / (u1 - u0)
                return math.exp(
                    math.log(d0) + frac * (math.log(d1) - math.log(d0))
                )
        return self.anchors[-1][1]

    def cdf(self, delay: float) -> float:
        """CDF of the model at a given delay (for verification)."""
        if delay <= self.anchors[0][1]:
            return 0.0
        for (u0, d0), (u1, d1) in zip(self.anchors, self.anchors[1:]):
            if delay <= d1:
                frac = (math.log(delay) - math.log(d0)) / (math.log(d1) - math.log(d0))
                return u0 + frac * (u1 - u0)
        return 1.0
