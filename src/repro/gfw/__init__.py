"""Model of the Great Firewall: passive detection, active probing, blocking."""

from .altdetectors import (
    DetectorEvaluation,
    EntropyClassifier,
    LengthDistributionClassifier,
    evaluate_detector,
)
from .blocking import SENSITIVE_PERIODS_2019, BlockEvent, BlockingModule, BlockingPolicy
from .delays import FIG7_ANCHORS, ReplayDelayModel
from .detector import DetectorConfig, PassiveDetector
from .entropy import shannon_entropy
from .firewall import FLEET_HOST_IP, FlowState, GreatFirewall
from .fleet import FleetConfig, ProberFleet, TsvalProcess
from .flowtable import FlowTable
from .probing import (
    ProbeBehavior,
    ShadowsocksProbeBehavior,
    TorProbeBehavior,
    behavior_kinds,
    build_behavior,
    register_behavior,
)
from .reaction import ReactionPolicy, Verdict
from .stages import (
    DetectorContext,
    DetectorStage,
    EntropyStage,
    LengthDistStage,
    PassiveStage,
    StageResult,
    TorStage,
    VmessStage,
    build_stage,
    register_stage,
    stage_kinds,
)
from .probes import (
    NR1_CENTERS,
    NR1_LENGTHS,
    NR2_LENGTH,
    NR3_LENGTHS,
    RANDOM_TYPES,
    REPLAY_TYPES,
    Probe,
    ProbeForge,
    ProbeType,
)
from .prober import ProbeRecord, ProberRunner, Reaction
from .scheduler import ProbeScheduler, SchedulerConfig, ServerProbeState

__all__ = [
    "BlockEvent",
    "BlockingModule",
    "BlockingPolicy",
    "DetectorConfig",
    "DetectorContext",
    "DetectorEvaluation",
    "DetectorStage",
    "EntropyClassifier",
    "EntropyStage",
    "FIG7_ANCHORS",
    "FLEET_HOST_IP",
    "FleetConfig",
    "FlowState",
    "FlowTable",
    "LengthDistStage",
    "LengthDistributionClassifier",
    "GreatFirewall",
    "NR1_CENTERS",
    "NR1_LENGTHS",
    "NR2_LENGTH",
    "NR3_LENGTHS",
    "PassiveDetector",
    "PassiveStage",
    "Probe",
    "ProbeBehavior",
    "ProbeForge",
    "ProbeRecord",
    "ProbeScheduler",
    "ProbeType",
    "ProberFleet",
    "ProberRunner",
    "RANDOM_TYPES",
    "REPLAY_TYPES",
    "Reaction",
    "ReactionPolicy",
    "ReplayDelayModel",
    "SENSITIVE_PERIODS_2019",
    "SchedulerConfig",
    "ServerProbeState",
    "ShadowsocksProbeBehavior",
    "StageResult",
    "TorProbeBehavior",
    "TorStage",
    "TsvalProcess",
    "Verdict",
    "VmessStage",
    "behavior_kinds",
    "build_behavior",
    "build_stage",
    "evaluate_detector",
    "register_behavior",
    "register_stage",
    "shannon_entropy",
    "stage_kinds",
]
