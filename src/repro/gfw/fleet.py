"""The prober fleet: thousands of source IPs, a handful of real processes.

Fingerprints reproduced from §3.3–§3.4:

* **IP pool** (Figure 3, Table 2, Table 3): probes come from a large,
  churning pool of Chinese addresses drawn from the Table 3 AS mix.
  New addresses keep appearing (≈24% of probes mint a fresh IP), but
  reuse is preferential, so >75% of addresses recur and the most common
  ones accumulate ~30–45 probes.
* **TCP timestamps** (Figure 6): despite the many IPs, TSvals fall on a
  small number of shared linear sequences — at least seven processes,
  six ticking at 250 Hz (one of which dominates) and one small cluster
  at ~1000 Hz.  Sequences wrap at 2^32.
* **Source ports** (Figure 5): ~90% in the Linux default ephemeral range
  32768–60999, the rest spread above 1024 (minimum observed 1212).
* **TTL**: probe SYNs arrive with TTL 46–50.
* **IP ID**: no discernible pattern (modeled as random).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.asdb import ASDatabase

__all__ = ["TsvalProcess", "ProberFleet", "FleetConfig"]


@dataclass
class TsvalProcess:
    """One centralized probing process with its own TSval clock."""

    name: str
    rate_hz: float
    offset: int  # TSval at simulation time 0

    def tsval_at(self, now: float) -> int:
        return int(self.offset + self.rate_hz * now) & 0xFFFFFFFF

    def source(self):
        """A per-connection tsval callable for TcpConnection."""
        return self.tsval_at


@dataclass
class FleetConfig:
    new_ip_probability: float = 0.237   # 12,300 unique IPs / 51,837 probes
    linux_port_share: float = 0.90
    min_port: int = 1024
    ttl_low: int = 46                   # arrival TTL range at the server
    ttl_high: int = 50
    initial_ttl: int = 64
    dominant_process_share: float = 0.80
    n_250hz_processes: int = 6
    probe_timeout_low: float = 5.0      # GFW probers give up in <10 s
    probe_timeout_high: float = 9.5
    process_share_1000hz: float = 0.002  # the tiny 22-probe 1000 Hz cluster


class ProberFleet:
    """Allocates prober identities (IP, port, TTL, TSval process)."""

    def __init__(self, host, rng: Optional[random.Random] = None,
                 config: Optional[FleetConfig] = None,
                 asdb: Optional[ASDatabase] = None):
        self.host = host
        self.rng = rng or random.Random(0xF1EE7)
        self.config = config or FleetConfig()
        self.asdb = asdb or ASDatabase()
        self._pool: List[str] = []            # pool of minted prober IPs
        self._use_counts: Dict[str, int] = {}
        self._hops: Dict[str, int] = {}
        self.processes = self._spawn_processes()

    def _spawn_processes(self) -> List[TsvalProcess]:
        procs = []
        for i in range(self.config.n_250hz_processes):
            procs.append(TsvalProcess(
                name=f"proc-250hz-{i}",
                rate_hz=250.0,
                offset=self.rng.randrange(1 << 32),
            ))
        procs.append(TsvalProcess(
            name="proc-1000hz-0",
            rate_hz=1009.0,  # the paper measures the small cluster at ~1009 Hz
            offset=self.rng.randrange(1 << 32),
        ))
        return procs

    # ------------------------------------------------------------ identity

    def pick_ip(self) -> str:
        """Mint-or-reuse (reproduces Figure 3 / Table 2).

        Reuse is uniform over the pool.  With mint probability p, the
        fraction of addresses used exactly once converges to p itself
        (~24%), giving the paper's ">75% of addresses sent more than one
        probe", and the earliest-minted addresses accumulate
        O(((1-p)/p)·ln(pool)) ≈ 30-45 probes — the Table 2 head.
        """
        if not self._pool or self.rng.random() < self.config.new_ip_probability:
            ip = self._mint_ip()
        else:
            ip = self.rng.choice(self._pool)
        self._use_counts[ip] += 1
        return ip

    def _mint_ip(self) -> str:
        while True:
            ip = self.asdb.sample_ip(self.rng)
            if ip not in self._use_counts:
                break
        self._pool.append(ip)
        self._use_counts[ip] = 0
        self.host.network.register_extra_ip(self.host, ip)
        # Path length fixed per address so its arrival TTL is stable.
        hops = self.config.initial_ttl - self.rng.randint(
            self.config.ttl_low, self.config.ttl_high
        )
        self._hops[ip] = hops
        self.host.network.set_hops(ip, "*", hops)
        return ip

    def hops_for(self, ip: str) -> int:
        return self._hops[ip]

    def pick_port(self) -> int:
        if self.rng.random() < self.config.linux_port_share:
            return self.rng.randint(32768, 60999)
        # Outside the Linux default range but never below 1024.
        while True:
            port = self.rng.randint(self.config.min_port, 65237)
            if not 32768 <= port <= 60999:
                return port

    def pick_process(self) -> TsvalProcess:
        roll = self.rng.random()
        if roll < self.config.process_share_1000hz:
            return self.processes[-1]
        if roll < self.config.process_share_1000hz + self.config.dominant_process_share:
            return self.processes[0]
        return self.rng.choice(self.processes[1:-1])

    def pick_timeout(self) -> float:
        return self.rng.uniform(self.config.probe_timeout_low,
                                self.config.probe_timeout_high)

    @property
    def unique_ips(self) -> int:
        return len(self._pool)

    @property
    def use_counts(self) -> Dict[str, int]:
        return dict(self._use_counts)
