"""Shannon entropy of packet payloads (bits per byte).

The GFW's passive detector uses the entropy of the first data packet in
a connection as one of its two features (§4.2, Figure 9).
"""

from __future__ import annotations

import math
from collections import Counter

__all__ = ["shannon_entropy"]


def shannon_entropy(data: bytes) -> float:
    """Per-byte Shannon entropy, in bits (0.0 for empty/uniform input)."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy
