"""Shannon entropy of packet payloads (bits per byte).

The GFW's passive detector uses the entropy of the first data packet in
a connection as one of its two features (§4.2, Figure 9).
"""

from __future__ import annotations

import math
from collections import Counter

__all__ = ["shannon_entropy"]

# Memoized -p*log2(p) terms keyed on (count, total).  Feature packets
# cluster around a handful of lengths with small per-byte counts, so the
# same terms recur across connections; caching them skips most log2
# calls while leaving the result bit-identical (same count/total -> same
# float, and the summation order below is unchanged).  Bounded: cleared
# wholesale if pathological inputs ever grow it past the cap.
_PLOGP_CACHE: dict = {}
_PLOGP_CACHE_MAX = 1 << 16

# Whole-payload memo.  Long-horizon and repeated seeded runs feed the
# detector the *same* feature packets over and over (the AEAD record
# memo means identical plaintext records reseal to identical ciphertext
# within a process), so the byte string itself is the natural cache key;
# a hit skips the O(n) histogram outright.  Same input -> same cached
# float, so results are bit-identical by construction.
_ENTROPY_CACHE: dict = {}
_ENTROPY_CACHE_MAX = 1 << 12


def shannon_entropy(data: bytes) -> float:
    """Per-byte Shannon entropy, in bits (0.0 for empty/uniform input)."""
    if not data:
        return 0.0
    cached = _ENTROPY_CACHE.get(data)
    if cached is not None:
        return cached
    counts = Counter(data)
    total = len(data)
    entropy = 0.0
    cache = _PLOGP_CACHE
    cache_get = cache.get
    for count in counts.values():
        term = cache_get((count, total))
        if term is None:
            p = count / total
            term = p * math.log2(p)
            if len(cache) >= _PLOGP_CACHE_MAX:
                cache.clear()
            cache[(count, total)] = term
        entropy -= term
    if len(_ENTROPY_CACHE) >= _ENTROPY_CACHE_MAX:
        _ENTROPY_CACHE.clear()
    _ENTROPY_CACHE[data] = entropy
    return entropy
