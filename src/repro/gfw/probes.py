"""The GFW's seven probe types (§3.2), plus the extra types of §4.2.

Replay-based (payload derived from a recorded legitimate first packet):

* **R1** — identical replay
* **R2** — replay with byte 0 changed
* **R3** — replay with bytes 0–7 and 62–63 changed
* **R4** — replay with byte 16 changed
* **R5** — replay with bytes 6 and 16 changed
* **R6** — replay with bytes 16–32 changed (seen only in Exp 1.b)

Seemingly random:

* **NR1** — lengths in trios (n−1, n, n+1) for n ∈ {8,12,16,22,33,41,49}
* **NR2** — exactly 221 bytes
* **NR3** — occasional lengths {53, 56, 169, 180, 402} (sink experiments)

The NR1 trios bracket reaction thresholds of stream-cipher servers: IV
lengths 8/12/16 and the shortest complete target specs at IV+7
(15/22/23…); see §5.2.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..randutil import byte_draws

__all__ = ["ProbeType", "Probe", "ProbeForge", "NR1_CENTERS", "NR1_LENGTHS",
           "NR2_LENGTH", "NR3_LENGTHS", "REPLAY_TYPES", "RANDOM_TYPES"]

NR1_CENTERS = (8, 12, 16, 22, 33, 41, 49)
NR1_LENGTHS = tuple(sorted(n + d for n in NR1_CENTERS for d in (-1, 0, 1)))
NR2_LENGTH = 221
NR3_LENGTHS = (53, 56, 169, 180, 402)


class ProbeType:
    R1 = "R1"
    R2 = "R2"
    R3 = "R3"
    R4 = "R4"
    R5 = "R5"
    R6 = "R6"
    NR1 = "NR1"
    NR2 = "NR2"
    NR3 = "NR3"
    # Tor active-probing battery (Winter & Lindskog): uniformly random
    # "garbage binary" probes and a forged Tor VERSIONS handshake.
    GARBAGE = "GARBAGE"
    TORH = "TORH"


REPLAY_TYPES = (ProbeType.R1, ProbeType.R2, ProbeType.R3, ProbeType.R4,
                ProbeType.R5, ProbeType.R6)
RANDOM_TYPES = (ProbeType.NR1, ProbeType.NR2, ProbeType.NR3, ProbeType.GARBAGE)

# Byte offsets each byte-changed replay type mutates.
_MUTATIONS = {
    ProbeType.R2: (0,),
    ProbeType.R3: tuple(range(0, 8)) + (62, 63),
    ProbeType.R4: (16,),
    ProbeType.R5: (6, 16),
    ProbeType.R6: tuple(range(16, 33)),
}


@dataclass
class Probe:
    """One forged probe payload, ready to be sent."""

    probe_type: str
    payload: bytes
    # For replay types: the payload that was replayed.
    source_payload: Optional[bytes] = None
    mutated_offsets: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def is_replay(self) -> bool:
        return self.probe_type in REPLAY_TYPES


class ProbeForge:
    """Constructs probe payloads the way the GFW does."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0x6F57)

    # ------------------------------------------------------------- replays

    def replay(self, payload: bytes, probe_type: str = ProbeType.R1) -> Probe:
        """Forge a replay probe of the given type from a recorded payload."""
        if probe_type == ProbeType.R1:
            return Probe(ProbeType.R1, payload, source_payload=payload)
        offsets = _MUTATIONS.get(probe_type)
        if offsets is None:
            raise ValueError(f"{probe_type} is not a replay probe type")
        mutated = bytearray(payload)
        applied = []
        for off in offsets:
            if off >= len(mutated):
                continue  # short payloads simply lack the high offsets
            original = mutated[off]
            new = self.rng.randrange(256)
            while new == original:
                new = self.rng.randrange(256)
            mutated[off] = new
            applied.append(off)
        return Probe(probe_type, bytes(mutated), source_payload=payload,
                     mutated_offsets=tuple(applied))

    # ------------------------------------------------------- random probes

    def random_payload(self, length: int) -> bytes:
        return byte_draws(self.rng, length)

    def nr1(self, length: Optional[int] = None) -> Probe:
        """An NR1 probe; length drawn uniformly from the trios if not given."""
        if length is None:
            length = self.rng.choice(NR1_LENGTHS)
        elif length not in NR1_LENGTHS:
            raise ValueError(f"{length} is not an NR1 length")
        return Probe(ProbeType.NR1, self.random_payload(length))

    def nr2(self) -> Probe:
        return Probe(ProbeType.NR2, self.random_payload(NR2_LENGTH))

    def nr3(self, length: Optional[int] = None) -> Probe:
        if length is None:
            length = self.rng.choice(NR3_LENGTHS)
        elif length not in NR3_LENGTHS:
            raise ValueError(f"{length} is not an NR3 length")
        return Probe(ProbeType.NR3, self.random_payload(length))

    # --------------------------------------------- Tor active-probing forge

    def garbage(self, length: Optional[int] = None) -> Probe:
        """A garbage binary probe: uniformly random bytes, random length.

        Winter & Lindskog observed the GFW opening connections to
        suspected bridges and sending short bursts of random binary data
        before (or instead of) speaking the Tor protocol.
        """
        if length is None:
            length = self.rng.randint(64, 256)
        return Probe(ProbeType.GARBAGE, self.random_payload(length))

    def tor_handshake(self) -> Probe:
        """A forged Tor VERSIONS cell, the GFW's bridge-confirmation probe."""
        from ..obfs.wire import tor_versions_cell

        return Probe(ProbeType.TORH, tor_versions_cell())

    def random_probe_battery(self) -> List[Probe]:
        """One full sweep of NR1 lengths plus an NR2 (as in Figure 2)."""
        probes = [self.nr1(length) for length in NR1_LENGTHS]
        probes.append(self.nr2())
        return probes
