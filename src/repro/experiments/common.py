"""Deprecated shim: world-building lives in :mod:`repro.runtime.topology`.

The experiment modules and external callers historically imported
``build_world`` and friends from here; the canonical implementation
moved into the runtime layer so scenarios and experiments share one
topology helper instead of two drifting copies.  Importing this module
now raises a :class:`DeprecationWarning`; switch to
:mod:`repro.runtime.topology` (same names, same behaviour).
"""

from __future__ import annotations

import warnings

from ..runtime.topology import (
    CHINA_CIDRS,
    CLIENT_SUBNET_BEIJING,
    CLIENT_SUBNET_RESIDENTIAL,
    FLEET_BLOCK,
    SERVER_SUBNET_UK,
    SERVER_SUBNET_US,
    WEB_SUBNET,
    World,
    build_world,
    settle,
    subnet_prefix,
)

__all__ = ["CHINA_CIDRS", "World", "build_world", "settle", "subnet_prefix"]

warnings.warn(
    "repro.experiments.common is deprecated; import from "
    "repro.runtime.topology instead",
    DeprecationWarning,
    stacklevel=2,
)
