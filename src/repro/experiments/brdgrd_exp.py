"""The §7.1 brdgrd experiment (Figure 11).

A Shadowsocks client makes 16 connections to its server every 5 minutes;
brdgrd on the server side is toggled on and off on a schedule.  The
observable is the rate of prober SYNs reaching the server per hour:
probing collapses within hours of enabling brdgrd and resumes when it is
disabled.  A control server (no brdgrd) keeps receiving probes
throughout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis import AnalysisPipeline, Analyzer, ProbeSynTimes
from ..defense import Brdgrd
from ..gfw import DetectorConfig
from ..runtime.topology import World, build_world, settle
from ..protocols import build_protocol
from ..workloads import CurlDriver

__all__ = ["BrdgrdExperimentConfig", "BrdgrdExperimentResult",
           "run_brdgrd_experiment"]


@dataclass
class BrdgrdExperimentConfig:
    seed: int = 0
    # The paper ran 403 hours of 16 connections / 5 minutes; the default
    # here is a 60-hour, 4-connections / 10-minutes rendition that keeps a
    # pure-Python run fast.  Scale up for paper-sized output.
    duration: float = 60 * 3600.0
    burst_size: int = 4
    burst_interval: float = 600.0
    # [start, end) windows (seconds) during which brdgrd is enabled.
    brdgrd_windows: Tuple[Tuple[float, float], ...] = (
        (15 * 3600.0, 30 * 3600.0),
        (40 * 3600.0, 50 * 3600.0),
    )
    method: str = "chacha20-ietf-poly1305"
    profile: str = "outline-1.0.7"
    base_rate: float = 0.6
    # Detector-stage spec (repro.gfw.stages); None = passive classifier.
    detectors: Optional[Any] = None
    server_port: int = 8388
    with_control: bool = True
    stream_captures: bool = False


def declared_analyzers(
    config: BrdgrdExperimentConfig,
    guarded_client_ip: str,
    control_client_ip: str = "",
) -> Dict[str, Analyzer]:
    """One SYN-time analyzer per tapped server capture.

    The control analyzer exists even without a control server; with no
    capture routed to it, it reports zero counts (as the legacy batch
    path did for an absent control).
    """
    return {
        "guarded": ProbeSynTimes(client_ip=guarded_client_ip,
                                 duration=config.duration,
                                 windows=config.brdgrd_windows),
        "control": ProbeSynTimes(client_ip=control_client_ip,
                                 duration=config.duration, windows=()),
    }


@dataclass
class BrdgrdExperimentResult:
    world: World
    config: BrdgrdExperimentConfig
    probe_syn_times: List[float]            # at the brdgrd-guarded server
    control_syn_times: List[float]
    pipeline: AnalysisPipeline

    def hourly_counts(self, times: Optional[List[float]] = None) -> List[int]:
        times = self.probe_syn_times if times is None else times
        hours = int(self.config.duration // 3600) + 1
        counts = [0] * hours
        for t in times:
            if t < self.config.duration:
                counts[int(t // 3600)] += 1
        return counts

    def window_rates(self) -> Tuple[float, float]:
        """(probes/hour while brdgrd active, probes/hour while inactive)."""
        active_seconds = sum(end - start for start, end in self.config.brdgrd_windows)
        inactive_seconds = self.config.duration - active_seconds

        def in_window(t: float) -> bool:
            return any(start <= t < end for start, end in self.config.brdgrd_windows)

        active = sum(1 for t in self.probe_syn_times if in_window(t))
        inactive = sum(1 for t in self.probe_syn_times
                       if t < self.config.duration and not in_window(t))
        return (
            active / (active_seconds / 3600.0) if active_seconds else 0.0,
            inactive / (inactive_seconds / 3600.0) if inactive_seconds else 0.0,
        )


def run_brdgrd_experiment(config: Optional[BrdgrdExperimentConfig] = None,
                          ) -> BrdgrdExperimentResult:
    config = config or BrdgrdExperimentConfig()
    world = build_world(
        seed=config.seed,
        detector_config=DetectorConfig(base_rate=config.base_rate),
        detectors=config.detectors,
        websites=["www.wikipedia.org", "example.com", "gfw.report"],
        stream_captures=config.stream_captures,
    )
    rng = random.Random(config.seed + 3)

    def deploy(name: str, residential: bool) -> CurlDriver:
        server_host = world.add_server(f"{name}-server", region="uk")
        client_host = world.add_client(f"{name}-client", residential=residential)
        proto = build_protocol({"kind": "shadowsocks",
                                "password": f"pw-{name}",
                                "method": config.method,
                                "profile": config.profile})
        proto.make_server(server_host, config.server_port,
                          rng=random.Random(rng.randrange(1 << 30)))
        client = proto.make_client(client_host, server_host.ip,
                                   config.server_port,
                                   rng=random.Random(rng.randrange(1 << 30)))
        return CurlDriver(client, rng=random.Random(rng.randrange(1 << 30)))

    main_driver = deploy("guarded", residential=False)
    guarded_ip = world.hosts["guarded-server"].ip
    guard = Brdgrd(guarded_ip, config.server_port,
                   rng=random.Random(config.seed + 9), active=False)
    world.net.add_middlebox(guard)
    for start, end in config.brdgrd_windows:
        world.sim.schedule(start, guard.enable)
        world.sim.schedule(end, guard.disable)

    control_driver = deploy("control", residential=False) if config.with_control else None

    pipeline = AnalysisPipeline(declared_analyzers(
        config,
        world.hosts["guarded-client"].ip,
        world.hosts["control-client"].ip if config.with_control else "",
    ))
    pipeline.attach(world.bus)
    pipeline.tap_capture(world.hosts["guarded-server"].capture,
                         host="guarded-server", names=["guarded"])
    if config.with_control:
        pipeline.tap_capture(world.hosts["control-server"].capture,
                             host="control-server", names=["control"])

    n_bursts = int(config.duration // config.burst_interval)
    for burst in range(n_bursts):
        t = burst * config.burst_interval
        for i in range(config.burst_size):
            world.sim.schedule(t + i * 0.5, main_driver.fetch_once)
            if control_driver is not None:
                world.sim.schedule(t + i * 0.5 + 0.25, control_driver.fetch_once)

    settle(world, config.duration, drain=1.1)

    guarded = pipeline.analyzers["guarded"]
    control = pipeline.analyzers["control"]
    assert isinstance(guarded, ProbeSynTimes)
    assert isinstance(control, ProbeSynTimes)

    return BrdgrdExperimentResult(
        world=world,
        config=config,
        probe_syn_times=list(guarded.times),
        control_syn_times=list(control.times),
        pipeline=pipeline,
    )
