"""Turn-key harnesses for every experiment in the paper."""

from .blocking_exp import (
    BlockingExperimentConfig,
    BlockingExperimentResult,
    run_blocking_experiment,
)
from .brdgrd_exp import (
    BrdgrdExperimentConfig,
    BrdgrdExperimentResult,
    run_brdgrd_experiment,
)
from ..runtime.topology import CHINA_CIDRS, World, build_world, settle
from .shadowsocks_exp import (
    ShadowsocksExperimentConfig,
    ShadowsocksExperimentResult,
    run_shadowsocks_experiment,
)
from .sink_exp import (
    SinkExperimentConfig,
    SinkExperimentResult,
    TABLE4_EXPERIMENTS,
    run_sink_experiment,
)

__all__ = [
    "BlockingExperimentConfig",
    "BlockingExperimentResult",
    "BrdgrdExperimentConfig",
    "BrdgrdExperimentResult",
    "CHINA_CIDRS",
    "ShadowsocksExperimentConfig",
    "ShadowsocksExperimentResult",
    "SinkExperimentConfig",
    "SinkExperimentResult",
    "TABLE4_EXPERIMENTS",
    "World",
    "build_world",
    "run_blocking_experiment",
    "run_brdgrd_experiment",
    "run_shadowsocks_experiment",
    "run_sink_experiment",
    "settle",
]
