"""The §6 blocking observations.

Deploys a fleet of vantage-point servers running different Shadowsocks
implementations (as the paper did across 63 vantage points), turns on a
human-gated blocking policy with politically sensitive windows, and
records which servers end up blocked, how (by port or by IP), and when
they lapse back to reachability.

The paper's key §6 observations this harness reproduces:

* intensive probing, yet few servers blocked;
* the blocked servers ran ShadowsocksR / Shadowsocks-python — the
  replay-vulnerable implementations that confirm fastest;
* blocking is unidirectional (server->client);
* unblocking happens silently after a week-plus, with no recheck probes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis import (
    AnalysisPipeline,
    Analyzer,
    BlockEvents,
    FlaggedConnections,
    ProbeTally,
)
from ..gfw import BlockEvent, BlockingPolicy, DetectorConfig
from ..runtime.topology import World, build_world, settle
from ..protocols import build_protocol
from ..workloads import CurlDriver

__all__ = ["BlockingExperimentConfig", "BlockingExperimentResult",
           "run_blocking_experiment"]

# (profile, method) mix for the vantage fleet; weighted toward the robust
# implementations, as in the paper's deployment.
DEFAULT_FLEET: Tuple[Tuple[str, str], ...] = (
    ("ss-libev-3.1.3", "chacha20-ietf-poly1305"),
    ("ss-libev-3.3.1", "aes-256-gcm"),
    ("ss-libev-3.3.1", "chacha20-ietf-poly1305"),
    ("outline-1.0.7", "chacha20-ietf-poly1305"),
    ("outline-1.0.8", "chacha20-ietf-poly1305"),
    ("ssr", "aes-256-ctr"),
    ("ss-python", "rc4-md5"),
    ("ss-libev-3.3.3", "aes-256-gcm"),
)


@dataclass
class BlockingExperimentConfig:
    seed: int = 0
    fleet: Tuple[Tuple[str, str], ...] = DEFAULT_FLEET
    connections_per_server: int = 150
    duration: float = 6 * 24 * 3600.0
    sensitive_periods: Tuple[Tuple[float, float], ...] = (
        (2 * 24 * 3600.0, 3 * 24 * 3600.0),   # a politically sensitive day
    )
    block_probability: float = 0.25
    unblock_after: float = 8 * 24 * 3600.0
    base_rate: float = 0.6
    # Detector-stage spec (repro.gfw.stages); None = passive classifier.
    detectors: Optional[Any] = None
    server_port: int = 8388
    stream_captures: bool = False


def declared_analyzers(config: BlockingExperimentConfig) -> Dict[str, Analyzer]:
    return {
        "probes": ProbeTally(),
        "flagged": FlaggedConnections(),
        "blocks": BlockEvents(),
    }


@dataclass
class BlockingExperimentResult:
    world: World
    config: BlockingExperimentConfig
    block_events: List[BlockEvent]
    server_profiles: Dict[str, str]           # server IP -> profile name
    probes_per_server: Dict[str, int]
    pipeline: AnalysisPipeline

    @property
    def blocked_profiles(self) -> List[str]:
        return [self.server_profiles[e.ip] for e in self.block_events
                if e.ip in self.server_profiles]

    @property
    def blocked_fraction(self) -> float:
        blocked_ips = {e.ip for e in self.block_events}
        return len(blocked_ips) / len(self.server_profiles)


def run_blocking_experiment(config: Optional[BlockingExperimentConfig] = None,
                            ) -> BlockingExperimentResult:
    config = config or BlockingExperimentConfig()
    policy = BlockingPolicy(
        human_gated=True,
        sensitive_periods=list(config.sensitive_periods),
        block_probability=config.block_probability,
        unblock_after=config.unblock_after,
    )
    world = build_world(
        seed=config.seed,
        detector_config=DetectorConfig(base_rate=config.base_rate),
        detectors=config.detectors,
        blocking_policy=policy,
        websites=["www.wikipedia.org", "example.com", "gfw.report"],
        stream_captures=config.stream_captures,
    )
    pipeline = AnalysisPipeline(declared_analyzers(config))
    pipeline.attach(world.bus)
    rng = random.Random(config.seed + 1)
    server_profiles: Dict[str, str] = {}

    interval = config.duration / max(1, config.connections_per_server)
    for index, (profile, method) in enumerate(config.fleet):
        server_host = world.add_server(f"vp{index}-server", region="uk")
        client_host = world.add_client(f"vp{index}-client")
        proto = build_protocol({"kind": "shadowsocks", "password": f"pw{index}",
                                "method": method, "profile": profile})
        proto.make_server(server_host, config.server_port,
                          rng=random.Random(rng.randrange(1 << 30)))
        client = proto.make_client(client_host, server_host.ip,
                                   config.server_port,
                                   rng=random.Random(rng.randrange(1 << 30)))
        driver = CurlDriver(client, rng=random.Random(rng.randrange(1 << 30)))
        driver.run_schedule(config.connections_per_server, interval,
                            start=rng.uniform(0, interval))
        server_profiles[server_host.ip] = profile

    settle(world, config.duration, drain=1.0)

    probes = pipeline.analyzers["probes"]
    assert isinstance(probes, ProbeTally)

    return BlockingExperimentResult(
        world=world,
        config=config,
        block_events=list(world.gfw.blocking.events),
        server_profiles=server_profiles,
        probes_per_server=dict(probes.by_server),
        pipeline=pipeline,
    )
