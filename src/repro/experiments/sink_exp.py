"""The §4.1 random-data experiments (Table 4, Figures 8 and 9).

A bare TCP client in Beijing sends single data packets of controlled
(length, entropy) to a bare server in the US, which either swallows
everything ("sink") or answers probers ("responding").  No Shadowsocks
anywhere — the point of §4 is that the GFW triggers on the *shape* of the
first data packet alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis import (
    AnalysisPipeline,
    Analyzer,
    FlaggedConnections,
    ProbeTally,
    RandomDataStats,
)
from ..gfw import DetectorConfig, ProbeRecord, shannon_entropy
from ..runtime.topology import World, build_world, settle
from ..workloads import RandomDataClient, RespondingServer, SinkServer

__all__ = ["SinkExperimentConfig", "SinkExperimentResult", "run_sink_experiment",
           "TABLE4_EXPERIMENTS"]

# Table 4, verbatim: experiment id -> (length range, entropy range, mode).
TABLE4_EXPERIMENTS: Dict[str, dict] = {
    "1.a": {"length_range": (1, 1000), "entropy_range": (7.0, 8.0), "mode": "sink"},
    "1.b": {"length_range": (1, 1000), "entropy_range": (7.0, 8.0), "mode": "responding"},
    "2":   {"length_range": (1, 1000), "entropy_range": (0.0, 2.0), "mode": "sink"},
    "3":   {"length_range": (1, 2000), "entropy_range": (0.0, 8.0), "mode": "sink"},
}


@dataclass
class SinkExperimentConfig:
    seed: int = 0
    mode: str = "sink"                      # "sink" | "responding" | "switch"
    length_range: Tuple[int, int] = (1, 1000)
    entropy_range: Tuple[float, float] = (7.0, 8.0)
    connections: int = 4000
    duration: float = 48 * 3600.0
    # After this many seconds, "switch" mode turns the sink into a responder
    # (the Exp 1.a -> 1.b transition at 310 hours).
    switch_after: Optional[float] = None
    base_rate: float = 0.5                   # boosted; see DetectorConfig
    # Detector-stage spec (repro.gfw.stages); None = passive classifier.
    detectors: Optional[Any] = None
    server_port: int = 9000
    stream_captures: bool = False

    @classmethod
    def table4(cls, experiment: str, **overrides) -> "SinkExperimentConfig":
        params = dict(TABLE4_EXPERIMENTS[experiment])
        params.update(overrides)
        return cls(**params)


def declared_analyzers(config: SinkExperimentConfig) -> Dict[str, Analyzer]:
    return {
        "probes": ProbeTally(),
        "flagged": FlaggedConnections(),
        "random_data": RandomDataStats(bins=8),
    }


@dataclass
class SinkExperimentResult:
    world: World
    config: SinkExperimentConfig
    probe_log: List[ProbeRecord]
    sent_payloads: List[Tuple[float, bytes]]
    pipeline: AnalysisPipeline

    @property
    def trigger_lengths(self) -> List[int]:
        return [len(p) for _, p in self.sent_payloads]

    def replay_records(self) -> List[ProbeRecord]:
        return [r for r in self.probe_log if r.probe.is_replay]

    def replay_lengths(self, types: Optional[Tuple[str, ...]] = None) -> List[int]:
        return [
            len(r.probe.payload) for r in self.replay_records()
            if types is None or r.probe_type in types
        ]

    def probes_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.probe_log:
            counts[r.probe_type] = counts.get(r.probe_type, 0) + 1
        return counts

    def replay_ratio_by_entropy(self, bins: int = 8) -> List[Tuple[float, float]]:
        """Figure 9: (bin center, replays per legitimate connection)."""
        legit = [0] * bins
        replays = [0] * bins

        def bin_of(h: float) -> int:
            return min(bins - 1, int(h / 8.0 * bins))

        entropy_of: Dict[bytes, float] = {}
        for _, payload in self.sent_payloads:
            h = shannon_entropy(payload)
            entropy_of[payload] = h
            legit[bin_of(h)] += 1
        for record in self.replay_records():
            source = record.probe.source_payload
            if source is None:
                continue
            h = entropy_of.get(source)
            if h is None:
                h = shannon_entropy(source)
            replays[bin_of(h)] += 1
        out = []
        for i in range(bins):
            center = (i + 0.5) * 8.0 / bins
            ratio = replays[i] / legit[i] if legit[i] else 0.0
            out.append((center, ratio))
        return out


def run_sink_experiment(config: Optional[SinkExperimentConfig] = None,
                        ) -> SinkExperimentResult:
    config = config or SinkExperimentConfig()
    if config.mode not in ("sink", "responding", "switch"):
        raise ValueError(f"bad mode {config.mode!r}")
    world = build_world(
        seed=config.seed,
        detector_config=DetectorConfig(base_rate=config.base_rate),
        detectors=config.detectors,
        stream_captures=config.stream_captures,
    )
    pipeline = AnalysisPipeline(declared_analyzers(config))
    pipeline.attach(world.bus)
    server_host = world.add_server("sink-server", region="us")
    client_host = world.add_client("random-client")
    rng = random.Random(config.seed + 7)

    if config.mode == "responding":
        RespondingServer(server_host, config.server_port, [client_host.ip], rng=rng)
    else:
        server = SinkServer(server_host, config.server_port)
        if config.mode == "switch":
            switch_at = config.switch_after
            if switch_at is None:
                switch_at = config.duration / 2

            def do_switch():
                server_host.unlisten(config.server_port)
                RespondingServer(server_host, config.server_port,
                                 [client_host.ip], rng=rng)

            world.sim.schedule(switch_at, do_switch)

    client = RandomDataClient(
        client_host, server_host.ip, config.server_port,
        length_range=config.length_range,
        entropy_range=config.entropy_range,
        rng=random.Random(config.seed + 11),
    )
    interval = config.duration / max(1, config.connections)
    client.run_schedule(config.connections, interval)
    settle(world, config.duration, drain=1.25)

    return SinkExperimentResult(
        world=world,
        config=config,
        probe_log=list(world.gfw.probe_log),
        sent_payloads=list(client.sent_payloads),
        pipeline=pipeline,
    )
