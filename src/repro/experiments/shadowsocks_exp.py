"""The §3.1 Shadowsocks server experiment, end to end.

Recreates the paper's four-month measurement at configurable scale:
Shadowsocks-libev client/server pairs (Tencent Beijing -> Digital Ocean
UK) driven by curl, plus an OutlineVPN pair (China residential -> US
university) driven by automated browsing, plus a never-contacted control
host.  The GFW middlebox watches the border; its probe log and the
server-side captures feed Figures 2-7 and Tables 2-3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis import (
    AnalysisPipeline,
    Analyzer,
    CaptureProbeClassifier,
    FlaggedConnections,
    ObservedProbe,
    ProbeTally,
    ProberFingerprint,
    ReplayDelays,
    SynCount,
)
from ..gfw import DetectorConfig, ProbeRecord, SchedulerConfig
from ..runtime.topology import World, build_world, settle
from ..protocols import build_protocol
from ..shadowsocks import ShadowsocksServer
from ..workloads import SITES, CurlDriver

__all__ = ["ShadowsocksExperimentConfig", "ShadowsocksExperimentResult",
           "run_shadowsocks_experiment"]

CURL_SITES = ["www.wikipedia.org", "example.com", "gfw.report"]


@dataclass
class ShadowsocksExperimentConfig:
    """Scaled-down §3.1 run; crank the numbers for paper-scale output."""

    seed: int = 0
    connections_per_pair: int = 600
    duration: float = 14 * 24 * 3600.0       # simulated seconds
    libev_pairs: int = 2                      # paper used 5; 2 keeps runs fast
    libev_method: str = "chacha20-ietf-poly1305"
    libev_profiles: Tuple[str, ...] = ("ss-libev-3.1.3", "ss-libev-3.3.1")
    outline_pairs: int = 1
    outline_profile: str = "outline-1.0.7"
    # Detection is boosted so a scaled-down workload still yields a rich
    # probe log; the *relative* probe statistics are scale-invariant.
    base_rate: float = 0.6
    nr1_flag_threshold: int = 10
    # JSON-able detector-stage spec (see repro.gfw.stages); None keeps
    # the paper's passive classifier configured by base_rate.
    detectors: Optional[Any] = None
    server_port: int = 8388
    # Streaming mode: captures stay enabled for the analysis taps but
    # buffer nothing, so long runs are constant-memory.
    stream_captures: bool = False


def declared_analyzers(
    config: ShadowsocksExperimentConfig,
    server_clients: Dict[str, str],
) -> Dict[str, Analyzer]:
    """The experiment's analyzer set (``server_clients``: name -> client IP)."""
    analyzers: Dict[str, Analyzer] = {
        "probes": ProbeTally(),
        "flagged": FlaggedConnections(),
        "replay_delays": ReplayDelays(),
        "fingerprint": ProberFingerprint(),
        "control_syns": SynCount(),
    }
    for name, client_ip in server_clients.items():
        analyzers[f"server:{name}"] = CaptureProbeClassifier(
            server_port=config.server_port, client_ips=[client_ip]
        )
    return analyzers


@dataclass
class ShadowsocksExperimentResult:
    world: World
    config: ShadowsocksExperimentConfig
    probe_log: List[ProbeRecord]
    server_probes: Dict[str, List[ObservedProbe]]  # per server name
    control_probe_count: int
    connections_made: int
    pipeline: AnalysisPipeline

    @property
    def probes_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.probe_log:
            counts[record.probe_type] = counts.get(record.probe_type, 0) + 1
        return counts

    @property
    def prober_ips(self) -> List[str]:
        return [record.src_ip for record in self.probe_log]

    @property
    def replay_delays(self) -> Tuple[List[float], List[float]]:
        """(first-occurrence delays, all delays) as in Figure 7."""
        first: Dict[bytes, float] = {}
        all_delays: List[float] = []
        for record in sorted(self.probe_log, key=lambda r: r.time_sent):
            if record.delay is None:
                continue
            all_delays.append(record.delay)
            key = record.probe.payload
            if key not in first:
                first[key] = record.delay
        return list(first.values()), all_delays


def run_shadowsocks_experiment(
    config: Optional[ShadowsocksExperimentConfig] = None,
) -> ShadowsocksExperimentResult:
    config = config or ShadowsocksExperimentConfig()
    rng = random.Random(config.seed)
    world = build_world(
        seed=config.seed,
        detector_config=DetectorConfig(base_rate=config.base_rate),
        detectors=config.detectors,
        scheduler_config=SchedulerConfig(nr1_flag_threshold=config.nr1_flag_threshold),
        websites=sorted(set(CURL_SITES) | set(SITES)),
        stream_captures=config.stream_captures,
    )
    drivers: List[CurlDriver] = []
    servers: List[Tuple[str, ShadowsocksServer]] = []

    def add_pair(name: str, region: str, profile: str, method: str,
                 sites: List[str], residential: bool) -> None:
        server_host = world.add_server(f"{name}-server", region=region)
        client_host = world.add_client(f"{name}-client", residential=residential)
        proto = build_protocol({"kind": "shadowsocks",
                                "password": f"pw-{name}",
                                "method": method, "profile": profile})
        server = proto.make_server(server_host, config.server_port,
                                   rng=random.Random(rng.randrange(1 << 30)))
        client = proto.make_client(client_host, server_host.ip,
                                   config.server_port,
                                   rng=random.Random(rng.randrange(1 << 30)))
        driver = CurlDriver(client, sites=sites,
                            rng=random.Random(rng.randrange(1 << 30)))
        drivers.append(driver)
        servers.append((f"{name}-server", server))

    for i in range(config.libev_pairs):
        profile = config.libev_profiles[i % len(config.libev_profiles)]
        add_pair(f"libev{i}", "uk", profile, config.libev_method,
                 CURL_SITES, residential=False)
    for i in range(config.outline_pairs):
        add_pair(f"outline{i}", "us", config.outline_profile,
                 "chacha20-ietf-poly1305", SITES, residential=True)

    control = world.add_server("control", region="uk")

    server_clients = {
        name: world.hosts[name.replace("-server", "-client")].ip
        for name, _server in servers
    }
    pipeline = AnalysisPipeline(declared_analyzers(config, server_clients))
    pipeline.attach(world.bus)
    for name, _server in servers:
        pipeline.tap_capture(world.hosts[name].capture, host=name,
                             names=[f"server:{name}"])
    pipeline.tap_capture(control.capture, host="control",
                         names=["control_syns"])

    interval = config.duration / max(1, config.connections_per_pair)
    for driver in drivers:
        # Deterministic per-driver phase offset spreads the load.
        start = rng.uniform(0, interval)
        driver.run_schedule(config.connections_per_pair, interval, start=start)

    # Run past the nominal duration so delayed replays drain.
    settle(world, config.duration, drain=1.25)

    server_probes: Dict[str, List[ObservedProbe]] = {}
    for name, _server in servers:
        classifier = pipeline.analyzers[f"server:{name}"]
        assert isinstance(classifier, CaptureProbeClassifier)
        server_probes[name] = classifier.probes()
    control_syns = pipeline.analyzers["control_syns"]
    assert isinstance(control_syns, SynCount)

    return ShadowsocksExperimentResult(
        world=world,
        config=config,
        probe_log=list(world.gfw.probe_log),
        server_probes=server_probes,
        control_probe_count=control_syns.count,
        connections_made=len(drivers) * config.connections_per_pair,
        pipeline=pipeline,
    )
