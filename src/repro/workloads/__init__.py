"""Traffic workloads: browsing drivers, random-data clients, sink servers."""

from .browser import BrowserDriver, CurlDriver
from .httpgen import SITES, http_get_request, site_request, tls_client_hello
from .payloads import (
    alphabet_size_for_entropy,
    expected_entropy,
    payload_with_entropy,
    random_payload,
)
from .sink import RandomDataClient, RespondingServer, SinkServer

__all__ = [
    "BrowserDriver",
    "CurlDriver",
    "RandomDataClient",
    "RespondingServer",
    "SITES",
    "SinkServer",
    "alphabet_size_for_entropy",
    "expected_entropy",
    "http_get_request",
    "payload_with_entropy",
    "random_payload",
    "site_request",
    "tls_client_hello",
]
