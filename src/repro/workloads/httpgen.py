"""HTTP and TLS-shaped first packets.

The GFW's length feature works because Shadowsocks does not pad: the
first tunnelled packet is (address header) + (the first packet of the
underlying protocol), which is usually an HTTP request or a TLS
ClientHello.  These generators produce first packets with realistic
lengths and entropies for both protocols, used by the browsing workload
and the false-positive ablations.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..randutil import byte_draws, choice_draw, randint_draw

__all__ = ["http_get_request", "tls_client_hello", "SITES", "site_request"]

# A small stand-in for "a subset of the Alexa top 1M" (§3.1).
SITES: List[str] = [
    "www.wikipedia.org",
    "example.com",
    "gfw.report",
    "www.nytimes.com",
    "github.com",
    "stackoverflow.com",
    "www.bbc.co.uk",
    "twitter.com",
    "www.google.com",
    "news.ycombinator.com",
    "en.wikipedia.org",
    "www.reddit.com",
]

_USER_AGENTS = [
    "Mozilla/5.0 (X11; Linux x86_64; rv:68.0) Gecko/20100101 Firefox/68.0",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36",
    "curl/7.64.0",
]

_SUITES = [b"\x13\x01", b"\x13\x02", b"\x13\x03", b"\xc0\x2f", b"\xc0\x30",
           b"\xcc\xa9", b"\xcc\xa8", b"\x00\x9e"]


def http_get_request(host: str, rng: random.Random, path: Optional[str] = None) -> bytes:
    """A plausible plaintext HTTP/1.1 GET (entropy ~4.5-5.5 bits/byte)."""
    if path is None:
        depth = randint_draw(rng, 0, 3)
        segments = [
            "".join(choice_draw(rng, "abcdefghijklmnopqrstuvwxyz-")
                    for _ in range(randint_draw(rng, 3, 12)))
            for _ in range(depth)
        ]
        path = "/" + "/".join(segments)
    headers = [
        f"GET {path} HTTP/1.1",
        f"Host: {host}",
        f"User-Agent: {choice_draw(rng, _USER_AGENTS)}",
        "Accept: text/html,application/xhtml+xml,*/*;q=0.8",
        "Accept-Language: en-US,en;q=0.5",
        "Accept-Encoding: gzip, deflate",
        "Connection: keep-alive",
    ]
    if rng.random() < 0.3:
        headers.append("Cache-Control: max-age=0")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii")


def tls_client_hello(host: str, rng: random.Random) -> bytes:
    """A TLS 1.2/1.3-shaped ClientHello (high entropy, ~250-600 bytes).

    Structurally faithful enough for length/entropy measurement: record
    header, handshake header, random, session id, cipher suites, and an
    SNI extension carrying the hostname, padded with extension bytes.
    """
    client_random = byte_draws(rng, 32)
    session_id = byte_draws(rng, 32)
    suites = b"".join(
        choice_draw(rng, _SUITES) for _ in range(randint_draw(rng, 12, 18))
    )
    sni_name = host.encode("ascii")
    sni = (
        b"\x00\x00"
        + (len(sni_name) + 5).to_bytes(2, "big")
        + (len(sni_name) + 3).to_bytes(2, "big")
        + b"\x00"
        + len(sni_name).to_bytes(2, "big")
        + sni_name
    )
    key_share = b"\x00\x33" + (38).to_bytes(2, "big") + b"\x00\x24\x00\x1d\x00\x20" + byte_draws(rng, 32)
    padding_len = randint_draw(rng, 0, 180)
    padding = b"\x00\x15" + padding_len.to_bytes(2, "big") + bytes(padding_len)
    extensions = sni + key_share + padding
    body = (
        b"\x03\x03"
        + client_random
        + bytes([len(session_id)]) + session_id
        + len(suites).to_bytes(2, "big") + suites
        + b"\x01\x00"  # compression methods
        + len(extensions).to_bytes(2, "big") + extensions
    )
    handshake = b"\x01" + len(body).to_bytes(3, "big") + body
    record = b"\x16\x03\x01" + len(handshake).to_bytes(2, "big") + handshake
    return record


def site_request(host: str, rng: random.Random, https_share: float = 0.7) -> bytes:
    """First packet of a browse to ``host``: HTTPS ClientHello or HTTP GET."""
    if rng.random() < https_share:
        return tls_client_hello(host, rng)
    return http_get_request(host, rng)
