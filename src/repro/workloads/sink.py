"""The §4.1 measurement servers and the random-data client.

* :class:`SinkServer` — accepts TCP connections, never sends data, and
  closes them after 30 seconds (Table 4, "sink" mode).
* :class:`RespondingServer` — same, but answers *probers* (any peer not
  on the experimenter's own client list) with 1–1000 random bytes
  ("responding" mode, Exp 1.b).
* :class:`RandomDataClient` — performs a handshake and sends exactly one
  data packet with a sampled (length, entropy).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Set, Tuple

from .payloads import payload_with_entropy, random_payload

__all__ = ["SinkServer", "RespondingServer", "RandomDataClient"]


class SinkServer:
    """Sink-mode server: accept, read, say nothing, close after 30 s."""

    CLOSE_AFTER = 30.0

    def __init__(self, host, port: int):
        self.host = host
        self.port = port
        self.connections_accepted = 0
        self.bytes_received = 0
        host.listen(port, self._accept)

    def _accept(self, conn) -> None:
        self.connections_accepted += 1

        def on_data(data: bytes) -> None:
            self.bytes_received += len(data)

        def on_data_run(chunks) -> None:
            for chunk in chunks:
                self.bytes_received += len(chunk)

        conn.on_data = on_data
        # Counting bytes never sends or closes, so whole in-order runs
        # may be consumed in one callback.
        conn.on_data_run = on_data_run
        conn.on_remote_fin = conn.close
        self.host.sim.schedule(self.CLOSE_AFTER, self._reap, conn)

    def _reap(self, conn) -> None:
        if conn.state != "CLOSED":
            conn.close()


class RespondingServer(SinkServer):
    """Responding-mode server: answer probers with random data."""

    def __init__(self, host, port: int, own_client_ips: Iterable[str],
                 rng: Optional[random.Random] = None):
        self.own_clients: Set[str] = set(own_client_ips)
        self.rng = rng or random.Random(0x51AC)
        self.prober_responses = 0
        super().__init__(host, port)

    def _accept(self, conn) -> None:
        self.connections_accepted += 1
        is_prober = conn.remote_ip not in self.own_clients

        def on_data(data: bytes) -> None:
            self.bytes_received += len(data)
            if is_prober:
                self.prober_responses += 1
                conn.send(random_payload(self.rng.randint(1, 1000), self.rng))

        conn.on_data = on_data
        conn.on_remote_fin = conn.close
        self.host.sim.schedule(self.CLOSE_AFTER, self._reap, conn)


class RandomDataClient:
    """§4.1 client: one data packet of specified length and entropy."""

    def __init__(
        self,
        host,
        server_ip: str,
        server_port: int,
        *,
        length_range: Tuple[int, int] = (1, 1000),
        entropy_range: Tuple[float, float] = (7.0, 8.0),
        rng: Optional[random.Random] = None,
        hold_open: float = 5.0,
    ):
        self.host = host
        self.server_ip = server_ip
        self.server_port = server_port
        self.length_range = length_range
        self.entropy_range = entropy_range
        self.rng = rng or random.Random(0xDA7A)
        self.hold_open = hold_open
        self.sent_payloads = []  # (time, payload) for ground truth
        # Optional observer invoked with each payload as it is sent.
        self.on_send: Callable[[bytes], None] = lambda payload: None

    def connect_once(self) -> bytes:
        """Open one connection, send one sampled data packet, later close."""
        length = self.rng.randint(*self.length_range)
        lo, hi = self.entropy_range
        entropy = lo if lo == hi else self.rng.uniform(lo, hi)
        if entropy >= 7.99:
            payload = random_payload(length, self.rng)
        else:
            payload = payload_with_entropy(length, entropy, self.rng)
        conn = self.host.connect(self.server_ip, self.server_port)

        def on_connected() -> None:
            conn.send(payload)
            bus = self.host.sim.bus
            bus.incr("workload.fetch")
            self.sent_payloads.append((self.host.sim.now, payload))
            if bus.wants_records:
                bus.emit("payload", {
                    "time": self.host.sim.now,
                    "payload": payload,
                })
            self.on_send(payload)
            self.host.sim.schedule(self.hold_open, conn.close)

        conn.on_connected = on_connected
        conn.on_remote_fin = conn.close
        return payload

    def run_schedule(self, count: int, interval: float, start: float = 0.0) -> None:
        """Schedule ``count`` connections spaced ``interval`` seconds apart."""
        for i in range(count):
            self.host.sim.schedule(start + i * interval, self.connect_once)
