"""Payload generators with controlled length and Shannon entropy.

The §4.1 random-data experiments need a client that sends one data packet
with a *specified* length and entropy (Table 4).  A uniform alphabet of
``k`` distinct byte values has per-byte entropy ``log2(k)``; we pick the
alphabet size closest to the target and sample uniformly, which converges
to the target entropy for non-trivial lengths.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..randutil import byte_draws

__all__ = ["random_payload", "payload_with_entropy", "alphabet_size_for_entropy"]


def random_payload(length: int, rng: random.Random) -> bytes:
    """Uniform random bytes (entropy -> 8 bits/byte)."""
    return byte_draws(rng, length)


def alphabet_size_for_entropy(target_bits: float) -> int:
    """Smallest-error alphabet size whose uniform entropy matches target."""
    if not 0.0 <= target_bits <= 8.0:
        raise ValueError(f"entropy must be within [0, 8] bits/byte, got {target_bits}")
    k = round(2 ** target_bits)
    return min(256, max(1, k))


def payload_with_entropy(length: int, target_bits: float,
                         rng: random.Random,
                         alphabet_offset: Optional[int] = None) -> bytes:
    """``length`` bytes whose per-byte entropy approximates ``target_bits``.

    ``alphabet_offset`` selects where in byte space the alphabet starts
    (random by default), so different connections do not share symbol
    sets.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    k = alphabet_size_for_entropy(target_bits)
    if alphabet_offset is None:
        alphabet_offset = rng.randrange(256)
    alphabet = [(alphabet_offset + i) % 256 for i in range(k)]
    if k == 1:
        return bytes([alphabet[0]]) * length
    # For long payloads, force every symbol to appear at least once so the
    # empirical entropy does not drift below the target.
    data = [rng.choice(alphabet) for _ in range(length)]
    if length >= 4 * k:
        for i, symbol in enumerate(alphabet):
            data[(i * 7919) % length] = symbol
    return bytes(data)


def expected_entropy(target_bits: float) -> float:
    """The entropy the generator actually converges to (exact alphabet)."""
    return math.log2(alphabet_size_for_entropy(target_bits))
