"""Browsing workloads that drive a Shadowsocks client (§3.1).

* :class:`CurlDriver` — the Shadowsocks-libev setup: constantly fetch one
  of a small set of sites at a fixed frequency (the paper used curl
  against wikipedia.org / example.com / gfw.report).
* :class:`BrowserDriver` — the OutlineVPN setup: Firefox automatically
  browsing a list of (censored) sites, with think-time jitter.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..randutil import choice_draw
from ..shadowsocks.client import ShadowsocksClient
from .httpgen import SITES, site_request

__all__ = ["CurlDriver", "BrowserDriver"]


class CurlDriver:
    """Fixed-frequency fetches of a fixed site list through the tunnel."""

    def __init__(self, client: ShadowsocksClient, *, sites: Optional[List[str]] = None,
                 rng: Optional[random.Random] = None, target_port: int = 443):
        self.client = client
        self.sites = list(sites or SITES[:3])
        self.rng = rng or random.Random(0xCAFE)
        self.target_port = target_port
        self.sessions = []

    def fetch_once(self) -> None:
        site = choice_draw(self.rng, self.sites)
        payload = site_request(site, self.rng)
        self.client.host.sim.bus.incr("workload.fetch")
        self.sessions.append(self.client.open(site, self.target_port, payload))

    def run_schedule(self, count: int, interval: float, start: float = 0.0) -> None:
        for i in range(count):
            self.client.host.sim.schedule(start + i * interval, self.fetch_once)


class BrowserDriver:
    """Jittered automatic browsing of a larger site list."""

    def __init__(self, client: ShadowsocksClient, *, sites: Optional[List[str]] = None,
                 rng: Optional[random.Random] = None,
                 think_time_low: float = 2.0, think_time_high: float = 30.0,
                 target_port: int = 443):
        self.client = client
        self.sites = list(sites or SITES)
        self.rng = rng or random.Random(0xB0B)
        self.think_low = think_time_low
        self.think_high = think_time_high
        self.target_port = target_port
        self.sessions = []
        self._stopped = False

    def start(self, duration: float) -> None:
        """Browse until ``duration`` seconds from now."""
        self._deadline = self.client.host.sim.now + duration
        self._visit()

    def stop(self) -> None:
        self._stopped = True

    def _visit(self) -> None:
        sim = self.client.host.sim
        if self._stopped or sim.now >= self._deadline:
            return
        site = self.rng.choice(self.sites)
        payload = site_request(site, self.rng)
        self.sessions.append(self.client.open(site, self.target_port, payload))
        sim.schedule(self.rng.uniform(self.think_low, self.think_high), self._visit)
