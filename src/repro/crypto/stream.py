"""Stream ciphers for the (deprecated) Shadowsocks stream construction.

Implements enough cipher variety to cover every IV length the protocol
allows (8, 12, or 16 bytes), which is what the GFW's length-targeted
probes key on:

* ``chacha20``      — original DJB variant, 8-byte nonce
* ``chacha20-ietf`` — RFC 8439 variant, 12-byte nonce
* ``aes-{128,192,256}-{ctr,cfb}`` — 16-byte IV
* ``rc4-md5``       — 16-byte IV, RC4 keyed by MD5(key || IV)
"""

from __future__ import annotations

import hashlib
import struct

from .chacha20 import _quarter_round, _CONSTANTS
from .modes import CFBMode, CTRMode

__all__ = ["RC4", "ChaCha20DJB", "new_stream_cipher"]


class RC4:
    """RC4 keystream XOR (for the ``rc4-md5`` method)."""

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("RC4 key must be non-empty")
        s = list(range(256))
        j = 0
        for i in range(256):
            j = (j + s[i] + key[i % len(key)]) % 256
            s[i], s[j] = s[j], s[i]
        self._s = s
        self._i = 0
        self._j = 0

    def process(self, data: bytes) -> bytes:
        s, i, j = self._s, self._i, self._j
        out = bytearray()
        for byte in data:
            i = (i + 1) % 256
            j = (j + s[i]) % 256
            s[i], s[j] = s[j], s[i]
            out.append(byte ^ s[(s[i] + s[j]) % 256])
        self._i, self._j = i, j
        return bytes(out)

    encrypt = process
    decrypt = process


def _chacha20_block_djb(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Original ChaCha20 block: 64-bit counter, 64-bit nonce."""
    init = list(_CONSTANTS)
    init.extend(struct.unpack("<8L", key))
    init.append(counter & 0xFFFFFFFF)
    init.append((counter >> 32) & 0xFFFFFFFF)
    init.extend(struct.unpack("<2L", nonce))
    state = list(init)
    for _ in range(10):
        _quarter_round(state, 0, 4, 8, 12)
        _quarter_round(state, 1, 5, 9, 13)
        _quarter_round(state, 2, 6, 10, 14)
        _quarter_round(state, 3, 7, 11, 15)
        _quarter_round(state, 0, 5, 10, 15)
        _quarter_round(state, 1, 6, 11, 12)
        _quarter_round(state, 2, 7, 8, 13)
        _quarter_round(state, 3, 4, 9, 14)
    return struct.pack("<16L", *((s + i) & 0xFFFFFFFF for s, i in zip(state, init)))


class ChaCha20DJB:
    """Incremental original-variant ChaCha20 (8-byte nonce)."""

    def __init__(self, key: bytes, nonce: bytes):
        if len(key) != 32:
            raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
        if len(nonce) != 8:
            raise ValueError(f"DJB ChaCha20 nonce must be 8 bytes, got {len(nonce)}")
        self._key = key
        self._nonce = nonce
        self._counter = 0
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        while len(self._keystream) < len(data):
            self._keystream += _chacha20_block_djb(self._key, self._counter, self._nonce)
            self._counter += 1
        ks, self._keystream = self._keystream[: len(data)], self._keystream[len(data) :]
        return bytes(a ^ b for a, b in zip(data, ks))

    encrypt = process
    decrypt = process


def new_stream_cipher(name: str, key: bytes, iv: bytes, encrypt: bool):
    """Build an incremental stream cipher object for one direction.

    ``encrypt`` only matters for CFB, whose feedback register differs by
    direction; CTR/ChaCha/RC4 are symmetric.
    """
    from .chacha20 import ChaCha20

    if name == "chacha20":
        return ChaCha20DJB(key, iv)
    if name == "chacha20-ietf":
        return ChaCha20(key, iv)
    if name == "rc4-md5":
        return RC4(hashlib.md5(key + iv).digest())
    if name.startswith("aes-") and name.endswith("-ctr"):
        return CTRMode(key, iv)
    if name.startswith("aes-") and name.endswith("-cfb"):
        return CFBMode(key, iv, encrypt=encrypt)
    raise ValueError(f"unknown stream cipher method: {name!r}")
