"""Stream ciphers for the (deprecated) Shadowsocks stream construction.

Implements enough cipher variety to cover every IV length the protocol
allows (8, 12, or 16 bytes), which is what the GFW's length-targeted
probes key on:

* ``chacha20``      — original DJB variant, 8-byte nonce
* ``chacha20-ietf`` — RFC 8439 variant, 12-byte nonce
* ``aes-{128,192,256}-{ctr,cfb}`` — 16-byte IV
* ``rc4-md5``       — 16-byte IV, RC4 keyed by MD5(key || IV)

``new_stream_cipher`` honours the ``REPRO_CRYPTO`` backend switch (see
:mod:`repro.crypto.backend`): the default fast implementations, or the
retained reference ones for equivalence testing.
"""

from __future__ import annotations

import hashlib
import struct

from . import _numpy as _nx
from .chacha20 import _CONSTANTS, _KeystreamCipher, _quarter_round, _run_rounds

__all__ = ["RC4", "ChaCha20DJB", "new_stream_cipher"]


class RC4:
    """RC4 keystream XOR (for the ``rc4-md5`` method)."""

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("RC4 key must be non-empty")
        s = list(range(256))
        j = 0
        for i in range(256):
            j = (j + s[i] + key[i % len(key)]) % 256
            s[i], s[j] = s[j], s[i]
        self._s = s
        self._i = 0
        self._j = 0

    def process(self, data: bytes) -> bytes:
        # RC4's state swap makes every output byte depend on the last, so
        # this stays a byte loop; precomputing the keystream separately
        # and XORing whole buffers still beats xor-as-you-go.
        s, i, j = self._s, self._i, self._j
        n = len(data)
        ks = bytearray(n)
        for pos in range(n):
            i = (i + 1) & 0xFF
            sj = s[i]
            j = (j + sj) & 0xFF
            si = s[j]
            s[i] = si
            s[j] = sj
            ks[pos] = s[(si + sj) & 0xFF]
        self._i, self._j = i, j
        return _nx.xor_bytes(data, ks)

    encrypt = process
    decrypt = process


def _chacha20_block_djb(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Original ChaCha20 block: 64-bit counter, 64-bit nonce."""
    init = list(_CONSTANTS)
    init.extend(struct.unpack("<8L", key))
    init.append(counter & 0xFFFFFFFF)
    init.append((counter >> 32) & 0xFFFFFFFF)
    init.extend(struct.unpack("<2L", nonce))
    state = list(init)
    for _ in range(10):
        _quarter_round(state, 0, 4, 8, 12)
        _quarter_round(state, 1, 5, 9, 13)
        _quarter_round(state, 2, 6, 10, 14)
        _quarter_round(state, 3, 7, 11, 15)
        _quarter_round(state, 0, 5, 10, 15)
        _quarter_round(state, 1, 6, 11, 12)
        _quarter_round(state, 2, 7, 8, 13)
        _quarter_round(state, 3, 4, 9, 14)
    return struct.pack("<16L", *((s + i) & 0xFFFFFFFF for s, i in zip(state, init)))


class ChaCha20DJB(_KeystreamCipher):
    """Incremental original-variant ChaCha20 (8-byte nonce)."""

    def __init__(self, key: bytes, nonce: bytes):
        if len(key) != 32:
            raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
        if len(nonce) != 8:
            raise ValueError(f"DJB ChaCha20 nonce must be 8 bytes, got {len(nonce)}")
        super().__init__()
        self._init = (
            list(_CONSTANTS) + list(struct.unpack("<8L", key)) + [0, 0]
            + list(struct.unpack("<2L", nonce))
        )
        self._counter = 0

    def _blocks(self, nblocks: int) -> bytes:
        counter = self._counter
        self._counter += nblocks
        if _nx.HAVE_NUMPY and nblocks >= _nx.CHACHA_MIN_BLOCKS:
            return _nx.chacha_blocks(self._init, counter, nblocks, djb=True)
        init = self._init
        parts = []
        for i in range(nblocks):
            c = counter + i
            init[12] = c & 0xFFFFFFFF
            init[13] = (c >> 32) & 0xFFFFFFFF
            parts.append(_run_rounds(init))
        return b"".join(parts)


def new_stream_cipher(name: str, key: bytes, iv: bytes, encrypt: bool):
    """Build an incremental stream cipher object for one direction.

    ``encrypt`` only matters for CFB, whose feedback register differs by
    direction; CTR/ChaCha/RC4 are symmetric.
    """
    from .backend import stream_cipher_impls

    chacha_djb, chacha_ietf, rc4, ctr, cfb = stream_cipher_impls()
    if name == "chacha20":
        return chacha_djb(key, iv)
    if name == "chacha20-ietf":
        return chacha_ietf(key, iv)
    if name == "rc4-md5":
        return rc4(hashlib.md5(key + iv).digest())
    if name.startswith("aes-") and name.endswith("-ctr"):
        return ctr(key, iv)
    if name.startswith("aes-") and name.endswith("-cfb"):
        return cfb(key, iv, encrypt=encrypt)
    raise ValueError(f"unknown stream cipher method: {name!r}")
