"""AES-GCM authenticated encryption (NIST SP 800-38D) with a 12-byte nonce.

Used for the Shadowsocks AEAD methods ``aes-128-gcm``, ``aes-192-gcm`` and
``aes-256-gcm``.  Two hot loops are batched: the CTR keystream comes from
:meth:`AES.keystream` one whole message at a time (with GCM's 32-bit
counter wrap), and GHASH uses sixteen per-byte-position product tables of
H — one 256-entry table per byte of the block, so a block multiply is 16
lookups + XORs instead of 128 shift-and-add steps.  The tables are built
lazily once a session has hashed enough data to amortize the build cost;
short-lived sessions (active-probe sized) stay on the per-bit
:func:`_gf_mult`, which is retained and byte-identical.
"""

from __future__ import annotations

import struct

from . import _numpy as _vec
from ._numpy import xor_bytes
from . import recordcache
from .aes import AES

__all__ = ["AESGCM", "AuthenticationError"]

_R = 0xE1 << 120

# Cumulative GHASH bytes after which a session builds its H tables.  The
# build costs roughly 20 per-bit block multiplies, so this is the
# break-even neighbourhood.
_TABLE_THRESHOLD = 512


class AuthenticationError(Exception):
    """Raised when an AEAD tag fails to verify."""


def _gf_mult(x: int, y: int) -> int:
    """Multiplication in GF(2^128) with the GCM polynomial (big-endian bits)."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _build_x8r() -> list:
    """Reduction table for multiplying a field element by x^8.

    Over eight multiply-by-x steps only the low byte of the element ever
    reaches bit 0 (the reduction trigger), so v*x^8 == (v >> 8) ^ X8R[v & 0xFF].
    """
    table = []
    for lb in range(256):
        v = lb
        for _ in range(8):
            v = (v >> 1) ^ _R if v & 1 else v >> 1
        table.append(v)
    return table


_X8R = _build_x8r()


def _build_h_tables(h: int) -> list:
    """16 per-byte-position product tables for GHASH by H.

    ``tables[k][b]`` is the field product ``(b << (8*(15-k))) * H``, so a
    block multiply is ``XOR(tables[k][block[k]] for k in 0..15)`` with the
    block in big-endian byte order.  Table 0 covers the most significant
    byte (lowest-degree polynomial terms); each following table is the
    previous one times x^8.
    """
    first = [0] * 256
    v = h
    bit = 0x80
    while bit:
        first[bit] = v
        v = (v >> 1) ^ _R if v & 1 else v >> 1
        bit >>= 1
    for b in range(1, 256):
        lsb = b & -b
        if b != lsb:
            first[b] = first[lsb] ^ first[b ^ lsb]
    tables = [first]
    x8r = _X8R
    for _ in range(15):
        prev = tables[-1]
        tables.append([(v >> 8) ^ x8r[v & 0xFF] for v in prev])
    return tables


class AESGCM:
    """AES-GCM with 12-byte nonces and 16-byte tags."""

    TAG_SIZE = 16
    NONCE_SIZE = 12

    def __init__(self, key: bytes):
        self._key = key
        self._aes = AES(key)
        self._h = int.from_bytes(self._aes.encrypt_block(bytes(16)), "big")
        self._tables = None
        # Vectorized whole-record GHASH (numpy): ``None`` = not built
        # yet (built lazily on the first large-enough update once the
        # scalar tables exist); any other falsy value pins the session
        # to the scalar path (tests use ``False`` to force it).
        self._vtables = None
        self._hashed = 0

    def _ghash(self, data: bytes) -> int:
        return self._ghash_update(0, data)

    def _ghash_update(self, y: int, data: bytes) -> int:
        """Fold ``data`` (zero-padded to a block boundary) into GHASH state."""
        n = len(data)
        if not n:
            return y
        self._hashed += n
        if self._tables is None and self._hashed >= _TABLE_THRESHOLD:
            self._tables = _build_h_tables(self._h)
        tail = n % 16
        full = n - tail
        if self._tables is None:
            h = self._h
            for i in range(0, full, 16):
                y = _gf_mult(y ^ int.from_bytes(data[i : i + 16], "big"), h)
            if tail:
                block = data[full:].ljust(16, b"\x00")
                y = _gf_mult(y ^ int.from_bytes(block, "big"), h)
            return y
        start = 0
        if full >= _vec.GHASH_MIN_BLOCKS * 16 and _vec.HAVE_NUMPY:
            if self._vtables is None:
                self._vtables = _vec.build_ghash_tables(self._tables)
            if self._vtables:
                # Whole-record vector path: chunk the data into stride-8
                # block groups, gather every chunk's partial sum in one
                # numpy pass, then fold the sums with a short Horner
                # loop — one multiply by H^8 per chunk.  Exact field
                # arithmetic throughout, byte-identical to the scalar
                # loop below (property-tested).
                vhi, vlo, h8 = self._vtables
                chunk_bytes = 16 * _vec.GHASH_STRIDE
                m = full // chunk_bytes
                (e0, e1, e2, e3, e4, e5, e6, e7,
                 e8, e9, e10, e11, e12, e13, e14, e15) = h8
                for s in _vec.ghash_chunk_sums(vhi, vlo, data, m):
                    if y:
                        b = y.to_bytes(16, "big")
                        y = (e0[b[0]] ^ e1[b[1]] ^ e2[b[2]] ^ e3[b[3]]
                             ^ e4[b[4]] ^ e5[b[5]] ^ e6[b[6]] ^ e7[b[7]]
                             ^ e8[b[8]] ^ e9[b[9]] ^ e10[b[10]] ^ e11[b[11]]
                             ^ e12[b[12]] ^ e13[b[13]] ^ e14[b[14]]
                             ^ e15[b[15]]) ^ s
                    else:
                        y = s
                start = m * chunk_bytes
        (t0, t1, t2, t3, t4, t5, t6, t7,
         t8, t9, t10, t11, t12, t13, t14, t15) = self._tables
        for i in range(start, full, 16):
            b = (y ^ int.from_bytes(data[i : i + 16], "big")).to_bytes(16, "big")
            y = (t0[b[0]] ^ t1[b[1]] ^ t2[b[2]] ^ t3[b[3]]
                 ^ t4[b[4]] ^ t5[b[5]] ^ t6[b[6]] ^ t7[b[7]]
                 ^ t8[b[8]] ^ t9[b[9]] ^ t10[b[10]] ^ t11[b[11]]
                 ^ t12[b[12]] ^ t13[b[13]] ^ t14[b[14]] ^ t15[b[15]])
        if tail:
            block = data[full:].ljust(16, b"\x00")
            b = (y ^ int.from_bytes(block, "big")).to_bytes(16, "big")
            y = (t0[b[0]] ^ t1[b[1]] ^ t2[b[2]] ^ t3[b[3]]
                 ^ t4[b[4]] ^ t5[b[5]] ^ t6[b[6]] ^ t7[b[7]]
                 ^ t8[b[8]] ^ t9[b[9]] ^ t10[b[10]] ^ t11[b[11]]
                 ^ t12[b[12]] ^ t13[b[13]] ^ t14[b[14]] ^ t15[b[15]])
        return y

    def _crypt(self, nonce: bytes, data: bytes) -> bytes:
        if not data:
            return b""
        nblocks = (len(data) + 15) // 16
        base = (int.from_bytes(nonce, "big") << 32) | 2
        ks = self._aes.keystream(base, nblocks, step_mask=0xFFFFFFFF)
        if len(data) % 16:
            del ks[len(data) :]
        return xor_bytes(data, ks)

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        # aad and ciphertext are zero-padded to block boundaries
        # independently, so GHASH can fold them in piecewise without
        # materializing the padded concatenation.
        y = self._ghash_update(0, aad)
        y = self._ghash_update(y, ciphertext)
        y = self._ghash_update(
            y, struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8))
        ek_y0 = self._aes.encrypt_block(nonce + struct.pack(">I", 1))
        return (y ^ int.from_bytes(ek_y0, "big")).to_bytes(16, "big")

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and append the 16-byte tag."""
        return recordcache.cached_seal(self._seal, "gcm", self._key, nonce,
                                       plaintext, aad)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify the trailing tag and decrypt; raise AuthenticationError."""
        return recordcache.cached_open(self._open, "gcm", self._key, nonce,
                                       sealed, aad)

    def _seal(self, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be {self.NONCE_SIZE} bytes")
        ciphertext = self._crypt(nonce, plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def _open(self, nonce: bytes, sealed: bytes, aad: bytes) -> bytes:
        if len(sealed) < self.TAG_SIZE:
            raise AuthenticationError("ciphertext shorter than tag")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        if not _eq(tag, self._tag(nonce, aad, ciphertext)):
            raise AuthenticationError("GCM tag mismatch")
        return self._crypt(nonce, ciphertext)


def _eq(a: bytes, b: bytes) -> bool:
    """Constant-time-style byte comparison, as real implementations use."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
