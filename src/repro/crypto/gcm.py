"""AES-GCM authenticated encryption (NIST SP 800-38D) with a 12-byte nonce.

Used for the Shadowsocks AEAD methods ``aes-128-gcm``, ``aes-192-gcm`` and
``aes-256-gcm``.  The GF(2^128) multiplication is the simple shift-and-add
from the spec; plenty fast for protocol-sized messages.
"""

from __future__ import annotations

import struct

from .aes import AES

__all__ = ["AESGCM", "AuthenticationError"]

_R = 0xE1 << 120


class AuthenticationError(Exception):
    """Raised when an AEAD tag fails to verify."""


def _gf_mult(x: int, y: int) -> int:
    """Multiplication in GF(2^128) with the GCM polynomial (big-endian bits)."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


class AESGCM:
    """AES-GCM with 12-byte nonces and 16-byte tags."""

    TAG_SIZE = 16
    NONCE_SIZE = 12

    def __init__(self, key: bytes):
        self._aes = AES(key)
        self._h = int.from_bytes(self._aes.encrypt_block(bytes(16)), "big")

    def _ghash(self, data: bytes) -> int:
        y = 0
        h = self._h
        for i in range(0, len(data), 16):
            block = data[i : i + 16].ljust(16, b"\x00")
            y = _gf_mult(y ^ int.from_bytes(block, "big"), h)
        return y

    def _crypt(self, nonce: bytes, data: bytes) -> bytes:
        out = bytearray()
        for i in range(0, len(data), 16):
            ctr = 2 + i // 16
            ks = self._aes.encrypt_block(nonce + struct.pack(">I", ctr))
            out.extend(a ^ b for a, b in zip(data[i : i + 16], ks))
        return bytes(out)

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        def pad16(b: bytes) -> bytes:
            return b + bytes(-len(b) % 16)

        ghash_input = (
            pad16(aad)
            + pad16(ciphertext)
            + struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
        )
        s = self._ghash(ghash_input)
        ek_y0 = self._aes.encrypt_block(nonce + struct.pack(">I", 1))
        return bytes(a ^ b for a, b in zip(s.to_bytes(16, "big"), ek_y0))

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and append the 16-byte tag."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be {self.NONCE_SIZE} bytes")
        ciphertext = self._crypt(nonce, plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify the trailing tag and decrypt; raise AuthenticationError."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be {self.NONCE_SIZE} bytes")
        if len(sealed) < self.TAG_SIZE:
            raise AuthenticationError("ciphertext shorter than tag")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        if not _eq(tag, self._tag(nonce, aad, ciphertext)):
            raise AuthenticationError("GCM tag mismatch")
        return self._crypt(nonce, ciphertext)


def _eq(a: bytes, b: bytes) -> bool:
    """Constant-time-style byte comparison, as real implementations use."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
