"""Key derivation used by Shadowsocks.

* ``evp_bytes_to_key`` — OpenSSL's legacy MD5-based derivation; turns the
  shared password into the master key for both constructions.
* ``hkdf_sha1`` — RFC 5869 HKDF with SHA-1; the AEAD construction derives a
  per-session subkey from (master key, salt, "ss-subkey").
"""

from __future__ import annotations

import hashlib
import hmac
from functools import lru_cache

__all__ = ["evp_bytes_to_key", "hkdf_sha1", "SS_SUBKEY_INFO", "derive_subkey"]

SS_SUBKEY_INFO = b"ss-subkey"


def evp_bytes_to_key(password: bytes, key_len: int) -> bytes:
    """OpenSSL EVP_BytesToKey with MD5, no salt, 1 iteration (as Shadowsocks)."""
    if key_len <= 0:
        raise ValueError("key_len must be positive")
    derived = b""
    prev = b""
    while len(derived) < key_len:
        prev = hashlib.md5(prev + password).digest()
        derived += prev
    return derived[:key_len]


@lru_cache(maxsize=1024)
def hkdf_sha1(key: bytes, salt: bytes, info: bytes, length: int) -> bytes:
    """RFC 5869 HKDF-Extract + HKDF-Expand with SHA-1.

    Memoized: the Shadowsocks AEAD construction derives the same
    (master key, salt) session subkey on the encryptor and the decryptor
    of every direction, so in-process each derivation repeats at least
    once.  Pure function; the cache only skips recomputation.
    """
    if length <= 0 or length > 255 * 20:
        raise ValueError(f"invalid HKDF output length {length}")
    prk = hmac.new(salt if salt else bytes(20), key, hashlib.sha1).digest()
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha1).digest()
        okm += block
        counter += 1
    return okm[:length]


def derive_subkey(master_key: bytes, salt: bytes) -> bytes:
    """Shadowsocks AEAD session subkey: HKDF-SHA1(master, salt, "ss-subkey")."""
    return hkdf_sha1(master_key, salt, SS_SUBKEY_INFO, len(master_key))
