"""Process-wide AEAD record memo (fast backend only).

In the simulation the sealing and the opening endpoint of a tunnel live
in one process: every AEAD record a client seals, the server opens with
the same subkey, nonce, and bytes (and vice versa).  Both directions of
that round trip are pure functions of ``(key, nonce, aad, record)``, so
a bounded process-wide memo turns the second half — and every identical
record of a seeded re-run in the same process — into a dict hit with
byte-identical results:

* a ``seal`` miss computes the real ciphertext once and installs both
  the seal entry and the matching ``open`` entry, so the opener never
  redoes the keystream or the tag;
* an ``open`` hit skips tag verification only for blobs this process
  itself produced — a tampered or truncated record is a different byte
  string, misses the cache, and takes the real verification path with
  its real ``AuthenticationError``.

The memo is cleared wholesale when full (no LRU bookkeeping on the hot
path), and records longer than ``MAX_RECORD`` bypass it — tunnel AEAD
chunks cap at 0x3FFF bytes, so anything bigger is bulk-buffer work the
memo was never meant to absorb.  ``repro bench --suite crypto``
additionally disables the memo outright for its measurement window, so
reported primitive throughput always reflects real seal/open work.

``REPRO_CRYPTO_CACHE=0`` disables the memo.  The reference backend
never routes through it, so fast-vs-reference equivalence always
compares real computations.
"""

from __future__ import annotations

import os

__all__ = ["enabled", "set_enabled", "clear", "cached_seal", "cached_open"]

MAX_ENTRIES = 4096
# Shadowsocks AEAD chunks cap at 0x3FFF bytes; benchmark and other bulk
# buffers sit far above this and always take the real primitives.
MAX_RECORD = 1 << 15

_enabled = os.environ.get("REPRO_CRYPTO_CACHE", "1") not in ("0", "false", "no")
_cache: dict = {}


def enabled() -> bool:
    return _enabled


def set_enabled(value: bool) -> None:
    """Force the memo on/off for this process (tests, benchmarks)."""
    global _enabled
    _enabled = bool(value)
    if not value:
        _cache.clear()


def clear() -> None:
    _cache.clear()


def _put(key, value) -> None:
    if len(_cache) >= MAX_ENTRIES:
        _cache.clear()
    _cache[key] = value


def cached_seal(raw_seal, alg, key, nonce, plaintext, aad):
    """Memoized ``seal``; ``raw_seal(nonce, plaintext, aad)`` on a miss.

    ``alg`` disambiguates ciphers sharing a key size (AES-256-GCM and
    ChaCha20-Poly1305 both take 32-byte keys) so their entries can never
    collide.
    """
    if not _enabled or len(plaintext) > MAX_RECORD:
        return raw_seal(nonce, plaintext, aad)
    entry = ("s", alg, key, nonce, aad, plaintext)
    sealed = _cache.get(entry)
    if sealed is None:
        sealed = raw_seal(nonce, plaintext, aad)
        _put(entry, sealed)
        _put(("o", alg, key, nonce, aad, sealed), plaintext)
    return sealed


def cached_open(raw_open, alg, key, nonce, sealed, aad):
    """Memoized ``open``; ``raw_open(nonce, sealed, aad)`` on a miss.

    Only records previously produced (or verified) by this process can
    hit; anything else falls through to the real verify-and-decrypt.
    """
    if not _enabled or len(sealed) > MAX_RECORD + 16:
        return raw_open(nonce, sealed, aad)
    entry = ("o", alg, key, nonce, aad, sealed)
    plaintext = _cache.get(entry)
    if plaintext is None:
        plaintext = raw_open(nonce, sealed, aad)
        _put(entry, plaintext)
        _put(("s", alg, key, nonce, aad, plaintext), sealed)
    return plaintext
