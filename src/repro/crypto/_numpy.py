"""Optional numpy acceleration for the batched crypto hot loops.

The crypto package implements every primitive from the spec in pure
Python; this module vectorizes the *batched* inner loops (counter-mode
keystream generation, batch block encryption, ChaCha20 block batches,
whole-buffer XOR) across blocks when numpy is importable.  The math is
identical 32-bit word arithmetic, so results are byte-identical to the
scalar paths — the property suite asserts this — and every caller falls
back to the pure-Python loop when numpy is missing or the batch is too
small to amortize per-call overhead.

Set ``REPRO_CRYPTO_NUMPY=0`` to force the pure-Python paths (useful for
benchmarking the scalar code or debugging a suspected vectorization
difference).
"""

from __future__ import annotations

import os

__all__ = [
    "HAVE_NUMPY",
    "aes_batch_encrypt",
    "aes_keystream",
    "build_ghash_tables",
    "chacha_blocks",
    "ghash_chunk_sums",
    "xor_bytes",
]

if os.environ.get("REPRO_CRYPTO_NUMPY", "1") == "0":  # pragma: no cover
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is in the dev toolchain
        np = None

HAVE_NUMPY = np is not None

# Batch sizes below these thresholds are faster in the scalar loops
# (numpy pays ~1-2us of dispatch overhead per array op).
AES_MIN_BLOCKS = 16
CHACHA_MIN_BLOCKS = 8
XOR_MIN_BYTES = 2048

# Full GHASH blocks in a single update below which the scalar per-byte
# table loop wins (the vector path pays a fixed gather/convert cost).
GHASH_MIN_BLOCKS = 128

# Blocks folded per vector GHASH chunk: the serial Horner dependency is
# amortized over this many independent products.
GHASH_STRIDE = 8

_M64 = 0xFFFFFFFFFFFFFFFF

_M32 = 0xFFFFFFFF

# Lazily-built numpy copies of the AES tables (they live in aes.py as
# plain lists for the scalar path).
_aes_tables = None


def _get_aes_tables():
    global _aes_tables
    if _aes_tables is None:
        from .aes import _SBOX, _T0, _T1, _T2, _T3

        _aes_tables = (
            np.array(_T0, dtype=np.uint32),
            np.array(_T1, dtype=np.uint32),
            np.array(_T2, dtype=np.uint32),
            np.array(_T3, dtype=np.uint32),
            np.array(_SBOX, dtype=np.uint32),
        )
    return _aes_tables


def _aes_rounds(w0, w1, w2, w3, rounds, round_keys):
    """Run the AES round loop over four 1-D uint32 column arrays.

    Keeping each column in its own contiguous array wires ShiftRows
    directly into the operand pattern (mirroring the scalar
    ``AES._encrypt_words``) instead of paying a fancy-indexed
    ``[:, roll]`` gather — a fresh (n, 4) copy per table per round —
    as the earlier state-matrix formulation did.
    """
    t0, t1, t2, t3, sbox = _get_aes_tables()
    ff = np.uint32(0xFF)
    rk = [tuple(np.uint32(w) for w in k) for k in round_keys]
    k0, k1, k2, k3 = rk[0]
    w0 = w0 ^ k0
    w1 = w1 ^ k1
    w2 = w2 ^ k2
    w3 = w3 ^ k3
    for r in range(1, rounds):
        k0, k1, k2, k3 = rk[r]
        e0 = t0[w0 >> 24] ^ t1[(w1 >> 16) & ff] ^ t2[(w2 >> 8) & ff] ^ t3[w3 & ff] ^ k0
        e1 = t0[w1 >> 24] ^ t1[(w2 >> 16) & ff] ^ t2[(w3 >> 8) & ff] ^ t3[w0 & ff] ^ k1
        e2 = t0[w2 >> 24] ^ t1[(w3 >> 16) & ff] ^ t2[(w0 >> 8) & ff] ^ t3[w1 & ff] ^ k2
        e3 = t0[w3 >> 24] ^ t1[(w0 >> 16) & ff] ^ t2[(w1 >> 8) & ff] ^ t3[w2 & ff] ^ k3
        w0, w1, w2, w3 = e0, e1, e2, e3
    # Final round: SubBytes + ShiftRows only.
    k0, k1, k2, k3 = rk[rounds]
    e0 = ((sbox[w0 >> 24] << 24) | (sbox[(w1 >> 16) & ff] << 16)
          | (sbox[(w2 >> 8) & ff] << 8) | sbox[w3 & ff]) ^ k0
    e1 = ((sbox[w1 >> 24] << 24) | (sbox[(w2 >> 16) & ff] << 16)
          | (sbox[(w3 >> 8) & ff] << 8) | sbox[w0 & ff]) ^ k1
    e2 = ((sbox[w2 >> 24] << 24) | (sbox[(w3 >> 16) & ff] << 16)
          | (sbox[(w0 >> 8) & ff] << 8) | sbox[w1 & ff]) ^ k2
    e3 = ((sbox[w3 >> 24] << 24) | (sbox[(w0 >> 16) & ff] << 16)
          | (sbox[(w1 >> 8) & ff] << 8) | sbox[w2 & ff]) ^ k3
    return e0, e1, e2, e3


def _interleave_columns(e0, e1, e2, e3, nblocks: int) -> bytes:
    """Pack four column arrays back into big-endian block bytes."""
    out = np.empty((nblocks, 4), dtype=np.uint32)
    out[:, 0] = e0
    out[:, 1] = e1
    out[:, 2] = e2
    out[:, 3] = e3
    return out.astype(">u4").tobytes()


def aes_keystream(round_keys, rounds: int, counter: int, nblocks: int,
                  step_mask: int) -> bytes:
    """Counter-mode keystream for ``nblocks`` consecutive counter blocks.

    ``counter`` is the first 128-bit big-endian block value; successive
    blocks increment the ``step_mask`` portion (low 32 bits for GCM, the
    whole block for CTR) with the bits above the mask held fixed.
    """
    fixed = counter & ~step_mask
    start = counter & step_mask
    idx = np.arange(nblocks, dtype=np.uint64)
    m32 = np.uint64(_M32)
    cols = {}
    carry = idx
    for col in (3, 2, 1, 0):
        shift = 32 * (3 - col)
        s = np.uint64((start >> shift) & _M32) + carry
        word = s & m32
        carry = s >> np.uint64(32)
        mask_word = (step_mask >> shift) & _M32
        fixed_word = (fixed >> shift) & _M32
        cols[col] = ((word & np.uint64(mask_word))
                     | np.uint64(fixed_word)).astype(np.uint32)
    e0, e1, e2, e3 = _aes_rounds(cols[0], cols[1], cols[2], cols[3],
                                 rounds, round_keys)
    return _interleave_columns(e0, e1, e2, e3, nblocks)


def aes_batch_encrypt(round_keys, rounds: int, blocks) -> bytes:
    """ECB-encrypt a buffer of concatenated 16-byte blocks in one batch."""
    words = np.frombuffer(bytes(blocks), dtype=">u4").astype(np.uint32)
    words = words.reshape(-1, 4)
    e0, e1, e2, e3 = _aes_rounds(
        np.ascontiguousarray(words[:, 0]), np.ascontiguousarray(words[:, 1]),
        np.ascontiguousarray(words[:, 2]), np.ascontiguousarray(words[:, 3]),
        rounds, round_keys)
    return _interleave_columns(e0, e1, e2, e3, len(words))


def chacha_blocks(init, counter: int, nblocks: int, djb: bool) -> bytes:
    """Batch of ChaCha20 keystream blocks for consecutive counters.

    ``init`` is the 16-word initial state with the counter word(s) to be
    filled per block: word 12 (IETF, 32-bit) or words 12-13 (original
    DJB variant, 64-bit).
    """
    m32 = np.uint64(_M32)
    idx = np.arange(nblocks, dtype=np.uint64)
    state = []
    for i, word in enumerate(init):
        if i == 12:
            state.append(((np.uint64(counter) + idx) & m32).astype(np.uint32))
        elif i == 13 and djb:
            state.append((((np.uint64(counter) + idx) >> np.uint64(32)) & m32)
                         .astype(np.uint32))
        else:
            state.append(np.full(nblocks, word, dtype=np.uint32))
    # Copy: the quarter round mutates in place (^=) and the originals are
    # needed intact for the final feed-forward addition.
    x = [s.copy() for s in state]

    def qr(a, b, c, d):
        x[a] = x[a] + x[b]
        x[d] ^= x[a]
        x[d] = (x[d] << np.uint32(16)) | (x[d] >> np.uint32(16))
        x[c] = x[c] + x[d]
        x[b] ^= x[c]
        x[b] = (x[b] << np.uint32(12)) | (x[b] >> np.uint32(20))
        x[a] = x[a] + x[b]
        x[d] ^= x[a]
        x[d] = (x[d] << np.uint32(8)) | (x[d] >> np.uint32(24))
        x[c] = x[c] + x[d]
        x[b] ^= x[c]
        x[b] = (x[b] << np.uint32(7)) | (x[b] >> np.uint32(25))

    for _ in range(10):
        qr(0, 4, 8, 12)
        qr(1, 5, 9, 13)
        qr(2, 6, 10, 14)
        qr(3, 7, 11, 15)
        qr(0, 5, 10, 15)
        qr(1, 6, 11, 12)
        qr(2, 7, 8, 13)
        qr(3, 4, 9, 14)

    out = np.empty((nblocks, 16), dtype="<u4")
    for i in range(16):
        out[:, i] = x[i] + state[i]
    return out.tobytes()


def build_ghash_tables(h_tables):
    """Vector gather tables for stride-8 GHASH from the scalar H tables.

    ``h_tables`` is the 16x256 per-byte-position product table of H
    (python ints, ``gcm._build_h_tables``).  Returns ``(hi, lo, h8)``:
    two uint64 arrays of shape (GHASH_STRIDE, 16, 256) whose power axis
    holds the tables of H^8..H^1 — chunk position ``q`` multiplies by
    H^(8-q) — split into high/low 64-bit halves so the XOR reductions
    stay in native integer lanes, plus the scalar 16x256 tables of H^8
    (python ints) for the per-chunk Horner fold.  ``None`` when numpy is
    unavailable.

    The power tables are derived by chained elementwise multiply-by-H:
    ``T_{p+1}[pos][b] = T_p[pos][b] * H``, evaluated as 16 byte-plane
    gathers through the H tables per step — exact GF(2^128) arithmetic,
    so every downstream digest is byte-identical to the scalar path.
    """
    if np is None:
        return None
    flat = [v for row in h_tables for v in row]
    v1_hi = np.array([v >> 64 for v in flat], dtype=np.uint64).reshape(16, 256)
    v1_lo = np.array([v & _M64 for v in flat], dtype=np.uint64).reshape(16, 256)

    def mul_h(hi, lo):
        acc_hi = np.zeros(hi.shape, dtype=np.uint64)
        acc_lo = np.zeros(lo.shape, dtype=np.uint64)
        ff = np.uint64(0xFF)
        for k in range(8):
            idx = (hi >> np.uint64(8 * (7 - k))) & ff
            acc_hi ^= v1_hi[k][idx]
            acc_lo ^= v1_lo[k][idx]
            idx = (lo >> np.uint64(8 * (7 - k))) & ff
            acc_hi ^= v1_hi[k + 8][idx]
            acc_lo ^= v1_lo[k + 8][idx]
        return acc_hi, acc_lo

    powers = [(v1_hi, v1_lo)]
    for _ in range(GHASH_STRIDE - 1):
        powers.append(mul_h(*powers[-1]))
    # powers[p] holds the tables of H^(p+1); stack highest power first.
    hi = np.ascontiguousarray(
        np.stack([powers[GHASH_STRIDE - 1 - q][0] for q in range(GHASH_STRIDE)]))
    lo = np.ascontiguousarray(
        np.stack([powers[GHASH_STRIDE - 1 - q][1] for q in range(GHASH_STRIDE)]))
    h8_hi, h8_lo = powers[GHASH_STRIDE - 1]
    h8 = [[(a << 64) | b for a, b in zip(hrow, lrow)]
          for hrow, lrow in zip(h8_hi.tolist(), h8_lo.tolist())]
    return hi, lo, h8


# Broadcast index grids for the (power, position, byte) gather below.
_GH_Q = None
_GH_P = None


def ghash_chunk_sums(hi, lo, data, m):
    """Per-chunk partial GHASH sums over ``m`` 128-byte chunks of ``data``.

    Chunk ``j``'s sum is ``XOR_q block[8j+q] * H^(8-q)`` — every product
    independent of the running GHASH state, so all ``m * 8`` block
    multiplies collapse into one gather over the stacked power tables
    plus an XOR reduction.  Returns ``m`` python ints; the caller folds
    them serially with ``y = y * H^8 ^ sum`` (one scalar table multiply
    per chunk instead of eight).
    """
    global _GH_Q, _GH_P
    if _GH_Q is None:
        _GH_Q = np.arange(GHASH_STRIDE, dtype=np.intp).reshape(1, GHASH_STRIDE, 1)
        _GH_P = np.arange(16, dtype=np.intp).reshape(1, 1, 16)
    idx = np.frombuffer(data, dtype=np.uint8,
                        count=m * 16 * GHASH_STRIDE).reshape(m, GHASH_STRIDE, 16)
    s_hi = np.bitwise_xor.reduce(
        hi[_GH_Q, _GH_P, idx].reshape(m, 16 * GHASH_STRIDE), axis=1)
    s_lo = np.bitwise_xor.reduce(
        lo[_GH_Q, _GH_P, idx].reshape(m, 16 * GHASH_STRIDE), axis=1)
    return [(a << 64) | b for a, b in zip(s_hi.tolist(), s_lo.tolist())]


def xor_bytes(a, b) -> bytes:
    """XOR two equal-length byte strings (numpy above a size threshold)."""
    n = len(a)
    if HAVE_NUMPY and n >= XOR_MIN_BYTES:
        va = np.frombuffer(bytes(a), dtype=np.uint8)
        vb = np.frombuffer(bytes(b), dtype=np.uint8)
        return (va ^ vb).tobytes()
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(n, "big")
