"""Pure-Python cryptographic substrate for the Shadowsocks reproduction.

No third-party crypto libraries are used; everything is implemented from
the specs (FIPS 197, SP 800-38D, RFC 8439, RFC 5869) and validated against
published test vectors.
"""

from .aead import AESGCM, AuthenticationError, ChaCha20Poly1305, new_aead
from .aes import AES
from .backend import current_backend, set_backend
from .chacha20 import ChaCha20, chacha20_block
from .kdf import derive_subkey, evp_bytes_to_key, hkdf_sha1
from .modes import CFBMode, CTRMode
from .poly1305 import poly1305_mac
from .registry import CIPHERS, CipherKind, CipherSpec, get_spec, specs_by_kind
from .stream import RC4, ChaCha20DJB, new_stream_cipher

__all__ = [
    "AES",
    "AESGCM",
    "AuthenticationError",
    "CFBMode",
    "CIPHERS",
    "CTRMode",
    "ChaCha20",
    "ChaCha20DJB",
    "ChaCha20Poly1305",
    "CipherKind",
    "CipherSpec",
    "RC4",
    "chacha20_block",
    "current_backend",
    "derive_subkey",
    "evp_bytes_to_key",
    "get_spec",
    "hkdf_sha1",
    "new_aead",
    "new_stream_cipher",
    "poly1305_mac",
    "set_backend",
    "specs_by_kind",
]
