"""Streaming cipher modes over a block cipher: CTR and CFB.

These are the modes used by the Shadowsocks "stream cipher" construction
(e.g. ``aes-128-ctr``, ``aes-256-cfb``).  Both are incremental: a mode
object carries keystream state across ``process`` calls, mirroring how a
Shadowsocks session encrypts a long TCP stream.

CTR generates keystream in batched blocks into a ``bytearray`` consumed
by cursor (the old ``+=`` on an immutable ``bytes`` was quadratic in a
single large call) and XORs whole buffers at once.  CFB works
block-at-a-time; encryption is inherently sequential (each keystream
block is the cipher of the *previous ciphertext block*), but decryption
knows all its register values up front — they are the ciphertext blocks
themselves — so it encrypts them as one batch.
"""

from __future__ import annotations

from ._numpy import xor_bytes
from .aes import AES, BLOCK_SIZE

__all__ = ["CTRMode", "CFBMode"]


class CTRMode:
    """AES-CTR with a big-endian full-block counter (OpenSSL semantics).

    Encryption and decryption are the same operation.
    """

    def __init__(self, key: bytes, iv: bytes):
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"CTR IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
        self._cipher = AES(key)
        self._counter = int.from_bytes(iv, "big")
        self._ks = bytearray()
        self._pos = 0

    def process(self, data: bytes) -> bytes:
        n = len(data)
        if not n:
            return b""
        if len(self._ks) - self._pos < n:
            need = n - (len(self._ks) - self._pos)
            nblocks = (need + BLOCK_SIZE - 1) // BLOCK_SIZE
            fresh = self._cipher.keystream(self._counter, nblocks)
            self._counter = (self._counter + nblocks) % (1 << 128)
            if self._pos:
                del self._ks[: self._pos]
                self._pos = 0
            self._ks += fresh
        ks = memoryview(self._ks)[self._pos : self._pos + n]
        out = xor_bytes(data, ks)
        ks.release()
        self._pos += n
        if self._pos == len(self._ks):
            self._ks.clear()
            self._pos = 0
        return out

    encrypt = process
    decrypt = process


class CFBMode:
    """AES-CFB128 (full-block feedback), incremental, OpenSSL semantics."""

    def __init__(self, key: bytes, iv: bytes, encrypt: bool):
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"CFB IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
        self._cipher = AES(key)
        self._register = iv
        self._encrypting = encrypt
        self._pending = b""  # keystream bytes not yet consumed from current block
        self._feedback = b""  # ciphertext bytes accumulated toward next register

    def process(self, data: bytes) -> bytes:
        n = len(data)
        if not n:
            return b""
        out = bytearray()
        pos = 0

        # Head: drain keystream left over from a partially consumed block.
        if self._pending:
            take = min(len(self._pending), n)
            ks = self._pending[:take]
            piece = (int.from_bytes(data[:take], "big")
                     ^ int.from_bytes(ks, "big")).to_bytes(take, "big")
            out += piece
            self._feedback += piece if self._encrypting else data[:take]
            self._pending = self._pending[take:]
            if len(self._feedback) == BLOCK_SIZE:
                self._register = self._feedback
            pos = take
            if pos == n:
                return bytes(out)

        # Aligned now: the register holds the last 16 ciphertext bytes.
        self._feedback = b""
        enc = self._cipher.encrypt_block
        reg = self._register
        nfull = (n - pos) // BLOCK_SIZE
        if nfull:
            end = pos + BLOCK_SIZE * nfull
            if self._encrypting:
                # Sequential: keystream block i is E(ciphertext block i-1).
                # Work on the register as a 128-bit int to avoid a
                # bytes round-trip per block.
                encrypt_words = self._cipher._encrypt_words
                r = int.from_bytes(reg, "big")
                for i in range(pos, end, BLOCK_SIZE):
                    e0, e1, e2, e3 = encrypt_words(
                        r >> 96, (r >> 64) & 0xFFFFFFFF,
                        (r >> 32) & 0xFFFFFFFF, r & 0xFFFFFFFF)
                    r = ((e0 << 96) | (e1 << 64) | (e2 << 32) | e3) \
                        ^ int.from_bytes(data[i : i + BLOCK_SIZE], "big")
                    out += r.to_bytes(BLOCK_SIZE, "big")
                reg = bytes(out[-BLOCK_SIZE:])
            else:
                # All register values are known ciphertext blocks: batch.
                regs = reg + data[pos : end - BLOCK_SIZE]
                ks = self._cipher.encrypt_blocks(regs)
                out += xor_bytes(data[pos:end], ks)
                reg = data[end - BLOCK_SIZE : end]
            pos = end

        # Tail: start a partial block.
        if pos < n:
            full_ks = enc(reg)
            take = n - pos
            piece = (int.from_bytes(data[pos:], "big")
                     ^ int.from_bytes(full_ks[:take], "big")).to_bytes(take, "big")
            out += piece
            self._pending = full_ks[take:]
            self._feedback = piece if self._encrypting else data[pos:]
        else:
            self._pending = b""
        self._register = reg
        return bytes(out)

    encrypt = process
    decrypt = process
