"""Streaming cipher modes over a block cipher: CTR and CFB.

These are the modes used by the Shadowsocks "stream cipher" construction
(e.g. ``aes-128-ctr``, ``aes-256-cfb``).  Both are incremental: a mode
object carries keystream state across ``process`` calls, mirroring how a
Shadowsocks session encrypts a long TCP stream.
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE

__all__ = ["CTRMode", "CFBMode"]


class CTRMode:
    """AES-CTR with a big-endian full-block counter (OpenSSL semantics).

    Encryption and decryption are the same operation.
    """

    def __init__(self, key: bytes, iv: bytes):
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"CTR IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
        self._cipher = AES(key)
        self._counter = int.from_bytes(iv, "big")
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        while len(self._keystream) < len(data):
            block = self._counter.to_bytes(BLOCK_SIZE, "big")
            self._counter = (self._counter + 1) % (1 << 128)
            self._keystream += self._cipher.encrypt_block(block)
        ks, self._keystream = self._keystream[: len(data)], self._keystream[len(data) :]
        return bytes(a ^ b for a, b in zip(data, ks))

    encrypt = process
    decrypt = process


class CFBMode:
    """AES-CFB128 (full-block feedback), incremental, OpenSSL semantics."""

    def __init__(self, key: bytes, iv: bytes, encrypt: bool):
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"CFB IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
        self._cipher = AES(key)
        self._register = iv
        self._encrypting = encrypt
        self._pending = b""  # keystream bytes not yet consumed from current block
        self._feedback = b""  # ciphertext bytes accumulated toward next register

    def process(self, data: bytes) -> bytes:
        out = bytearray()
        for byte in data:
            if not self._pending:
                self._pending = self._cipher.encrypt_block(self._register)
                self._feedback = b""
            c = byte ^ self._pending[0]
            self._pending = self._pending[1:]
            # The feedback register shifts in *ciphertext* bytes.
            cipher_byte = c if self._encrypting else byte
            self._feedback += bytes([cipher_byte])
            if len(self._feedback) == BLOCK_SIZE:
                self._register = self._feedback
            out.append(c)
        return bytes(out)

    encrypt = process
    decrypt = process
