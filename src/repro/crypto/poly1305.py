"""Poly1305 one-time authenticator (RFC 8439 §2.5).

The accumulator runs over 16-byte chunks read straight out of the
message with ``int.from_bytes`` — the final-byte 0x01 marker is added
arithmetically (``+ 2^(8*len)``) instead of concatenating ``chunk +
b"\\x01"`` per block, so a full-speed MAC allocates nothing per chunk.
``_Poly1305`` is the incremental form used by the ChaCha20-Poly1305 AEAD
to fold aad / ciphertext / padding / lengths in piecewise without
materializing the padded concatenation.
"""

from __future__ import annotations

__all__ = ["poly1305_mac"]

_P = (1 << 130) - 5
_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
_HI = 1 << 128


class _Poly1305:
    """Incremental Poly1305: ``update`` at any chunking, then ``tag``."""

    def __init__(self, key: bytes):
        if len(key) != 32:
            raise ValueError(f"Poly1305 key must be 32 bytes, got {len(key)}")
        self._r = int.from_bytes(key[:16], "little") & _CLAMP
        self._s = int.from_bytes(key[16:], "little")
        self._acc = 0
        self._partial = b""

    def update(self, data: bytes) -> "_Poly1305":
        if self._partial:
            need = 16 - len(self._partial)
            self._partial += data[:need]
            if len(self._partial) < 16:
                return self
            data = data[need:]
            self._acc = ((self._acc + _HI
                          + int.from_bytes(self._partial, "little"))
                         * self._r) % _P
            self._partial = b""
        n = len(data)
        tail = n % 16
        full = n - tail
        acc, r = self._acc, self._r
        for i in range(0, full, 16):
            acc = ((acc + _HI + int.from_bytes(data[i : i + 16], "little"))
                   * r) % _P
        self._acc = acc
        if tail:
            self._partial = bytes(data[full:])
        return self

    def tag(self) -> bytes:
        acc = self._acc
        if self._partial:
            acc = ((acc + (1 << (8 * len(self._partial)))
                    + int.from_bytes(self._partial, "little")) * self._r) % _P
        return ((acc + self._s) & (_HI - 1)).to_bytes(16, "little")


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key."""
    return _Poly1305(key).update(message).tag()
