"""Poly1305 one-time authenticator (RFC 8439 §2.5)."""

from __future__ import annotations

__all__ = ["poly1305_mac"]

_P = (1 << 130) - 5
_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key."""
    if len(key) != 32:
        raise ValueError(f"Poly1305 key must be 32 bytes, got {len(key)}")
    r = int.from_bytes(key[:16], "little") & _CLAMP
    s = int.from_bytes(key[16:], "little")
    acc = 0
    for i in range(0, len(message), 16):
        chunk = message[i : i + 16]
        n = int.from_bytes(chunk + b"\x01", "little")
        acc = ((acc + n) * r) % _P
    return ((acc + s) & ((1 << 128) - 1)).to_bytes(16, "little")
