"""Crypto backend switch: optimized fast paths vs retained references.

The fast implementations are property-tested byte-identical to the
references, so which backend a run uses is unobservable in its output —
but keeping the originals wired in forever means equivalence stays
testable and any suspected fast-path bug can be bisected by flipping one
environment variable:

    REPRO_CRYPTO=reference python -m repro run shadowsocks ...

``set_backend`` overrides the environment for the current process (used
by the equivalence tests and ``repro bench --backend``).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional

__all__ = ["BACKENDS", "current_backend", "set_backend",
           "stream_cipher_impls", "aead_impls"]

BACKENDS = ("fast", "reference")

_override: Optional[str] = None


_env_backend: Optional[str] = None


def current_backend() -> str:
    """Active backend name: the ``set_backend`` override, else $REPRO_CRYPTO.

    The environment variable is read (and validated) once per process —
    this sits on the per-session ``new_aead`` path, and an ``environ``
    probe costs more than the whole dispatch.  In-process switching goes
    through :func:`set_backend`, which always wins over the cached value.
    """
    if _override is not None:
        return _override
    global _env_backend
    if _env_backend is None:
        name = os.environ.get("REPRO_CRYPTO", "fast").strip().lower() or "fast"
        if name not in BACKENDS:
            raise ValueError(
                f"REPRO_CRYPTO must be one of {BACKENDS}, got {name!r}")
        _env_backend = name
    return _env_backend


def set_backend(name: Optional[str]) -> None:
    """Force a backend for this process; ``None`` returns to the env var."""
    global _override
    if name is not None and name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    _override = name


def stream_cipher_impls():
    """(chacha20_djb, chacha20_ietf, rc4, ctr, cfb) constructors."""
    return _stream_impls_for(current_backend())


def aead_impls():
    """(aes_gcm, chacha20_poly1305) constructors."""
    return _aead_impls_for(current_backend())


@lru_cache(maxsize=None)
def _stream_impls_for(name: str):
    if name == "reference":
        from . import _reference as ref

        return (ref.ReferenceChaCha20DJB, ref.ReferenceChaCha20,
                ref.ReferenceRC4, ref.ReferenceCTRMode, ref.ReferenceCFBMode)
    from .chacha20 import ChaCha20
    from .modes import CFBMode, CTRMode
    from .stream import RC4, ChaCha20DJB

    return (ChaCha20DJB, ChaCha20, RC4, CTRMode, CFBMode)


@lru_cache(maxsize=None)
def _aead_impls_for(name: str):
    if name == "reference":
        from . import _reference as ref

        return (ref.ReferenceAESGCM, ref.ReferenceChaCha20Poly1305)
    from .aead import ChaCha20Poly1305
    from .gcm import AESGCM

    return (AESGCM, ChaCha20Poly1305)
