"""ChaCha20 stream cipher (RFC 8439, "IETF" variant: 96-bit nonce).

Shadowsocks uses ``chacha20-ietf`` as a stream cipher (12-byte IV) and
ChaCha20 as the keystream half of ``chacha20-ietf-poly1305``.  The round
function is inlined and unrolled, keystream is generated a whole buffer
of blocks per call (vectorized across blocks when numpy is available)
and consumed through a cursor, and the XOR runs over the whole buffer —
this cipher carries the bulk of the simulated tunnel traffic, so
per-block and per-byte overhead matter.
"""

from __future__ import annotations

import struct
from functools import lru_cache

from . import _numpy as _nx

__all__ = ["chacha20_block", "ChaCha20"]

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_M = 0xFFFFFFFF

def _run_rounds(init: list) -> bytes:
    """20 ChaCha rounds over ``init``; returns the serialized block.

    The double round is fully unrolled over sixteen named locals: the
    per-word list loads/stores and the quarter-round index walk of a
    rolled loop cost more than the arithmetic itself, and this function
    carries every tunnel byte in the simulation.
    """
    i0, i1, i2, i3, i4, i5, i6, i7, i8, i9, iA, iB, iC, iD, iE, iF = init
    x0, x1, x2, x3, x4, x5, x6, x7 = i0, i1, i2, i3, i4, i5, i6, i7
    x8, x9, xA, xB, xC, xD, xE, xF = i8, i9, iA, iB, iC, iD, iE, iF
    for _ in range(10):
        # Column round: QR(0,4,8,12) QR(1,5,9,13) QR(2,6,10,14) QR(3,7,11,15)
        x0 = (x0 + x4) & _M; xC ^= x0; xC = ((xC << 16) | (xC >> 16)) & _M
        x8 = (x8 + xC) & _M; x4 ^= x8; x4 = ((x4 << 12) | (x4 >> 20)) & _M
        x0 = (x0 + x4) & _M; xC ^= x0; xC = ((xC << 8) | (xC >> 24)) & _M
        x8 = (x8 + xC) & _M; x4 ^= x8; x4 = ((x4 << 7) | (x4 >> 25)) & _M
        x1 = (x1 + x5) & _M; xD ^= x1; xD = ((xD << 16) | (xD >> 16)) & _M
        x9 = (x9 + xD) & _M; x5 ^= x9; x5 = ((x5 << 12) | (x5 >> 20)) & _M
        x1 = (x1 + x5) & _M; xD ^= x1; xD = ((xD << 8) | (xD >> 24)) & _M
        x9 = (x9 + xD) & _M; x5 ^= x9; x5 = ((x5 << 7) | (x5 >> 25)) & _M
        x2 = (x2 + x6) & _M; xE ^= x2; xE = ((xE << 16) | (xE >> 16)) & _M
        xA = (xA + xE) & _M; x6 ^= xA; x6 = ((x6 << 12) | (x6 >> 20)) & _M
        x2 = (x2 + x6) & _M; xE ^= x2; xE = ((xE << 8) | (xE >> 24)) & _M
        xA = (xA + xE) & _M; x6 ^= xA; x6 = ((x6 << 7) | (x6 >> 25)) & _M
        x3 = (x3 + x7) & _M; xF ^= x3; xF = ((xF << 16) | (xF >> 16)) & _M
        xB = (xB + xF) & _M; x7 ^= xB; x7 = ((x7 << 12) | (x7 >> 20)) & _M
        x3 = (x3 + x7) & _M; xF ^= x3; xF = ((xF << 8) | (xF >> 24)) & _M
        xB = (xB + xF) & _M; x7 ^= xB; x7 = ((x7 << 7) | (x7 >> 25)) & _M
        # Diagonal round: QR(0,5,10,15) QR(1,6,11,12) QR(2,7,8,13) QR(3,4,9,14)
        x0 = (x0 + x5) & _M; xF ^= x0; xF = ((xF << 16) | (xF >> 16)) & _M
        xA = (xA + xF) & _M; x5 ^= xA; x5 = ((x5 << 12) | (x5 >> 20)) & _M
        x0 = (x0 + x5) & _M; xF ^= x0; xF = ((xF << 8) | (xF >> 24)) & _M
        xA = (xA + xF) & _M; x5 ^= xA; x5 = ((x5 << 7) | (x5 >> 25)) & _M
        x1 = (x1 + x6) & _M; xC ^= x1; xC = ((xC << 16) | (xC >> 16)) & _M
        xB = (xB + xC) & _M; x6 ^= xB; x6 = ((x6 << 12) | (x6 >> 20)) & _M
        x1 = (x1 + x6) & _M; xC ^= x1; xC = ((xC << 8) | (xC >> 24)) & _M
        xB = (xB + xC) & _M; x6 ^= xB; x6 = ((x6 << 7) | (x6 >> 25)) & _M
        x2 = (x2 + x7) & _M; xD ^= x2; xD = ((xD << 16) | (xD >> 16)) & _M
        x8 = (x8 + xD) & _M; x7 ^= x8; x7 = ((x7 << 12) | (x7 >> 20)) & _M
        x2 = (x2 + x7) & _M; xD ^= x2; xD = ((xD << 8) | (xD >> 24)) & _M
        x8 = (x8 + xD) & _M; x7 ^= x8; x7 = ((x7 << 7) | (x7 >> 25)) & _M
        x3 = (x3 + x4) & _M; xE ^= x3; xE = ((xE << 16) | (xE >> 16)) & _M
        x9 = (x9 + xE) & _M; x4 ^= x9; x4 = ((x4 << 12) | (x4 >> 20)) & _M
        x3 = (x3 + x4) & _M; xE ^= x3; xE = ((xE << 8) | (xE >> 24)) & _M
        x9 = (x9 + xE) & _M; x4 ^= x9; x4 = ((x4 << 7) | (x4 >> 25)) & _M
    return struct.pack(
        "<16L",
        (x0 + i0) & _M, (x1 + i1) & _M, (x2 + i2) & _M, (x3 + i3) & _M,
        (x4 + i4) & _M, (x5 + i5) & _M, (x6 + i6) & _M, (x7 + i7) & _M,
        (x8 + i8) & _M, (x9 + i9) & _M, (xA + iA) & _M, (xB + iB) & _M,
        (xC + iC) & _M, (xD + iD) & _M, (xE + iE) & _M, (xF + iF) & _M,
    )


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    """Reference quarter round (kept for the DJB variant and tests)."""
    state[a] = (state[a] + state[b]) & _M
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _M
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _M
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _M
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _rotl32(v: int, c: int) -> int:
    return ((v << c) | (v >> (32 - c))) & _M


@lru_cache(maxsize=4096)
def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 keystream block (RFC 8439 §2.3).

    Memoized: the dominant caller is Poly1305 one-time-key derivation,
    which evaluates the identical (key, counter=0, nonce) block on the
    sealing and the opening side of every AEAD record in one process.
    The function is pure, so the cache is unobservable; 4096 entries of
    64 bytes bound it to ~¼ MB.
    """
    if len(key) != 32:
        raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
    init = list(_CONSTANTS)
    init.extend(struct.unpack("<8L", key))
    init.append(counter & _M)
    init.extend(struct.unpack("<3L", nonce))
    return _run_rounds(init)


class _KeystreamCipher:
    """Shared cursor machinery for the incremental ChaCha variants.

    Subclasses provide ``_blocks(nblocks)`` producing that many 64-byte
    keystream blocks and advancing the counter.  ``process`` keeps
    unconsumed keystream in a ``bytearray`` drained through a cursor
    (never re-sliced, so large streams stay linear) and XORs whole
    buffers at a time.
    """

    _BLOCK = 64

    def __init__(self) -> None:
        self._ks = bytearray()
        self._pos = 0

    def process(self, data: bytes) -> bytes:
        n = len(data)
        if not n:
            return b""
        if len(self._ks) - self._pos < n:
            need = n - (len(self._ks) - self._pos)
            nblocks = (need + self._BLOCK - 1) // self._BLOCK
            fresh = self._blocks(nblocks)
            if self._pos:
                del self._ks[: self._pos]
                self._pos = 0
            self._ks += fresh
        ks = memoryview(self._ks)[self._pos : self._pos + n]
        out = _nx.xor_bytes(data, ks)
        ks.release()
        self._pos += n
        if self._pos == len(self._ks):
            self._ks.clear()
            self._pos = 0
        return out

    encrypt = process
    decrypt = process


class ChaCha20(_KeystreamCipher):
    """Incremental ChaCha20 keystream XOR, as used for a TCP byte stream."""

    def __init__(self, key: bytes, nonce: bytes, counter: int = 0):
        if len(key) != 32:
            raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
        if len(nonce) != 12:
            raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
        super().__init__()
        self._init = (
            list(_CONSTANTS) + list(struct.unpack("<8L", key)) + [0]
            + list(struct.unpack("<3L", nonce))
        )
        self._counter = counter

    def _blocks(self, nblocks: int) -> bytes:
        counter = self._counter
        self._counter += nblocks
        if _nx.HAVE_NUMPY and nblocks >= _nx.CHACHA_MIN_BLOCKS:
            return _nx.chacha_blocks(self._init, counter, nblocks, djb=False)
        init = self._init
        parts = []
        for i in range(nblocks):
            init[12] = (counter + i) & _M
            parts.append(_run_rounds(init))
        return b"".join(parts)
