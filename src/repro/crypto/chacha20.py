"""ChaCha20 stream cipher (RFC 8439, "IETF" variant: 96-bit nonce).

Shadowsocks uses ``chacha20-ietf`` as a stream cipher (12-byte IV) and
ChaCha20 as the keystream half of ``chacha20-ietf-poly1305``.  The round
function is inlined and unrolled — this cipher carries the bulk of the
simulated tunnel traffic, so per-block overhead matters.
"""

from __future__ import annotations

import struct

__all__ = ["chacha20_block", "ChaCha20"]

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_M = 0xFFFFFFFF

_ROUND_INDICES = (
    (0, 4, 8, 12), (1, 5, 9, 13), (2, 6, 10, 14), (3, 7, 11, 15),
    (0, 5, 10, 15), (1, 6, 11, 12), (2, 7, 8, 13), (3, 4, 9, 14),
)


def _run_rounds(init: list) -> bytes:
    """20 ChaCha rounds over ``init``; returns the serialized block."""
    x = list(init)
    for _ in range(10):
        for a, b, c, d in _ROUND_INDICES:
            xa, xb, xc, xd = x[a], x[b], x[c], x[d]
            xa = (xa + xb) & _M
            xd ^= xa
            xd = ((xd << 16) | (xd >> 16)) & _M
            xc = (xc + xd) & _M
            xb ^= xc
            xb = ((xb << 12) | (xb >> 20)) & _M
            xa = (xa + xb) & _M
            xd ^= xa
            xd = ((xd << 8) | (xd >> 24)) & _M
            xc = (xc + xd) & _M
            xb ^= xc
            xb = ((xb << 7) | (xb >> 25)) & _M
            x[a], x[b], x[c], x[d] = xa, xb, xc, xd
    return struct.pack("<16L", *((s + i) & _M for s, i in zip(x, init)))


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    """Reference quarter round (kept for the DJB variant and tests)."""
    state[a] = (state[a] + state[b]) & _M
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _M
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _M
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _M
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _rotl32(v: int, c: int) -> int:
    return ((v << c) | (v >> (32 - c))) & _M


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 keystream block (RFC 8439 §2.3)."""
    if len(key) != 32:
        raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
    init = list(_CONSTANTS)
    init.extend(struct.unpack("<8L", key))
    init.append(counter & _M)
    init.extend(struct.unpack("<3L", nonce))
    return _run_rounds(init)


class ChaCha20:
    """Incremental ChaCha20 keystream XOR, as used for a TCP byte stream."""

    def __init__(self, key: bytes, nonce: bytes, counter: int = 0):
        if len(key) != 32:
            raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
        if len(nonce) != 12:
            raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
        self._init = (
            list(_CONSTANTS) + list(struct.unpack("<8L", key)) + [0]
            + list(struct.unpack("<3L", nonce))
        )
        self._counter = counter
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        while len(self._keystream) < len(data):
            self._init[12] = self._counter & _M
            self._keystream += _run_rounds(self._init)
            self._counter += 1
        ks, self._keystream = self._keystream[: len(data)], self._keystream[len(data) :]
        return bytes(a ^ b for a, b in zip(data, ks))

    encrypt = process
    decrypt = process
