"""ChaCha20 stream cipher (RFC 8439, "IETF" variant: 96-bit nonce).

Shadowsocks uses ``chacha20-ietf`` as a stream cipher (12-byte IV) and
ChaCha20 as the keystream half of ``chacha20-ietf-poly1305``.  The round
function is inlined and unrolled, keystream is generated a whole buffer
of blocks per call (vectorized across blocks when numpy is available)
and consumed through a cursor, and the XOR runs over the whole buffer —
this cipher carries the bulk of the simulated tunnel traffic, so
per-block and per-byte overhead matter.
"""

from __future__ import annotations

import struct

from . import _numpy as _nx

__all__ = ["chacha20_block", "ChaCha20"]

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_M = 0xFFFFFFFF

_ROUND_INDICES = (
    (0, 4, 8, 12), (1, 5, 9, 13), (2, 6, 10, 14), (3, 7, 11, 15),
    (0, 5, 10, 15), (1, 6, 11, 12), (2, 7, 8, 13), (3, 4, 9, 14),
)


def _run_rounds(init: list) -> bytes:
    """20 ChaCha rounds over ``init``; returns the serialized block."""
    x = list(init)
    for _ in range(10):
        for a, b, c, d in _ROUND_INDICES:
            xa, xb, xc, xd = x[a], x[b], x[c], x[d]
            xa = (xa + xb) & _M
            xd ^= xa
            xd = ((xd << 16) | (xd >> 16)) & _M
            xc = (xc + xd) & _M
            xb ^= xc
            xb = ((xb << 12) | (xb >> 20)) & _M
            xa = (xa + xb) & _M
            xd ^= xa
            xd = ((xd << 8) | (xd >> 24)) & _M
            xc = (xc + xd) & _M
            xb ^= xc
            xb = ((xb << 7) | (xb >> 25)) & _M
            x[a], x[b], x[c], x[d] = xa, xb, xc, xd
    return struct.pack("<16L", *((s + i) & _M for s, i in zip(x, init)))


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    """Reference quarter round (kept for the DJB variant and tests)."""
    state[a] = (state[a] + state[b]) & _M
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _M
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _M
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _M
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _rotl32(v: int, c: int) -> int:
    return ((v << c) | (v >> (32 - c))) & _M


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 keystream block (RFC 8439 §2.3)."""
    if len(key) != 32:
        raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
    init = list(_CONSTANTS)
    init.extend(struct.unpack("<8L", key))
    init.append(counter & _M)
    init.extend(struct.unpack("<3L", nonce))
    return _run_rounds(init)


class _KeystreamCipher:
    """Shared cursor machinery for the incremental ChaCha variants.

    Subclasses provide ``_blocks(nblocks)`` producing that many 64-byte
    keystream blocks and advancing the counter.  ``process`` keeps
    unconsumed keystream in a ``bytearray`` drained through a cursor
    (never re-sliced, so large streams stay linear) and XORs whole
    buffers at a time.
    """

    _BLOCK = 64

    def __init__(self) -> None:
        self._ks = bytearray()
        self._pos = 0

    def process(self, data: bytes) -> bytes:
        n = len(data)
        if not n:
            return b""
        if len(self._ks) - self._pos < n:
            need = n - (len(self._ks) - self._pos)
            nblocks = (need + self._BLOCK - 1) // self._BLOCK
            fresh = self._blocks(nblocks)
            if self._pos:
                del self._ks[: self._pos]
                self._pos = 0
            self._ks += fresh
        ks = memoryview(self._ks)[self._pos : self._pos + n]
        out = _nx.xor_bytes(data, ks)
        ks.release()
        self._pos += n
        if self._pos == len(self._ks):
            self._ks.clear()
            self._pos = 0
        return out

    encrypt = process
    decrypt = process


class ChaCha20(_KeystreamCipher):
    """Incremental ChaCha20 keystream XOR, as used for a TCP byte stream."""

    def __init__(self, key: bytes, nonce: bytes, counter: int = 0):
        if len(key) != 32:
            raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
        if len(nonce) != 12:
            raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
        super().__init__()
        self._init = (
            list(_CONSTANTS) + list(struct.unpack("<8L", key)) + [0]
            + list(struct.unpack("<3L", nonce))
        )
        self._counter = counter

    def _blocks(self, nblocks: int) -> bytes:
        counter = self._counter
        self._counter += nblocks
        if _nx.HAVE_NUMPY and nblocks >= _nx.CHACHA_MIN_BLOCKS:
            return _nx.chacha_blocks(self._init, counter, nblocks, djb=False)
        init = self._init
        parts = []
        for i in range(nblocks):
            init[12] = (counter + i) & _M
            parts.append(_run_rounds(init))
        return b"".join(parts)
