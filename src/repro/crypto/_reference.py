"""Reference (textbook) implementations of the crypto substrate.

These are the original straight-from-the-spec implementations that the
optimized modules (``aes``, ``gcm``, ``modes``, ``chacha20``, ``stream``,
``poly1305``) replaced on the hot path.  They are retained verbatim, and
forever, for two reasons:

* **equivalence testing** — the property suite asserts the fast paths are
  byte-identical to these implementations over random keys, nonces,
  message sizes, and chunking patterns;
* **auditability** — ``REPRO_CRYPTO=reference`` (see
  :mod:`repro.crypto.backend`) swaps the Shadowsocks datapath factories
  back onto these, so any suspected miscompare can be re-run against the
  textbook code.

Nothing here is exported from :mod:`repro.crypto`; import from
``repro.crypto._reference`` explicitly.
"""

from __future__ import annotations

import struct
from typing import List

__all__ = [
    "ReferenceAES",
    "ReferenceAESGCM",
    "ReferenceCFBMode",
    "ReferenceCTRMode",
    "ReferenceChaCha20",
    "ReferenceChaCha20DJB",
    "ReferenceChaCha20Poly1305",
    "ReferenceRC4",
    "reference_chacha20_block",
    "reference_poly1305_mac",
]

BLOCK_SIZE = 16


# --------------------------------------------------------------------- AES
# Byte-oriented AES from FIPS 197 with a precomputed S-box.


def _build_sbox() -> List[int]:
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for i in range(256):
        inv = 0 if i == 0 else exp[255 - log[i]]
        s = inv
        for _ in range(4):
            inv = ((inv << 1) | (inv >> 7)) & 0xFF
            s ^= inv
        sbox[i] = s ^ 0x63
    return sbox


_SBOX = _build_sbox()
_MUL2 = [((x << 1) ^ 0x1B) & 0xFF if x & 0x80 else (x << 1) for x in range(256)]
_MUL3 = [_MUL2[x] ^ x for x in range(256)]
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


class ReferenceAES:
    """AES-128/192/256 forward block cipher (byte-oriented FIPS 197)."""

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24, or 32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        return [
            [words[4 * r + c][j] for c in range(4) for j in range(4)]
            for r in range(rounds + 1)
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        sbox, mul2, mul3 = _SBOX, _MUL2, _MUL3
        rk = self._round_keys
        s = [block[i] ^ rk[0][i] for i in range(16)]
        for rnd in range(1, self.rounds):
            t = [
                sbox[s[0]], sbox[s[5]], sbox[s[10]], sbox[s[15]],
                sbox[s[4]], sbox[s[9]], sbox[s[14]], sbox[s[3]],
                sbox[s[8]], sbox[s[13]], sbox[s[2]], sbox[s[7]],
                sbox[s[12]], sbox[s[1]], sbox[s[6]], sbox[s[11]],
            ]
            k = rk[rnd]
            s = [0] * 16
            for c in range(0, 16, 4):
                a0, a1, a2, a3 = t[c], t[c + 1], t[c + 2], t[c + 3]
                s[c] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3 ^ k[c]
                s[c + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3 ^ k[c + 1]
                s[c + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3] ^ k[c + 2]
                s[c + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3] ^ k[c + 3]
        t = [
            sbox[s[0]], sbox[s[5]], sbox[s[10]], sbox[s[15]],
            sbox[s[4]], sbox[s[9]], sbox[s[14]], sbox[s[3]],
            sbox[s[8]], sbox[s[13]], sbox[s[2]], sbox[s[7]],
            sbox[s[12]], sbox[s[1]], sbox[s[6]], sbox[s[11]],
        ]
        k = rk[self.rounds]
        return bytes(t[i] ^ k[i] for i in range(16))


# --------------------------------------------------------------------- GCM
# Shift-and-add GF(2^128) multiplication straight from SP 800-38D.

_R = 0xE1 << 120


def _gf_mult(x: int, y: int) -> int:
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0


class ReferenceAESGCM:
    """AES-GCM with 12-byte nonces and 16-byte tags (per-bit GHASH)."""

    TAG_SIZE = 16
    NONCE_SIZE = 12

    def __init__(self, key: bytes):
        self._aes = ReferenceAES(key)
        self._h = int.from_bytes(self._aes.encrypt_block(bytes(16)), "big")

    def _ghash(self, data: bytes) -> int:
        y = 0
        h = self._h
        for i in range(0, len(data), 16):
            block = data[i : i + 16].ljust(16, b"\x00")
            y = _gf_mult(y ^ int.from_bytes(block, "big"), h)
        return y

    def _crypt(self, nonce: bytes, data: bytes) -> bytes:
        out = bytearray()
        for i in range(0, len(data), 16):
            ctr = 2 + i // 16
            ks = self._aes.encrypt_block(nonce + struct.pack(">I", ctr))
            out.extend(a ^ b for a, b in zip(data[i : i + 16], ks))
        return bytes(out)

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        def pad16(b: bytes) -> bytes:
            return b + bytes(-len(b) % 16)

        ghash_input = (
            pad16(aad)
            + pad16(ciphertext)
            + struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
        )
        s = self._ghash(ghash_input)
        ek_y0 = self._aes.encrypt_block(nonce + struct.pack(">I", 1))
        return bytes(a ^ b for a, b in zip(s.to_bytes(16, "big"), ek_y0))

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be {self.NONCE_SIZE} bytes")
        ciphertext = self._crypt(nonce, plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        from .gcm import AuthenticationError

        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be {self.NONCE_SIZE} bytes")
        if len(sealed) < self.TAG_SIZE:
            raise AuthenticationError("ciphertext shorter than tag")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        if not _eq(tag, self._tag(nonce, aad, ciphertext)):
            raise AuthenticationError("GCM tag mismatch")
        return self._crypt(nonce, ciphertext)


# ------------------------------------------------------------- CTR and CFB


class ReferenceCTRMode:
    """AES-CTR with per-call keystream concatenation (quadratic on big calls)."""

    def __init__(self, key: bytes, iv: bytes):
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"CTR IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
        self._cipher = ReferenceAES(key)
        self._counter = int.from_bytes(iv, "big")
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        while len(self._keystream) < len(data):
            block = self._counter.to_bytes(BLOCK_SIZE, "big")
            self._counter = (self._counter + 1) % (1 << 128)
            self._keystream += self._cipher.encrypt_block(block)
        ks, self._keystream = self._keystream[: len(data)], self._keystream[len(data) :]
        return bytes(a ^ b for a, b in zip(data, ks))

    encrypt = process
    decrypt = process


class ReferenceCFBMode:
    """AES-CFB128, one byte at a time through the feedback register."""

    def __init__(self, key: bytes, iv: bytes, encrypt: bool):
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"CFB IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
        self._cipher = ReferenceAES(key)
        self._register = iv
        self._encrypting = encrypt
        self._pending = b""
        self._feedback = b""

    def process(self, data: bytes) -> bytes:
        out = bytearray()
        for byte in data:
            if not self._pending:
                self._pending = self._cipher.encrypt_block(self._register)
                self._feedback = b""
            c = byte ^ self._pending[0]
            self._pending = self._pending[1:]
            cipher_byte = c if self._encrypting else byte
            self._feedback += bytes([cipher_byte])
            if len(self._feedback) == BLOCK_SIZE:
                self._register = self._feedback
            out.append(c)
        return bytes(out)

    encrypt = process
    decrypt = process


# ---------------------------------------------------------------- ChaCha20

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_M = 0xFFFFFFFF


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _M
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _M
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _M
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _M
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _rotl32(v: int, c: int) -> int:
    return ((v << c) | (v >> (32 - c))) & _M


def _run_rounds(init: list) -> bytes:
    state = list(init)
    for _ in range(10):
        _quarter_round(state, 0, 4, 8, 12)
        _quarter_round(state, 1, 5, 9, 13)
        _quarter_round(state, 2, 6, 10, 14)
        _quarter_round(state, 3, 7, 11, 15)
        _quarter_round(state, 0, 5, 10, 15)
        _quarter_round(state, 1, 6, 11, 12)
        _quarter_round(state, 2, 7, 8, 13)
        _quarter_round(state, 3, 4, 9, 14)
    return struct.pack("<16L", *((s + i) & _M for s, i in zip(state, init)))


def reference_chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    if len(key) != 32:
        raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
    init = list(_CONSTANTS)
    init.extend(struct.unpack("<8L", key))
    init.append(counter & _M)
    init.extend(struct.unpack("<3L", nonce))
    return _run_rounds(init)


class ReferenceChaCha20:
    """Incremental RFC 8439 ChaCha20, one 64-byte block per inner loop."""

    def __init__(self, key: bytes, nonce: bytes, counter: int = 0):
        if len(key) != 32:
            raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
        if len(nonce) != 12:
            raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
        self._init = (
            list(_CONSTANTS) + list(struct.unpack("<8L", key)) + [0]
            + list(struct.unpack("<3L", nonce))
        )
        self._counter = counter
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        while len(self._keystream) < len(data):
            self._init[12] = self._counter & _M
            self._keystream += _run_rounds(self._init)
            self._counter += 1
        ks, self._keystream = self._keystream[: len(data)], self._keystream[len(data) :]
        return bytes(a ^ b for a, b in zip(data, ks))

    encrypt = process
    decrypt = process


def _chacha20_block_djb(key: bytes, counter: int, nonce: bytes) -> bytes:
    init = list(_CONSTANTS)
    init.extend(struct.unpack("<8L", key))
    init.append(counter & 0xFFFFFFFF)
    init.append((counter >> 32) & 0xFFFFFFFF)
    init.extend(struct.unpack("<2L", nonce))
    return _run_rounds(init)


class ReferenceChaCha20DJB:
    """Incremental original-variant ChaCha20 (8-byte nonce)."""

    def __init__(self, key: bytes, nonce: bytes):
        if len(key) != 32:
            raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
        if len(nonce) != 8:
            raise ValueError(f"DJB ChaCha20 nonce must be 8 bytes, got {len(nonce)}")
        self._key = key
        self._nonce = nonce
        self._counter = 0
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        while len(self._keystream) < len(data):
            self._keystream += _chacha20_block_djb(self._key, self._counter, self._nonce)
            self._counter += 1
        ks, self._keystream = self._keystream[: len(data)], self._keystream[len(data) :]
        return bytes(a ^ b for a, b in zip(data, ks))

    encrypt = process
    decrypt = process


# --------------------------------------------------------------------- RC4


class ReferenceRC4:
    """RC4 keystream XOR (for the ``rc4-md5`` method)."""

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("RC4 key must be non-empty")
        s = list(range(256))
        j = 0
        for i in range(256):
            j = (j + s[i] + key[i % len(key)]) % 256
            s[i], s[j] = s[j], s[i]
        self._s = s
        self._i = 0
        self._j = 0

    def process(self, data: bytes) -> bytes:
        s, i, j = self._s, self._i, self._j
        out = bytearray()
        for byte in data:
            i = (i + 1) % 256
            j = (j + s[i]) % 256
            s[i], s[j] = s[j], s[i]
            out.append(byte ^ s[(s[i] + s[j]) % 256])
        self._i, self._j = i, j
        return bytes(out)

    encrypt = process
    decrypt = process


# ---------------------------------------------------------------- Poly1305

_P1305 = (1 << 130) - 5
_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def reference_poly1305_mac(key: bytes, message: bytes) -> bytes:
    if len(key) != 32:
        raise ValueError(f"Poly1305 key must be 32 bytes, got {len(key)}")
    r = int.from_bytes(key[:16], "little") & _CLAMP
    s = int.from_bytes(key[16:], "little")
    acc = 0
    for i in range(0, len(message), 16):
        chunk = message[i : i + 16]
        n = int.from_bytes(chunk + b"\x01", "little")
        acc = ((acc + n) * r) % _P1305
    return ((acc + s) & ((1 << 128) - 1)).to_bytes(16, "little")


# ------------------------------------------------------ ChaCha20-Poly1305


class ReferenceChaCha20Poly1305:
    """ChaCha20-Poly1305 AEAD per RFC 8439, on the reference primitives."""

    TAG_SIZE = 16
    NONCE_SIZE = 12
    KEY_SIZE = 32

    def __init__(self, key: bytes):
        if len(key) != self.KEY_SIZE:
            raise ValueError(f"key must be {self.KEY_SIZE} bytes, got {len(key)}")
        self._key = key

    def _poly_key(self, nonce: bytes) -> bytes:
        return reference_chacha20_block(self._key, 0, nonce)[:32]

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        def pad16(b: bytes) -> bytes:
            return b + bytes(-len(b) % 16)

        mac_data = (
            pad16(aad)
            + pad16(ciphertext)
            + struct.pack("<QQ", len(aad), len(ciphertext))
        )
        return reference_poly1305_mac(self._poly_key(nonce), mac_data)

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        ciphertext = ReferenceChaCha20(self._key, nonce, counter=1).encrypt(plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        from .gcm import AuthenticationError

        if len(sealed) < self.TAG_SIZE:
            raise AuthenticationError("ciphertext shorter than tag")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        if not _eq(tag, self._tag(nonce, aad, ciphertext)):
            raise AuthenticationError("Poly1305 tag mismatch")
        return ReferenceChaCha20(self._key, nonce, counter=1).decrypt(ciphertext)
