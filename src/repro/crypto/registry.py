"""Cipher registry: every Shadowsocks encryption method this repo models.

A :class:`CipherSpec` records the protocol-relevant parameters — key length
and, crucially for the GFW's probes, the IV length (stream construction) or
salt length (AEAD construction).  The paper groups server reactions by
exactly these lengths (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["CipherKind", "CipherSpec", "CIPHERS", "get_spec", "specs_by_kind"]


class CipherKind:
    STREAM = "stream"
    AEAD = "aead"


@dataclass(frozen=True)
class CipherSpec:
    """Static parameters of one encryption method."""

    name: str
    kind: str  # CipherKind.STREAM or CipherKind.AEAD
    key_len: int
    iv_len: int  # IV length (stream) or salt length (AEAD), in bytes

    @property
    def salt_len(self) -> int:
        """Alias for :attr:`iv_len` when talking about AEAD methods."""
        return self.iv_len

    @property
    def tag_len(self) -> int:
        if self.kind != CipherKind.AEAD:
            raise ValueError(f"{self.name} is not an AEAD method")
        return 16


_ALL_SPECS: List[CipherSpec] = [
    # Stream construction (deprecated).  IV lengths 8 / 12 / 16 — the three
    # rows of Figure 10a.
    CipherSpec("chacha20", CipherKind.STREAM, 32, 8),
    CipherSpec("chacha20-ietf", CipherKind.STREAM, 32, 12),
    CipherSpec("aes-128-ctr", CipherKind.STREAM, 16, 16),
    CipherSpec("aes-192-ctr", CipherKind.STREAM, 24, 16),
    CipherSpec("aes-256-ctr", CipherKind.STREAM, 32, 16),
    CipherSpec("aes-128-cfb", CipherKind.STREAM, 16, 16),
    CipherSpec("aes-192-cfb", CipherKind.STREAM, 24, 16),
    CipherSpec("aes-256-cfb", CipherKind.STREAM, 32, 16),
    CipherSpec("rc4-md5", CipherKind.STREAM, 16, 16),
    # AEAD construction.  Salt lengths 16 / 24 / 32 — the rows of Figure 10b.
    CipherSpec("aes-128-gcm", CipherKind.AEAD, 16, 16),
    CipherSpec("aes-192-gcm", CipherKind.AEAD, 24, 24),
    CipherSpec("aes-256-gcm", CipherKind.AEAD, 32, 32),
    CipherSpec("chacha20-ietf-poly1305", CipherKind.AEAD, 32, 32),
]

CIPHERS: Dict[str, CipherSpec] = {spec.name: spec for spec in _ALL_SPECS}


def get_spec(name: str) -> CipherSpec:
    try:
        return CIPHERS[name]
    except KeyError:
        raise ValueError(f"unknown cipher method: {name!r}") from None


def specs_by_kind(kind: str) -> List[CipherSpec]:
    return [spec for spec in _ALL_SPECS if spec.kind == kind]
