"""Pure-Python AES block cipher (forward direction only), T-table fast path.

Every cipher mode used by Shadowsocks (CTR, CFB, GCM) needs only the
*encryption* direction of the block cipher, so the inverse cipher is not
implemented.  SubBytes + ShiftRows + MixColumns are fused into four
precomputed 32-bit T-tables and the round loop works on four column
words, which is several times faster than the byte-oriented FIPS 197
walk retained in :mod:`repro.crypto._reference` (and property-tested
byte-identical to it).  ``keystream`` generates many counter-mode blocks
per call so CTR/GCM pay Python's call overhead once per buffer, not once
per 16 bytes.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16

_MASK128 = (1 << 128) - 1

# Rijndael S-box, generated once at import time from the multiplicative
# inverse in GF(2^8) followed by the affine transform.


def _build_sbox() -> List[int]:
    # Multiplicative inverses via log/antilog tables over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for i in range(256):
        inv = 0 if i == 0 else exp[255 - log[i]]
        # affine transform
        s = inv
        for _ in range(4):
            inv = ((inv << 1) | (inv >> 7)) & 0xFF
            s ^= inv
        sbox[i] = s ^ 0x63
    return sbox


_SBOX = _build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


def _build_ttables() -> Tuple[List[int], List[int], List[int], List[int]]:
    """Fuse SubBytes+MixColumns into one 32-bit word table per input row.

    With column words packed big-endian (row 0 in the top byte), the
    MixColumns matrix [2 3 1 1 / 1 2 3 1 / 1 1 2 3 / 3 1 1 2] gives, for
    s = S[x] and d = xtime(s):

        T0[x] = d<<24 | s<<16 | s<<8 | (d^s)
        T1..T3 are byte rotations of T0.
    """
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = _SBOX[x]
        d = ((s << 1) ^ 0x1B) & 0xFF if s & 0x80 else s << 1
        w = (d << 24) | (s << 16) | (s << 8) | (d ^ s)
        t0.append(w)
        t1.append(((w >> 8) | (w << 24)) & 0xFFFFFFFF)
        t2.append(((w >> 16) | (w << 16)) & 0xFFFFFFFF)
        t3.append(((w >> 24) | (w << 8)) & 0xFFFFFFFF)
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_ttables()


class AES:
    """AES-128/192/256 forward block cipher.

    >>> AES(bytes(16)).encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24, or 32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[Tuple[int, int, int, int]]:
        """FIPS 197 key schedule, packed as one big-endian word per column."""
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        sbox = _SBOX
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (sbox[temp >> 24] << 24)
                    | (sbox[(temp >> 16) & 0xFF] << 16)
                    | (sbox[(temp >> 8) & 0xFF] << 8)
                    | sbox[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (sbox[temp >> 24] << 24)
                    | (sbox[(temp >> 16) & 0xFF] << 16)
                    | (sbox[(temp >> 8) & 0xFF] << 8)
                    | sbox[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return [tuple(words[4 * r : 4 * r + 4]) for r in range(rounds + 1)]

    def _encrypt_words(self, w0: int, w1: int, w2: int, w3: int) -> Tuple[int, int, int, int]:
        """Encrypt one block given as four big-endian column words."""
        t0, t1, t2, t3, sbox = _T0, _T1, _T2, _T3, _SBOX
        rk = self._round_keys
        k0, k1, k2, k3 = rk[0]
        w0 ^= k0
        w1 ^= k1
        w2 ^= k2
        w3 ^= k3
        for rnd in range(1, self.rounds):
            k0, k1, k2, k3 = rk[rnd]
            e0 = t0[w0 >> 24] ^ t1[(w1 >> 16) & 0xFF] ^ t2[(w2 >> 8) & 0xFF] ^ t3[w3 & 0xFF] ^ k0
            e1 = t0[w1 >> 24] ^ t1[(w2 >> 16) & 0xFF] ^ t2[(w3 >> 8) & 0xFF] ^ t3[w0 & 0xFF] ^ k1
            e2 = t0[w2 >> 24] ^ t1[(w3 >> 16) & 0xFF] ^ t2[(w0 >> 8) & 0xFF] ^ t3[w1 & 0xFF] ^ k2
            e3 = t0[w3 >> 24] ^ t1[(w0 >> 16) & 0xFF] ^ t2[(w1 >> 8) & 0xFF] ^ t3[w2 & 0xFF] ^ k3
            w0, w1, w2, w3 = e0, e1, e2, e3
        # Final round: SubBytes + ShiftRows only.
        k0, k1, k2, k3 = rk[self.rounds]
        return (
            ((sbox[w0 >> 24] << 24) | (sbox[(w1 >> 16) & 0xFF] << 16)
             | (sbox[(w2 >> 8) & 0xFF] << 8) | sbox[w3 & 0xFF]) ^ k0,
            ((sbox[w1 >> 24] << 24) | (sbox[(w2 >> 16) & 0xFF] << 16)
             | (sbox[(w3 >> 8) & 0xFF] << 8) | sbox[w0 & 0xFF]) ^ k1,
            ((sbox[w2 >> 24] << 24) | (sbox[(w3 >> 16) & 0xFF] << 16)
             | (sbox[(w0 >> 8) & 0xFF] << 8) | sbox[w1 & 0xFF]) ^ k2,
            ((sbox[w3 >> 24] << 24) | (sbox[(w0 >> 16) & 0xFF] << 16)
             | (sbox[(w1 >> 8) & 0xFF] << 8) | sbox[w2 & 0xFF]) ^ k3,
        )

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        n = int.from_bytes(block, "big")
        e0, e1, e2, e3 = self._encrypt_words(
            n >> 96, (n >> 64) & 0xFFFFFFFF, (n >> 32) & 0xFFFFFFFF, n & 0xFFFFFFFF
        )
        return ((e0 << 96) | (e1 << 64) | (e2 << 32) | e3).to_bytes(16, "big")

    def keystream(self, counter: int, nblocks: int, step_mask: int = _MASK128) -> bytearray:
        """Counter-mode keystream: ``nblocks`` blocks from ``counter`` upward.

        The counter is a 128-bit big-endian block value, incremented by 1
        per block modulo 2^128.  ``step_mask`` narrows the incrementing
        portion (GCM increments only the low 32 bits); the high bits stay
        fixed.  One call amortizes attribute lookups and the round-key
        fetch over the whole buffer — this is the CTR/GCM hot loop.
        """
        from . import _numpy as _nx

        if _nx.HAVE_NUMPY and nblocks >= _nx.AES_MIN_BLOCKS:
            return bytearray(_nx.aes_keystream(
                self._round_keys, self.rounds, counter, nblocks, step_mask))
        encrypt_words = self._encrypt_words
        out = bytearray(16 * nblocks)
        fixed = counter & ~step_mask
        ctr = counter & step_mask
        pos = 0
        for _ in range(nblocks):
            n = fixed | ctr
            e0, e1, e2, e3 = encrypt_words(
                n >> 96, (n >> 64) & 0xFFFFFFFF, (n >> 32) & 0xFFFFFFFF, n & 0xFFFFFFFF
            )
            out[pos : pos + 16] = (
                (e0 << 96) | (e1 << 64) | (e2 << 32) | e3
            ).to_bytes(16, "big")
            pos += 16
            ctr = (ctr + 1) & step_mask
        return out

    def encrypt_blocks(self, blocks) -> bytes:
        """ECB-encrypt a buffer of concatenated 16-byte blocks.

        The blocks are independent, so this path vectorizes across them
        (unlike a chained mode's sequential per-block loop).  Used by CFB
        decryption, where every keystream input is a known ciphertext
        block.
        """
        if len(blocks) % BLOCK_SIZE:
            raise ValueError("buffer must be a multiple of 16 bytes")
        from . import _numpy as _nx

        nblocks = len(blocks) // BLOCK_SIZE
        if _nx.HAVE_NUMPY and nblocks >= _nx.AES_MIN_BLOCKS:
            return _nx.aes_batch_encrypt(self._round_keys, self.rounds, blocks)
        encrypt_words = self._encrypt_words
        out = bytearray(len(blocks))
        for pos in range(0, len(blocks), 16):
            n = int.from_bytes(blocks[pos : pos + 16], "big")
            e0, e1, e2, e3 = encrypt_words(
                n >> 96, (n >> 64) & 0xFFFFFFFF, (n >> 32) & 0xFFFFFFFF, n & 0xFFFFFFFF
            )
            out[pos : pos + 16] = (
                (e0 << 96) | (e1 << 64) | (e2 << 32) | e3
            ).to_bytes(16, "big")
        return bytes(out)
