"""Pure-Python AES block cipher (forward direction only).

Every cipher mode used by Shadowsocks (CTR, CFB, GCM) needs only the
*encryption* direction of the block cipher, so the inverse cipher is not
implemented.  The implementation is the straightforward byte-oriented AES
from FIPS 197 with a precomputed S-box; it is validated against the FIPS
test vectors in the test suite.
"""

from __future__ import annotations

from typing import List

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16

# Rijndael S-box, generated once at import time from the multiplicative
# inverse in GF(2^8) followed by the affine transform.


def _build_sbox() -> List[int]:
    # Multiplicative inverses via log/antilog tables over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for i in range(256):
        inv = 0 if i == 0 else exp[255 - log[i]]
        # affine transform
        s = inv
        for _ in range(4):
            inv = ((inv << 1) | (inv >> 7)) & 0xFF
            s ^= inv
        sbox[i] = s ^ 0x63
    return sbox


_SBOX = _build_sbox()

# xtime tables for MixColumns.
_MUL2 = [((x << 1) ^ 0x1B) & 0xFF if x & 0x80 else (x << 1) for x in range(256)]
_MUL3 = [_MUL2[x] ^ x for x in range(256)]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


class AES:
    """AES-128/192/256 forward block cipher.

    >>> AES(bytes(16)).encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24, or 32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into per-round 16-byte flat keys.
        return [
            [words[4 * r + c][j] for c in range(4) for j in range(4)]
            for r in range(rounds + 1)
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        sbox, mul2, mul3 = _SBOX, _MUL2, _MUL3
        rk = self._round_keys
        s = [block[i] ^ rk[0][i] for i in range(16)]
        for rnd in range(1, self.rounds):
            # SubBytes + ShiftRows fused: state is column-major
            # (s[4c + r] is row r of column c).
            t = [
                sbox[s[0]], sbox[s[5]], sbox[s[10]], sbox[s[15]],
                sbox[s[4]], sbox[s[9]], sbox[s[14]], sbox[s[3]],
                sbox[s[8]], sbox[s[13]], sbox[s[2]], sbox[s[7]],
                sbox[s[12]], sbox[s[1]], sbox[s[6]], sbox[s[11]],
            ]
            k = rk[rnd]
            s = [0] * 16
            for c in range(0, 16, 4):
                a0, a1, a2, a3 = t[c], t[c + 1], t[c + 2], t[c + 3]
                s[c] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3 ^ k[c]
                s[c + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3 ^ k[c + 1]
                s[c + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3] ^ k[c + 2]
                s[c + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3] ^ k[c + 3]
        # Final round: no MixColumns.
        t = [
            sbox[s[0]], sbox[s[5]], sbox[s[10]], sbox[s[15]],
            sbox[s[4]], sbox[s[9]], sbox[s[14]], sbox[s[3]],
            sbox[s[8]], sbox[s[13]], sbox[s[2]], sbox[s[7]],
            sbox[s[12]], sbox[s[1]], sbox[s[6]], sbox[s[11]],
        ]
        k = rk[self.rounds]
        return bytes(t[i] ^ k[i] for i in range(16))
