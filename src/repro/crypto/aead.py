"""Unified AEAD interface: AES-GCM and ChaCha20-Poly1305 (RFC 8439 §2.8).

Both expose ``seal(nonce, plaintext, aad)`` / ``open(nonce, sealed, aad)``
with a trailing 16-byte tag, which is exactly the shape the Shadowsocks
AEAD construction consumes.
"""

from __future__ import annotations

import struct

from . import recordcache
from .chacha20 import ChaCha20, chacha20_block
from .gcm import AESGCM, AuthenticationError, _eq
from .poly1305 import _Poly1305

__all__ = ["AESGCM", "ChaCha20Poly1305", "AuthenticationError", "new_aead"]


class ChaCha20Poly1305:
    """ChaCha20-Poly1305 AEAD per RFC 8439."""

    TAG_SIZE = 16
    NONCE_SIZE = 12
    KEY_SIZE = 32

    def __init__(self, key: bytes):
        if len(key) != self.KEY_SIZE:
            raise ValueError(f"key must be {self.KEY_SIZE} bytes, got {len(key)}")
        self._key = key

    def _poly_key(self, nonce: bytes) -> bytes:
        return chacha20_block(self._key, 0, nonce)[:32]

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        # Stream the MAC input in pieces (aad, pad, ciphertext, pad,
        # lengths) instead of materializing the padded concatenation.
        mac = _Poly1305(self._poly_key(nonce))
        mac.update(aad)
        mac.update(bytes(-len(aad) % 16))
        mac.update(ciphertext)
        mac.update(bytes(-len(ciphertext) % 16))
        mac.update(struct.pack("<QQ", len(aad), len(ciphertext)))
        return mac.tag()

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        return recordcache.cached_seal(self._seal, "c20p", self._key, nonce,
                                       plaintext, aad)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        return recordcache.cached_open(self._open, "c20p", self._key, nonce,
                                       sealed, aad)

    def _seal(self, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        ciphertext = ChaCha20(self._key, nonce, counter=1).encrypt(plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def _open(self, nonce: bytes, sealed: bytes, aad: bytes) -> bytes:
        if len(sealed) < self.TAG_SIZE:
            raise AuthenticationError("ciphertext shorter than tag")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        if not _eq(tag, self._tag(nonce, aad, ciphertext)):
            raise AuthenticationError("Poly1305 tag mismatch")
        return ChaCha20(self._key, nonce, counter=1).decrypt(ciphertext)


# (impl-class, name, key) -> instance.  Both AEAD classes are stateless
# per call — seal/open are pure functions of (nonce, message, aad); the
# only instance attributes beyond the key are lazily built lookup tables
# — so sessions deriving the same subkey (HKDF is memoized, and seeded
# repeats re-derive the same salts) can share one object and its tables.
# Keyed on the impl class, so flipping REPRO_CRYPTO backends mid-process
# can never hand back an instance from the other backend.
_INSTANCE_CACHE: dict = {}
_INSTANCE_CACHE_MAX = 1 << 12


def new_aead(name: str, key: bytes):
    """Construct (or reuse) an AEAD object by OpenSSL-style method name.

    Honours the ``REPRO_CRYPTO`` backend switch (fast vs reference).
    """
    from .backend import aead_impls

    aes_gcm, chacha_poly = aead_impls()
    if name in ("aes-128-gcm", "aes-192-gcm", "aes-256-gcm"):
        impl = aes_gcm
    elif name == "chacha20-ietf-poly1305":
        impl = chacha_poly
    else:
        raise ValueError(f"unknown AEAD method: {name!r}")
    cache_key = (impl, name, key)
    box = _INSTANCE_CACHE.get(cache_key)
    if box is None:
        box = impl(key)
        if len(_INSTANCE_CACHE) >= _INSTANCE_CACHE_MAX:
            _INSTANCE_CACHE.clear()
        _INSTANCE_CACHE[cache_key] = box
    return box
