"""Generic Shadowsocks server engine, parameterized by a behaviour profile.

One engine implements both wire constructions; a
:class:`~repro.shadowsocks.implementations.base.BehaviorProfile` selects
the error-handling quirks that distinguish Shadowsocks-libev versions and
OutlineVPN versions from each other (Figure 10, Table 5).

Observable reactions produced here, per the paper's taxonomy:

* **RST** — ``conn.abort()`` on auth failure / bad address type
  (old implementations);
* **FIN/ACK** — graceful close when an outbound connection to the
  (usually garbage) target fails;
* **TIMEOUT** — the engine just keeps reading; whoever probes gives up
  first (new implementations, and all implementations while a target
  spec is still incomplete).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..crypto import AuthenticationError, evp_bytes_to_key, get_spec
from ..crypto.registry import CipherKind
from .aead_session import AeadDecryptor, AeadEncryptor
from .implementations.base import BehaviorProfile, ErrorAction
from .implementations.registry import get_profile
from .replay import NonceReplayFilter, TimedReplayFilter
from .spec import INVALID, NEED_MORE, ATYP_HOSTNAME, ATYP_IPV4, parse_target
from .stream_session import StreamDecryptor, StreamEncryptor

__all__ = ["ShadowsocksServer", "ServerSession"]


class ShadowsocksServer:
    """A Shadowsocks server bound to one host:port."""

    def __init__(
        self,
        host,
        port: int,
        password: str,
        method: str,
        profile="ss-libev-3.3.1",
        *,
        rng: Optional[random.Random] = None,
        connect_timeout: float = 6.0,
        dns_delay: float = 0.05,
        timed_replay_window: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self.method = method
        self.cipher_spec = get_spec(method)
        self.profile: BehaviorProfile = (
            get_profile(profile) if isinstance(profile, str) else profile
        )
        if self.cipher_spec.kind == CipherKind.STREAM and not self.profile.supports_stream:
            raise ValueError(f"{self.profile.display} does not support stream ciphers")
        if self.cipher_spec.kind == CipherKind.AEAD and not self.profile.supports_aead:
            raise ValueError(f"{self.profile.display} does not support AEAD ciphers")
        self.master = evp_bytes_to_key(password.encode("utf-8"), self.cipher_spec.key_len)
        self.rng = rng or random.Random(0x55AA)
        self.connect_timeout = connect_timeout
        self.dns_delay = dns_delay
        # Shared across connections, like the real daemon's global filter.
        self.replay_filter = NonceReplayFilter() if self.profile.replay_filter else None
        # Optional §7.2-style defense, layered on top when configured.
        self.timed_filter = (
            TimedReplayFilter(timed_replay_window) if timed_replay_window else None
        )
        self.sessions: List[ServerSession] = []
        host.listen(port, self._accept)

    def _accept(self, conn) -> None:
        self.host.sim.bus.incr("ss.session.accepted")
        self.sessions.append(ServerSession(self, conn))

    def restart(self) -> None:
        """Model a daemon restart: volatile replay state is lost."""
        if self.replay_filter is not None:
            self.replay_filter.restart()
        if self.timed_filter is not None:
            self.timed_filter.restart()

    def stop(self) -> None:
        self.host.unlisten(self.port)


class ServerSession:
    """One accepted connection."""

    HANDSHAKE = "handshake"
    CONNECTING = "connecting"
    PROXY = "proxy"
    DRAIN = "drain"  # error swallowed; read forever (TIMEOUT behaviour)
    DONE = "done"

    def __init__(self, server: ShadowsocksServer, conn):
        self.server = server
        self.conn = conn
        self.state = self.HANDSHAKE
        self.total_received = 0
        self._plain = bytearray()
        self._initial_data = b""
        self.remote = None
        self.target = None
        self._idle_event = None
        self._connect_event = None
        self.nonce_checked = False

        kind = server.cipher_spec.kind
        if kind == CipherKind.STREAM:
            self._decryptor = StreamDecryptor(server.method, server.master)
        else:
            self._decryptor = AeadDecryptor(server.method, server.master)
        self._encryptor = None  # created lazily for the reply direction

        conn.on_data = self._on_data
        conn.on_remote_fin = self._on_client_fin
        conn.on_reset = self._teardown
        self._arm_idle()

    # -------------------------------------------------------------- plumbing

    @property
    def sim(self):
        return self.server.host.sim

    @property
    def profile(self) -> BehaviorProfile:
        return self.server.profile

    def _arm_idle(self) -> None:
        if self._idle_event is not None:
            self._idle_event.cancel()
        self._idle_event = self.sim.schedule(self.profile.idle_timeout, self._idle_timeout)

    def _idle_timeout(self) -> None:
        # Real servers reap idle connections with a graceful close.
        if self.state not in (self.DONE,):
            self.state = self.DONE
            self.conn.close()
            if self.remote is not None:
                self.remote.close()

    def _teardown(self) -> None:
        self.state = self.DONE
        if self._idle_event is not None:
            self._idle_event.cancel()
        if self._connect_event is not None:
            self._connect_event.cancel()
        if self.remote is not None and self.remote.state != "CLOSED":
            # Covers both an established pipe and a dial still in SYN_SENT.
            self.remote.abort()
            self.remote = None

    def _on_client_fin(self) -> None:
        if self.remote is not None and self.remote.is_open:
            self.remote.close()
        if self.state != self.DONE:
            self.state = self.DONE
            self.conn.close()
        if self._idle_event is not None:
            self._idle_event.cancel()

    def _fail(self) -> None:
        """Authentication failure or invalid target: profile-specific."""
        self.sim.bus.incr("ss.session.error")
        if self.profile.error_action == ErrorAction.RST:
            self.state = self.DONE
            if self._idle_event is not None:
                self._idle_event.cancel()
            self.conn.abort()
        else:
            self.state = self.DRAIN  # read forever; idle timer keeps running

    # ------------------------------------------------------------ data path

    def _on_data(self, data: bytes) -> None:
        self.total_received += len(data)
        self._arm_idle()
        if self.state == self.DRAIN or self.state == self.DONE:
            return
        if self.state == self.PROXY:
            self._proxy_client_data(data)
            return
        if self.state == self.CONNECTING:
            # Target connection still pending; buffer further client bytes.
            self._buffer_handshake(data, parse=False)
            return
        self._buffer_handshake(data, parse=True)

    def _buffer_handshake(self, data: bytes, parse: bool) -> None:
        if self.server.cipher_spec.kind == CipherKind.STREAM:
            self._handshake_stream(data, parse)
        else:
            self._handshake_aead(data, parse)

    # Stream construction --------------------------------------------------

    def _handshake_stream(self, data: bytes, parse: bool) -> None:
        had_iv = self._decryptor.iv_complete
        self._plain.extend(self._decryptor.decrypt(data))
        if not self._decryptor.iv_complete:
            return  # not even a full IV yet: wait silently
        if not had_iv and not self._check_nonce(self._decryptor.iv):
            return
        if parse:
            self._try_parse_target()

    # AEAD construction ----------------------------------------------------

    def _handshake_aead(self, data: bytes, parse: bool) -> None:
        had_salt = self._decryptor.salt_complete
        self._decryptor.feed(data)
        if not self._decryptor.salt_complete:
            return
        if not had_salt and not self._check_nonce(self._decryptor.salt):
            return
        threshold = 2 + 16 + 16 + 1 if self.profile.aead_waits_for_payload_tag else 2 + 16
        if not self._plain and self._decryptor.buffered < threshold:
            return  # keep waiting for the first chunk envelope
        try:
            chunks = self._decryptor.decrypt_available()
        except AuthenticationError:
            header_len = self.server.cipher_spec.salt_len + 2 + 16
            if (
                self.profile.finack_on_exact_header
                and self.total_received == header_len
            ):
                # Outline v1.0.6: a probe of exactly [salt][len][tag] size
                # draws an immediate FIN/ACK instead of a RST.
                self.state = self.DONE
                if self._idle_event is not None:
                    self._idle_event.cancel()
                self.conn.close()
            else:
                self._fail()
            return
        self._plain.extend(b"".join(chunks))
        if parse:
            self._try_parse_target()

    def _check_nonce(self, nonce: bytes) -> bool:
        """Run replay filters on a freshly completed IV/salt."""
        self.nonce_checked = True
        if self.server.timed_filter is not None:
            # The timestamp the client embeds is modeled as its send time;
            # a replay presents a stale one.
            if not self.server.timed_filter.check(nonce, self._claimed_time(), self.sim.now):
                self._fail()
                return False
        if self.server.replay_filter is not None and self.server.replay_filter.is_replay(nonce):
            self._fail()
            return False
        return True

    def _claimed_time(self) -> float:
        # See TimedReplayFilter: legitimate connections embed (approximately)
        # the current time.  Replays carry the original timestamp, which the
        # GFW cannot forge without the key.  The prober simulator registers
        # original timestamps in this registry when it records a payload.
        registry = getattr(self.server, "timestamp_registry", None)
        nonce = self._decryptor.iv if hasattr(self._decryptor, "iv") else self._decryptor.salt
        if registry is not None and nonce in registry:
            return registry[nonce]
        return self.sim.now

    # Target handling --------------------------------------------------------

    def _try_parse_target(self) -> None:
        result = parse_target(bytes(self._plain), mask_atyp=self.profile.mask_atyp)
        if result.status == NEED_MORE:
            # Legacy parsers insist on a complete spec in the first read;
            # a fragmented handshake (e.g. under brdgrd) draws a RST.
            if self.profile.rst_on_incomplete_spec and self._plain:
                self._fail()
            return
        if result.status == INVALID:
            self._fail()
            return
        self.target = result.spec
        self._initial_data = bytes(self._plain[result.consumed :])
        self._plain.clear()
        self._connect_target()

    def _connect_target(self) -> None:
        self.state = self.CONNECTING
        spec = self.target
        if spec.atyp == ATYP_HOSTNAME:
            ip = self.server.host.network.resolve(spec.host)
            if ip is None:
                # Resolution failure surfaces after a resolver round trip.
                self._connect_event = self.sim.schedule(
                    self.server.dns_delay, self._connect_failed
                )
                return
            self._dial(ip, spec.port)
        elif spec.atyp == ATYP_IPV4:
            self._dial(spec.host, spec.port)
        else:
            # No IPv6 fabric in the model; fails like an unreachable host.
            self._connect_event = self.sim.schedule(
                self.server.dns_delay, self._connect_failed
            )

    def _dial(self, ip: str, port: int) -> None:
        try:
            self.remote = self.server.host.connect(ip, port)
        except ValueError:
            # e.g. connecting to ourselves on a colliding 4-tuple
            self._connect_event = self.sim.schedule(0.0, self._connect_failed)
            return
        self.remote.on_connected = self._connect_succeeded
        self.remote.on_reset = self._connect_failed
        self._connect_event = self.sim.schedule(
            self.server.connect_timeout, self._connect_failed
        )

    def _connect_failed(self) -> None:
        if self.state != self.CONNECTING:
            return
        if self._connect_event is not None:
            self._connect_event.cancel()
        if (
            self.remote is not None
            and not self.remote.reset_received
            and self.remote.state != "CLOSED"
        ):
            self.remote.abort()
        self.remote = None
        # Failure to reach the target: graceful FIN/ACK toward the client.
        self.state = self.DONE
        if self._idle_event is not None:
            self._idle_event.cancel()
        self.conn.close()

    def _connect_succeeded(self) -> None:
        if self.state != self.CONNECTING:
            # The client went away while we were dialing.
            if self.remote is not None and self.remote.state != "CLOSED":
                self.remote.abort()
            return
        if self._connect_event is not None:
            self._connect_event.cancel()
        self.state = self.PROXY
        self.sim.bus.incr("ss.session.proxied")
        remote = self.remote
        remote.on_data = self._proxy_remote_data
        remote.on_remote_fin = self._remote_closed
        remote.on_reset = self._remote_reset
        if self._initial_data:
            remote.send(self._initial_data)
            self._initial_data = b""
        # Decrypt anything that arrived while we were connecting.
        backlog = bytes(self._plain)
        self._plain.clear()
        if backlog:
            remote.send(backlog)

    def _proxy_client_data(self, data: bytes) -> None:
        try:
            plaintext = self._decryptor.decrypt(data)
        except AuthenticationError:
            self._fail()
            return
        if plaintext and self.remote is not None:
            self.remote.send(plaintext)

    def _proxy_remote_data(self, data: bytes) -> None:
        if self._encryptor is None:
            kind = self.server.cipher_spec.kind
            if kind == CipherKind.STREAM:
                self._encryptor = StreamEncryptor(
                    self.server.method, self.server.master, rng=self.server.rng
                )
            else:
                self._encryptor = AeadEncryptor(
                    self.server.method, self.server.master, rng=self.server.rng
                )
        self.conn.send(self._encryptor.encrypt(data))
        self._arm_idle()

    def _remote_closed(self) -> None:
        if self.state == self.PROXY:
            self.state = self.DONE
            self.conn.close()
            if self._idle_event is not None:
                self._idle_event.cancel()

    def _remote_reset(self) -> None:
        if self.state == self.PROXY:
            self.state = self.DONE
            self.conn.abort()
            if self._idle_event is not None:
                self._idle_event.cancel()
