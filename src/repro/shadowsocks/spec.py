"""SOCKS-style target specification (the first plaintext a client sends).

Three address types::

    [0x01][4-byte IPv4 address][2-byte port]
    [0x03][1-byte length][hostname][2-byte port]
    [0x04][16-byte IPv6 address][2-byte port]

Parsing mirrors real server behaviour closely enough to reproduce the
probabilities in Figure 10a: with ``mask_atyp`` (Shadowsocks-libev's "one
time auth" artifact) the upper four bits of the address type are ignored,
which raises the chance that random bytes parse as a valid type from
3/256 to 3/16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "ATYP_IPV4",
    "ATYP_HOSTNAME",
    "ATYP_IPV6",
    "TargetSpec",
    "SpecParseResult",
    "encode_target",
    "parse_target",
    "NEED_MORE",
    "INVALID",
]

ATYP_IPV4 = 0x01
ATYP_HOSTNAME = 0x03
ATYP_IPV6 = 0x04

NEED_MORE = "need_more"
INVALID = "invalid"


@dataclass(frozen=True)
class TargetSpec:
    """A parsed target: where the proxy should connect."""

    atyp: int
    host: str  # dotted quad, hostname, or hex IPv6
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class SpecParseResult:
    """Outcome of parsing plaintext bytes as a target specification."""

    status: str  # "ok", NEED_MORE, or INVALID
    spec: Optional[TargetSpec] = None
    consumed: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def encode_target(host: str, port: int, atyp: Optional[int] = None) -> bytes:
    """Encode a target spec; the address type is inferred if not given."""
    if not 0 <= port <= 0xFFFF:
        raise ValueError(f"port out of range: {port}")
    if atyp is None:
        atyp = ATYP_IPV4 if _is_ipv4(host) else ATYP_HOSTNAME
    if atyp == ATYP_IPV4:
        return bytes([ATYP_IPV4]) + _pack_ipv4(host) + port.to_bytes(2, "big")
    if atyp == ATYP_HOSTNAME:
        name = host.encode("ascii")
        if not 1 <= len(name) <= 255:
            raise ValueError(f"hostname length out of range: {len(name)}")
        return bytes([ATYP_HOSTNAME, len(name)]) + name + port.to_bytes(2, "big")
    if atyp == ATYP_IPV6:
        return bytes([ATYP_IPV6]) + _pack_ipv6(host) + port.to_bytes(2, "big")
    raise ValueError(f"unknown address type {atyp:#x}")


def parse_target(plaintext: bytes, mask_atyp: bool = False) -> SpecParseResult:
    """Parse target-spec bytes as a server would.

    Returns status "ok" with the spec and bytes consumed, NEED_MORE when
    the (possibly garbage) prefix is consistent with a longer spec, or
    INVALID when the address type byte is not 0x01/0x03/0x04.
    """
    if not plaintext:
        return SpecParseResult(NEED_MORE)
    atyp = plaintext[0] & 0x0F if mask_atyp else plaintext[0]
    if atyp == ATYP_IPV4:
        if len(plaintext) < 7:
            return SpecParseResult(NEED_MORE)
        host = ".".join(str(b) for b in plaintext[1:5])
        port = int.from_bytes(plaintext[5:7], "big")
        return SpecParseResult("ok", TargetSpec(ATYP_IPV4, host, port), 7)
    if atyp == ATYP_HOSTNAME:
        if len(plaintext) < 2:
            return SpecParseResult(NEED_MORE)
        name_len = plaintext[1]
        if name_len == 0:
            return SpecParseResult(INVALID)
        total = 2 + name_len + 2
        if len(plaintext) < total:
            return SpecParseResult(NEED_MORE)
        # Real servers pass whatever bytes these are to the resolver;
        # decode permissively so random bytes behave like a garbage name.
        name = plaintext[2 : 2 + name_len].decode("latin-1")
        port = int.from_bytes(plaintext[2 + name_len : total], "big")
        return SpecParseResult("ok", TargetSpec(ATYP_HOSTNAME, name, port), total)
    if atyp == ATYP_IPV6:
        if len(plaintext) < 19:
            return SpecParseResult(NEED_MORE)
        raw = plaintext[1:17]
        host = ":".join(raw[i : i + 2].hex() for i in range(0, 16, 2))
        port = int.from_bytes(plaintext[17:19], "big")
        return SpecParseResult("ok", TargetSpec(ATYP_IPV6, host, port), 19)
    return SpecParseResult(INVALID)


def _is_ipv4(host: str) -> bool:
    parts = host.split(".")
    return len(parts) == 4 and all(p.isdigit() and 0 <= int(p) <= 255 for p in parts)


def _pack_ipv4(host: str) -> bytes:
    return bytes(int(p) for p in host.split("."))


def _pack_ipv6(host: str) -> bytes:
    groups = host.split(":")
    if len(groups) != 8:
        raise ValueError(f"IPv6 address must be 8 full groups, got {host!r}")
    return b"".join(int(g, 16).to_bytes(2, "big") for g in groups)
