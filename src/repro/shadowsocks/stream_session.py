"""Shadowsocks "stream cipher" construction (deprecated, unauthenticated).

Wire format, each direction::

    [variable-length IV][encrypted payload...]

Client and server share the EVP_BytesToKey-derived master key but use
independent random IVs.  There is no integrity protection — the property
every replay/byte-change probe in the paper exploits.
"""

from __future__ import annotations

import random
from typing import Optional

from ..crypto import evp_bytes_to_key, get_spec, new_stream_cipher
from ..crypto.registry import CipherKind
from ..randutil import byte_draws

__all__ = ["StreamEncryptor", "StreamDecryptor", "master_key"]


def master_key(password: str, method: str) -> bytes:
    spec = get_spec(method)
    return evp_bytes_to_key(password.encode("utf-8"), spec.key_len)


class StreamEncryptor:
    """One direction of a stream-construction session (sending side)."""

    def __init__(self, method: str, key: bytes, rng: Optional[random.Random] = None,
                 iv: Optional[bytes] = None):
        spec = get_spec(method)
        if spec.kind != CipherKind.STREAM:
            raise ValueError(f"{method} is not a stream method")
        self.spec = spec
        if iv is not None:
            if len(iv) != spec.iv_len:
                raise ValueError(f"IV must be {spec.iv_len} bytes for {method}")
            self.iv = iv
        else:
            rng = rng or random.Random()
            self.iv = byte_draws(rng, spec.iv_len)
        self._cipher = new_stream_cipher(method, key, self.iv, encrypt=True)
        self._iv_sent = False

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt; the first call is prefixed with the IV."""
        out = self._cipher.encrypt(plaintext)
        if not self._iv_sent:
            self._iv_sent = True
            return self.iv + out
        return out


class StreamDecryptor:
    """One direction of a stream-construction session (receiving side).

    Incremental: feed raw wire bytes, get back all plaintext decryptable
    so far.  The IV is consumed from the head of the stream.
    """

    def __init__(self, method: str, key: bytes):
        spec = get_spec(method)
        if spec.kind != CipherKind.STREAM:
            raise ValueError(f"{method} is not a stream method")
        self.spec = spec
        self._method = method
        self._key = key
        self._buffer = bytearray()
        self._cipher = None
        self.iv: Optional[bytes] = None

    @property
    def iv_complete(self) -> bool:
        return self.iv is not None

    def decrypt(self, data: bytes) -> bytes:
        """Feed ciphertext; returns newly available plaintext (may be b'')."""
        self._buffer.extend(data)
        if self._cipher is None:
            if len(self._buffer) < self.spec.iv_len:
                return b""
            self.iv = bytes(self._buffer[: self.spec.iv_len])
            del self._buffer[: self.spec.iv_len]
            self._cipher = new_stream_cipher(self._method, self._key, self.iv, encrypt=False)
        if not self._buffer:
            return b""
        chunk = bytes(self._buffer)
        self._buffer.clear()
        return self._cipher.decrypt(chunk)

    def decrypt_run(self, chunks) -> bytes:
        """Burst entry: decrypt a run of wire segments in one pass.

        Stream ciphers are position-keyed, so decrypting the
        concatenation equals concatenating per-segment decrypts; one
        call amortizes the IV/buffer bookkeeping over the run.
        """
        return self.decrypt(b"".join(chunks))
