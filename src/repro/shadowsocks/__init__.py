"""Shadowsocks protocol stack: wire formats, client, server, defenses."""

from .aead_session import MAX_CHUNK, AeadDecryptor, AeadEncryptor
from .bloom import BloomFilter, PingPongBloom
from .client import ClientSession, ShadowsocksClient
from .implementations.base import BehaviorProfile, ErrorAction
from .implementations.registry import PROFILES, all_profiles, get_profile, profiles_for
from .replay import NonceReplayFilter, TimedReplayFilter
from .server import ServerSession, ShadowsocksServer
from .spec import (
    ATYP_HOSTNAME,
    ATYP_IPV4,
    ATYP_IPV6,
    INVALID,
    NEED_MORE,
    SpecParseResult,
    TargetSpec,
    encode_target,
    parse_target,
)
from .stream_session import StreamDecryptor, StreamEncryptor
from .udp import (
    UdpShadowsocksClient,
    UdpShadowsocksServer,
    decode_udp_packet,
    encode_udp_packet,
)

__all__ = [
    "ATYP_HOSTNAME",
    "ATYP_IPV4",
    "ATYP_IPV6",
    "AeadDecryptor",
    "AeadEncryptor",
    "BehaviorProfile",
    "BloomFilter",
    "ClientSession",
    "ErrorAction",
    "INVALID",
    "MAX_CHUNK",
    "NEED_MORE",
    "NonceReplayFilter",
    "PROFILES",
    "PingPongBloom",
    "ServerSession",
    "ShadowsocksClient",
    "ShadowsocksServer",
    "SpecParseResult",
    "StreamDecryptor",
    "StreamEncryptor",
    "TargetSpec",
    "TimedReplayFilter",
    "UdpShadowsocksClient",
    "UdpShadowsocksServer",
    "all_profiles",
    "encode_target",
    "get_profile",
    "decode_udp_packet",
    "encode_udp_packet",
    "parse_target",
    "profiles_for",
]
