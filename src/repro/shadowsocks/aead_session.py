"""Shadowsocks AEAD construction (the current protocol).

Wire format, each direction::

    [variable-length salt]
    [2-byte encrypted length][16-byte length tag]
    [encrypted payload][16-byte payload tag]
    ...

A per-direction session subkey is HKDF-SHA1(master key, salt, "ss-subkey");
the nonce is a little-endian counter incremented after every seal/open.
The length prefix is capped at 0x3FFF as in the spec.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..crypto import AuthenticationError, derive_subkey, evp_bytes_to_key, get_spec, new_aead
from ..crypto.registry import CipherKind
from ..randutil import byte_draws

__all__ = ["AeadEncryptor", "AeadDecryptor", "MAX_CHUNK", "aead_master_key"]

MAX_CHUNK = 0x3FFF
TAG = 16
NONCE = 12


def aead_master_key(password: str, method: str) -> bytes:
    spec = get_spec(method)
    return evp_bytes_to_key(password.encode("utf-8"), spec.key_len)


class _NonceCounter:
    def __init__(self):
        self._value = 0

    def next(self) -> bytes:
        nonce = self._value.to_bytes(NONCE, "little")
        self._value += 1
        return nonce


class AeadEncryptor:
    """Sending side of one direction of an AEAD session."""

    def __init__(self, method: str, master: bytes, rng: Optional[random.Random] = None,
                 salt: Optional[bytes] = None):
        spec = get_spec(method)
        if spec.kind != CipherKind.AEAD:
            raise ValueError(f"{method} is not an AEAD method")
        self.spec = spec
        if salt is not None:
            if len(salt) != spec.salt_len:
                raise ValueError(f"salt must be {spec.salt_len} bytes for {method}")
            self.salt = salt
        else:
            rng = rng or random.Random()
            self.salt = byte_draws(rng, spec.salt_len)
        self._aead = new_aead(method, derive_subkey(master, self.salt))
        self._nonce = _NonceCounter()
        self._salt_sent = False

    def encrypt(self, plaintext: bytes) -> bytes:
        """Seal plaintext into one or more length-prefixed chunks."""
        out = bytearray()
        if not self._salt_sent:
            self._salt_sent = True
            out.extend(self.salt)
        for i in range(0, len(plaintext), MAX_CHUNK):
            chunk = plaintext[i : i + MAX_CHUNK]
            out.extend(self._aead.seal(self._nonce.next(), len(chunk).to_bytes(2, "big")))
            out.extend(self._aead.seal(self._nonce.next(), chunk))
        return bytes(out)


class AeadDecryptor:
    """Receiving side of one direction of an AEAD session.

    Incremental with explicit observability, because server *reactions to
    partial garbage* are what the GFW fingerprints: callers can see how
    many bytes are buffered, whether the salt is complete, and get an
    :class:`AuthenticationError` the moment a tag fails.
    """

    def __init__(self, method: str, master: bytes):
        spec = get_spec(method)
        if spec.kind != CipherKind.AEAD:
            raise ValueError(f"{method} is not an AEAD method")
        self.spec = spec
        self._method = method
        self._master = master
        self._buffer = bytearray()
        self._aead = None
        self._nonce = _NonceCounter()
        self._pending_len: Optional[int] = None
        self.salt: Optional[bytes] = None

    @property
    def salt_complete(self) -> bool:
        return self.salt is not None

    @property
    def buffered(self) -> int:
        """Bytes received but not yet decrypted (excluding a consumed salt)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        if self._aead is None and len(self._buffer) >= self.spec.salt_len:
            self.salt = bytes(self._buffer[: self.spec.salt_len])
            del self._buffer[: self.spec.salt_len]
            self._aead = new_aead(self._method, derive_subkey(self._master, self.salt))

    def decrypt_available(self) -> List[bytes]:
        """Open every complete chunk buffered so far.

        Raises :class:`AuthenticationError` on the first bad tag (after
        which the session is unusable, as in real implementations).
        """
        out: List[bytes] = []
        if self._aead is None:
            return out
        while True:
            if self._pending_len is None:
                if len(self._buffer) < 2 + TAG:
                    break
                sealed = bytes(self._buffer[: 2 + TAG])
                length = self._aead.open(self._nonce.next(), sealed)
                del self._buffer[: 2 + TAG]
                self._pending_len = int.from_bytes(length, "big") & MAX_CHUNK
            need = self._pending_len + TAG
            if len(self._buffer) < need:
                break
            sealed = bytes(self._buffer[:need])
            plaintext = self._aead.open(self._nonce.next(), sealed)
            del self._buffer[:need]
            self._pending_len = None
            out.append(plaintext)
        return out

    def decrypt(self, data: bytes) -> bytes:
        """Convenience: feed + join all chunks decryptable so far."""
        self.feed(data)
        return b"".join(self.decrypt_available())

    def decrypt_run(self, chunks: List[bytes]) -> bytes:
        """Burst entry: feed a run of wire segments, decrypt once.

        Record boundaries are protocol-level (length-prefixed), not
        segment-level, so feeding the concatenation and draining the
        buffer once is byte-identical to per-segment ``decrypt`` calls —
        same records, same nonce sequence, same final buffer state —
        while the whole run pays one buffering/drain pass.
        """
        self.feed(b"".join(chunks))
        return b"".join(self.decrypt_available())
