"""Shadowsocks client: opens tunnelled connections through a server.

The client controls one detail the paper shows matters a great deal: how
the first TCP payload is composed.  ``merge_header=True`` (the common
client behaviour) sends ``[IV/salt][target spec][initial data]`` in one
write, so the first packet's length varies with the underlying request —
the length distribution the GFW's passive classifier keys on.  With
``merge_header=False`` (OutlineVPN before July 2020) the target spec
travels alone in the first packet, giving it a near-constant size.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..crypto import AuthenticationError, evp_bytes_to_key, get_spec
from ..crypto.registry import CipherKind
from .aead_session import AeadDecryptor, AeadEncryptor
from .spec import encode_target
from .stream_session import StreamDecryptor, StreamEncryptor

__all__ = ["ShadowsocksClient", "ClientSession"]


class ShadowsocksClient:
    """Factory for tunnelled connections to one Shadowsocks server."""

    def __init__(
        self,
        host,
        server_ip: str,
        server_port: int,
        password: str,
        method: str,
        *,
        rng: Optional[random.Random] = None,
        merge_header: bool = True,
    ):
        self.host = host
        self.server_ip = server_ip
        self.server_port = server_port
        self.method = method
        self.cipher_spec = get_spec(method)
        self.master = evp_bytes_to_key(password.encode("utf-8"), self.cipher_spec.key_len)
        self.rng = rng or random.Random(0xC11E)
        self.merge_header = merge_header

    def open(
        self,
        target_host: str,
        target_port: int,
        payload: bytes = b"",
        on_reply: Optional[Callable[[bytes], None]] = None,
    ) -> "ClientSession":
        """Connect through the tunnel and send ``payload`` to the target."""
        return ClientSession(self, target_host, target_port, payload, on_reply)


class ClientSession:
    """One tunnelled connection (client side)."""

    def __init__(self, client: ShadowsocksClient, target_host: str, target_port: int,
                 payload: bytes, on_reply: Optional[Callable[[bytes], None]]):
        self.client = client
        self.target = (target_host, target_port)
        self.on_reply = on_reply or (lambda data: None)
        self.reply = bytearray()
        self.closed = False
        self.reset = False

        kind = client.cipher_spec.kind
        if kind == CipherKind.STREAM:
            self._encryptor = StreamEncryptor(client.method, client.master, rng=client.rng)
            self._decryptor = StreamDecryptor(client.method, client.master)
        else:
            self._encryptor = AeadEncryptor(client.method, client.master, rng=client.rng)
            self._decryptor = AeadDecryptor(client.method, client.master)

        self.conn = client.host.connect(client.server_ip, client.server_port)
        self.conn.on_connected = lambda: self._send_handshake(payload)
        self.conn.on_data = self._on_data
        if on_reply is None:
            # Burst receive: with no reply observer, the partitioning of
            # decrypt calls is unobservable (record boundaries are
            # protocol-level), so a whole in-order run may decrypt in
            # one pass.  With an observer the per-segment path keeps
            # the historical callback granularity.
            self.conn.on_data_run = self._on_data_run
        self.conn.on_remote_fin = self._on_fin
        self.conn.on_reset = self._on_reset

    @property
    def first_nonce(self) -> bytes:
        """The IV (stream) or salt (AEAD) of the client->server direction."""
        return getattr(self._encryptor, "iv", None) or self._encryptor.salt

    def _send_handshake(self, payload: bytes) -> None:
        spec = encode_target(*self.target)
        if self.client.merge_header and payload:
            self.conn.send(self._encryptor.encrypt(spec + payload))
        else:
            self.conn.send(self._encryptor.encrypt(spec))
            if payload:
                self.conn.send(self._encryptor.encrypt(payload))

    def send(self, data: bytes) -> None:
        """Send more application data through the tunnel."""
        if data:
            self.conn.send(self._encryptor.encrypt(data))

    def close(self) -> None:
        self.conn.close()

    def _on_data(self, data: bytes) -> None:
        try:
            plaintext = self._decryptor.decrypt(data)
        except AuthenticationError:
            # A tampered reply; real clients drop the connection.
            self.conn.abort()
            return
        if plaintext:
            self.reply.extend(plaintext)
            self.on_reply(plaintext)

    def _on_data_run(self, chunks) -> None:
        try:
            plaintext = self._decryptor.decrypt_run(chunks)
        except AuthenticationError:
            self.conn.abort()
            return
        if plaintext:
            self.reply.extend(plaintext)

    def _on_fin(self) -> None:
        self.closed = True
        self.conn.close()

    def _on_reset(self) -> None:
        self.closed = True
        self.reset = True
