"""Registry of implementation/version behaviour profiles.

The version ranges and their reactions come from §5.2–§5.3 of the paper
(Figure 10, Table 5) and the referenced changelogs:

* Shadowsocks-libev v3.0.8–v3.2.5 — RST on error, ATYP mask, Bloom replay
  filter, waits for a full first AEAD chunk envelope before decrypting.
* Shadowsocks-libev v3.3.1–v3.3.3 — identical except errors time out
  (commit a99c39c "Simplify the server auto blocking mechanism").
* OutlineVPN v1.0.6 — AEAD only, no replay filter, decrypts as soon as the
  [salt][len][tag] header arrives; FIN/ACK on a probe of *exactly* header
  size, RST beyond it.
* OutlineVPN v1.0.7–v1.0.8 — probing resistance via timeout (commit
  c70d512); still no replay filter.
* OutlineVPN v1.1.0 — adds the client-data replay defense (Feb 2020).
* Shadowsocks-python / ShadowsocksR — legacy stream-oriented servers with
  no replay defense; the implementations the paper's three blocked servers
  were running (§6).
"""

from __future__ import annotations

from typing import Dict, List

from .base import BehaviorProfile, ErrorAction

__all__ = ["PROFILES", "get_profile", "profiles_for", "all_profiles"]

_LIBEV_OLD_VERSIONS = ("3.0.8", "3.1.3", "3.2.5")
_LIBEV_NEW_VERSIONS = ("3.3.1", "3.3.3")

PROFILES: Dict[str, BehaviorProfile] = {}


def _register(profile: BehaviorProfile) -> None:
    PROFILES[profile.name] = profile


for _v in _LIBEV_OLD_VERSIONS:
    _register(BehaviorProfile(
        name=f"ss-libev-{_v}",
        display=f"Shadowsocks-libev v{_v}",
        supports_stream=True,
        supports_aead=True,
        replay_filter=True,
        mask_atyp=True,
        error_action=ErrorAction.RST,
        aead_waits_for_payload_tag=True,
    ))

for _v in _LIBEV_NEW_VERSIONS:
    _register(BehaviorProfile(
        name=f"ss-libev-{_v}",
        display=f"Shadowsocks-libev v{_v}",
        supports_stream=True,
        supports_aead=True,
        replay_filter=True,
        mask_atyp=True,
        error_action=ErrorAction.TIMEOUT,
        aead_waits_for_payload_tag=True,
    ))

_register(BehaviorProfile(
    name="outline-1.0.6",
    display="OutlineVPN v1.0.6",
    supports_stream=False,
    supports_aead=True,
    replay_filter=False,
    mask_atyp=False,
    error_action=ErrorAction.RST,
    aead_waits_for_payload_tag=False,
    finack_on_exact_header=True,
))

for _v in ("1.0.7", "1.0.8"):
    _register(BehaviorProfile(
        name=f"outline-{_v}",
        display=f"OutlineVPN v{_v}",
        supports_stream=False,
        supports_aead=True,
        replay_filter=False,
        mask_atyp=False,
        error_action=ErrorAction.TIMEOUT,
        aead_waits_for_payload_tag=False,
    ))

_register(BehaviorProfile(
    name="outline-1.1.0",
    display="OutlineVPN v1.1.0",
    supports_stream=False,
    supports_aead=True,
    replay_filter=True,
    mask_atyp=False,
    error_action=ErrorAction.TIMEOUT,
    aead_waits_for_payload_tag=False,
))

_register(BehaviorProfile(
    name="ss-python",
    display="Shadowsocks-python",
    supports_stream=True,
    supports_aead=False,
    replay_filter=False,
    mask_atyp=True,
    error_action=ErrorAction.RST,
    aead_waits_for_payload_tag=False,
    rst_on_incomplete_spec=True,
))

_register(BehaviorProfile(
    name="ssr",
    display="ShadowsocksR",
    supports_stream=True,
    supports_aead=False,
    replay_filter=False,
    mask_atyp=True,
    error_action=ErrorAction.RST,
    aead_waits_for_payload_tag=False,
    rst_on_incomplete_spec=True,
))


# Shadowsocks-rust: v1.8.5 added a replay-defense feature in response to
# the preliminary disclosure of this paper's findings (§11 / Availability).
_register(BehaviorProfile(
    name="ss-rust-1.8.4",
    display="Shadowsocks-rust v1.8.4",
    supports_stream=True,
    supports_aead=True,
    replay_filter=False,
    mask_atyp=False,
    error_action=ErrorAction.RST,
    aead_waits_for_payload_tag=True,
))

_register(BehaviorProfile(
    name="ss-rust-1.8.5",
    display="Shadowsocks-rust v1.8.5",
    supports_stream=True,
    supports_aead=True,
    replay_filter=True,
    mask_atyp=False,
    error_action=ErrorAction.RST,
    aead_waits_for_payload_tag=True,
))

_register(BehaviorProfile(
    name="go-shadowsocks2",
    display="go-shadowsocks2",
    supports_stream=True,
    supports_aead=True,
    replay_filter=False,
    mask_atyp=False,
    error_action=ErrorAction.RST,
    aead_waits_for_payload_tag=False,
))


def get_profile(name: str) -> BehaviorProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown implementation profile {name!r}; "
            f"known: {', '.join(sorted(PROFILES))}"
        ) from None


def profiles_for(implementation: str) -> List[BehaviorProfile]:
    """All registered versions of one implementation family."""
    prefix = implementation.rstrip("-") + "-"
    found = [p for n, p in sorted(PROFILES.items()) if n.startswith(prefix) or n == implementation]
    if not found:
        raise ValueError(f"no profiles for implementation {implementation!r}")
    return found


def all_profiles() -> List[BehaviorProfile]:
    return [PROFILES[name] for name in sorted(PROFILES)]
