"""Behaviour profiles: how each Shadowsocks implementation reacts to error.

The GFW's random probes work because implementations differ in exactly
these knobs (§5.2): whether the address type is masked, whether errors
produce an immediate RST or an endless read, how many bytes an AEAD
server wants before first attempting decryption, and whether replays are
filtered.  A :class:`BehaviorProfile` captures one implementation/version
range; the concrete reaction logic lives in the server engine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ErrorAction", "BehaviorProfile"]


class ErrorAction:
    """What a server does on authentication failure / invalid address type."""

    RST = "rst"          # close immediately with TCP RST
    TIMEOUT = "timeout"  # swallow the error and read forever


@dataclass(frozen=True)
class BehaviorProfile:
    """Static description of one implementation's observable behaviour."""

    name: str                      # registry key, e.g. "ss-libev-3.2.5"
    display: str                   # human-readable, e.g. "Shadowsocks-libev v3.2.5"
    supports_stream: bool
    supports_aead: bool
    replay_filter: bool            # Bloom filter over IVs/salts
    mask_atyp: bool                # mask upper 4 bits of the address type
    error_action: str              # ErrorAction.RST or ErrorAction.TIMEOUT
    aead_waits_for_payload_tag: bool
    # Outline v1.0.6 quirk: FIN/ACK when the buffered bytes stop at exactly
    # salt + 2 + 16 (a complete AEAD header and nothing more).
    finack_on_exact_header: bool = False
    # Legacy parsers (ShadowsocksR, Shadowsocks-python) that demand the
    # complete target spec in the first decrypted read and RST otherwise —
    # the implementations brdgrd's aggressive fragmentation breaks (§7.1).
    rst_on_incomplete_spec: bool = False
    idle_timeout: float = 60.0

    def __post_init__(self):
        if self.error_action not in (ErrorAction.RST, ErrorAction.TIMEOUT):
            raise ValueError(f"bad error_action {self.error_action!r}")
        if not (self.supports_stream or self.supports_aead):
            raise ValueError("profile must support at least one construction")
