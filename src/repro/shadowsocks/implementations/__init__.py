"""Per-implementation behaviour profiles."""

from .base import BehaviorProfile, ErrorAction
from .registry import PROFILES, all_profiles, get_profile, profiles_for

__all__ = ["BehaviorProfile", "ErrorAction", "PROFILES", "all_profiles",
           "get_profile", "profiles_for"]
