"""Replay-defense filters.

* :class:`NonceReplayFilter` — what Shadowsocks-libev ships: a Bloom
  filter over IVs/salts.  Pure nonce-based defenses are asymmetric
  (§7.2): the censor can replay after arbitrary delay, while the server
  must remember nonces forever (and across restarts) to be safe.
* :class:`TimedReplayFilter` — the paper's recommended fix (as in VMess):
  accept only connections whose embedded timestamp is fresh, so nonces
  need be remembered only within the freshness window.
"""

from __future__ import annotations

from typing import Dict

from .bloom import PingPongBloom

__all__ = ["NonceReplayFilter", "TimedReplayFilter"]


class NonceReplayFilter:
    """Bloom-filter nonce tracking (Shadowsocks-libev style).

    ``restart()`` clears state, modelling a server reboot — after which
    stored replays sail through, exactly the weakness §7.2 points out.
    """

    def __init__(self, capacity: int = 100_000):
        self._capacity = capacity
        self._bloom = PingPongBloom(capacity=capacity)
        self.hits = 0

    def is_replay(self, nonce: bytes) -> bool:
        seen = self._bloom.check_and_add(nonce)
        if seen:
            self.hits += 1
        return seen

    def restart(self) -> None:
        self._bloom = PingPongBloom(capacity=self._capacity)


class TimedReplayFilter:
    """Nonce + timestamp filter: reject stale or repeated connections.

    The client embeds a timestamp; the server rejects if |now - ts| is
    beyond ``window_seconds``, and otherwise checks the nonce against a
    table that is pruned as entries age out.  Memory is O(connection rate
    × window) instead of O(total history).
    """

    def __init__(self, window_seconds: float = 120.0):
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window = window_seconds
        self._nonces: Dict[bytes, float] = {}
        self.stale_rejections = 0
        self.replay_rejections = 0

    def check(self, nonce: bytes, claimed_time: float, now: float) -> bool:
        """Return True if the connection should be *accepted*."""
        self._prune(now)
        if abs(now - claimed_time) > self.window:
            self.stale_rejections += 1
            return False
        if nonce in self._nonces:
            self.replay_rejections += 1
            return False
        self._nonces[nonce] = now
        return True

    def _prune(self, now: float) -> None:
        cutoff = now - 2 * self.window
        stale = [n for n, t in self._nonces.items() if t < cutoff]
        for n in stale:
            del self._nonces[n]

    def restart(self) -> None:
        """A restart does not help the attacker: staleness still rejects."""
        self._nonces.clear()

    @property
    def tracked(self) -> int:
        return len(self._nonces)
