"""Bloom filter, as used by Shadowsocks-libev's replay defense.

Shadowsocks-libev remembers the IVs/salts of past connections in a
"ping-pong" pair of Bloom filters: when the active filter fills up, it
becomes the standby and a fresh one takes over.  This bounds memory but
creates the *forgetting window* the paper's long-delay replays (up to
570 hours, Figure 7) can slip through — one of the asymmetries §7.2
discusses.
"""

from __future__ import annotations

import hashlib
from typing import Optional

__all__ = ["BloomFilter", "PingPongBloom"]


class BloomFilter:
    """Classic Bloom filter over byte strings."""

    def __init__(self, bits: int = 1 << 16, hashes: int = 6):
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray((bits + 7) // 8)
        self.count = 0

    def _positions(self, item: bytes):
        digest = hashlib.sha256(item).digest()
        for i in range(self.hashes):
            chunk = digest[4 * i : 4 * i + 4]
            yield int.from_bytes(chunk, "big") % self.bits

    def add(self, item: bytes) -> None:
        for pos in self._positions(item):
            self._array[pos // 8] |= 1 << (pos % 8)
        self.count += 1

    def __contains__(self, item: bytes) -> bool:
        return all(self._array[pos // 8] & (1 << (pos % 8)) for pos in self._positions(item))


class PingPongBloom:
    """Two alternating Bloom filters with bounded total memory."""

    def __init__(self, capacity: int = 100_000, bits: int = 1 << 20, hashes: int = 6):
        self.capacity = capacity
        self._bits = bits
        self._hashes = hashes
        self._active = BloomFilter(bits, hashes)
        self._standby: Optional[BloomFilter] = None

    def check_and_add(self, item: bytes) -> bool:
        """Return True if ``item`` was (probably) seen before; record it."""
        seen = item in self._active or (self._standby is not None and item in self._standby)
        if not seen:
            self._active.add(item)
            if self._active.count >= self.capacity:
                self._standby = self._active
                self._active = BloomFilter(self._bits, self._hashes)
        return seen

    def __contains__(self, item: bytes) -> bool:
        return item in self._active or (self._standby is not None and item in self._standby)
