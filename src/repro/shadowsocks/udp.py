"""Shadowsocks UDP relay.

Each datagram is independently encrypted (there is no stream state):

* stream construction: ``[IV][encrypted: target spec || payload]``
* AEAD construction:   ``[salt][sealed:   target spec || payload]``
  with an all-zero nonce — safe because every datagram has a fresh salt.

The server keeps a NAT-style association per client source address: a
relay UDP port facing the targets, so replies can be routed back and
re-encrypted with the client's expected format.  Associations expire
after an idle timeout, as in real implementations.

The paper's measurements (and hence the GFW model here) are TCP-only;
this module exists because the protocol a user would deploy includes it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..crypto import AuthenticationError, derive_subkey, evp_bytes_to_key, get_spec, new_aead
from ..crypto.registry import CipherKind
from ..crypto.stream import new_stream_cipher
from ..randutil import byte_draws
from .spec import ATYP_HOSTNAME, ATYP_IPV4, encode_target, parse_target

__all__ = ["encode_udp_packet", "decode_udp_packet", "UdpShadowsocksServer",
           "UdpShadowsocksClient"]

_ZERO_NONCE = bytes(12)


def encode_udp_packet(method: str, master: bytes, spec_bytes: bytes,
                      payload: bytes, rng: random.Random) -> bytes:
    """Encrypt one UDP packet body ([spec][payload])."""
    spec = get_spec(method)
    plaintext = spec_bytes + payload
    nonce_len = spec.iv_len
    nonce = byte_draws(rng, nonce_len)
    if spec.kind == CipherKind.STREAM:
        cipher = new_stream_cipher(method, master, nonce, encrypt=True)
        return nonce + cipher.encrypt(plaintext)
    aead = new_aead(method, derive_subkey(master, nonce))
    return nonce + aead.seal(_ZERO_NONCE, plaintext)


def decode_udp_packet(method: str, master: bytes, wire: bytes) -> bytes:
    """Decrypt one UDP packet body; returns [spec][payload] plaintext.

    Raises :class:`AuthenticationError` on AEAD failure and ValueError on
    truncation.
    """
    spec = get_spec(method)
    if len(wire) < spec.iv_len:
        raise ValueError("datagram shorter than IV/salt")
    nonce, body = wire[: spec.iv_len], wire[spec.iv_len :]
    if spec.kind == CipherKind.STREAM:
        cipher = new_stream_cipher(method, master, nonce, encrypt=False)
        return cipher.decrypt(body)
    aead = new_aead(method, derive_subkey(master, nonce))
    return aead.open(_ZERO_NONCE, body)


@dataclass
class _Association:
    client: Tuple[str, int]
    relay_endpoint: object
    last_target: Optional[Tuple[str, int]] = None
    last_active: float = 0.0


class UdpShadowsocksServer:
    """UDP side of a Shadowsocks server."""

    IDLE_TIMEOUT = 60.0

    def __init__(self, host, port: int, password: str, method: str,
                 *, rng: Optional[random.Random] = None):
        self.host = host
        self.port = port
        self.method = method
        self.cipher_spec = get_spec(method)
        self.master = evp_bytes_to_key(password.encode("utf-8"),
                                       self.cipher_spec.key_len)
        self.rng = rng or random.Random(0x0D6)
        self.endpoint = host.udp_bind(port)
        self.endpoint.on_datagram = self._from_client
        self.associations: Dict[Tuple[str, int], _Association] = {}
        self.decode_failures = 0

    def _from_client(self, dgram) -> None:
        try:
            plaintext = decode_udp_packet(self.method, self.master,
                                          dgram.payload)
        except (AuthenticationError, ValueError):
            self.decode_failures += 1
            return  # UDP: invalid packets are silently dropped
        result = parse_target(plaintext)
        if not result.ok:
            self.decode_failures += 1
            return
        target_ip = self._resolve(result.spec)
        if target_ip is None:
            return
        assoc = self._association_for(dgram.source)
        assoc.last_target = (target_ip, result.spec.port)
        assoc.last_active = self.host.sim.now
        assoc.relay_endpoint.send(target_ip, result.spec.port,
                                  plaintext[result.consumed :])

    def _resolve(self, spec) -> Optional[str]:
        if spec.atyp == ATYP_IPV4:
            return spec.host
        if spec.atyp == ATYP_HOSTNAME:
            return self.host.network.resolve(spec.host)
        return None

    def _association_for(self, client: Tuple[str, int]) -> _Association:
        assoc = self.associations.get(client)
        if assoc is not None:
            return assoc
        relay = self.host.udp_bind()
        assoc = _Association(client=client, relay_endpoint=relay,
                             last_active=self.host.sim.now)

        def from_target(reply_dgram) -> None:
            assoc.last_active = self.host.sim.now
            # Reply format: [spec of the target it came from][payload].
            spec_bytes = encode_target(reply_dgram.src_ip,
                                       reply_dgram.src_port)
            wire = encode_udp_packet(self.method, self.master, spec_bytes,
                                     reply_dgram.payload, self.rng)
            self.endpoint.send(client[0], client[1], wire)

        relay.on_datagram = from_target
        self.associations[client] = assoc
        self.host.sim.schedule(self.IDLE_TIMEOUT, self._reap, client)
        return assoc

    def _reap(self, client: Tuple[str, int]) -> None:
        assoc = self.associations.get(client)
        if assoc is None:
            return
        idle = self.host.sim.now - assoc.last_active
        if idle >= self.IDLE_TIMEOUT:
            assoc.relay_endpoint.close()
            del self.associations[client]
        else:
            self.host.sim.schedule(self.IDLE_TIMEOUT - idle, self._reap, client)

    def stop(self) -> None:
        self.endpoint.close()
        for assoc in self.associations.values():
            assoc.relay_endpoint.close()
        self.associations.clear()


class UdpShadowsocksClient:
    """UDP side of a Shadowsocks client."""

    def __init__(self, host, server_ip: str, server_port: int, password: str,
                 method: str, *, rng: Optional[random.Random] = None):
        self.host = host
        self.server = (server_ip, server_port)
        self.method = method
        self.cipher_spec = get_spec(method)
        self.master = evp_bytes_to_key(password.encode("utf-8"),
                                       self.cipher_spec.key_len)
        self.rng = rng or random.Random(0x0D7)
        self.endpoint = host.udp_bind()
        self.endpoint.on_datagram = self._from_server
        # Callback receives (target_host, target_port, payload).
        self.on_reply: Callable[[str, int, bytes], None] = (
            lambda host_, port, payload: None)
        self.replies = []

    def send(self, target_host: str, target_port: int, payload: bytes) -> None:
        spec_bytes = encode_target(target_host, target_port)
        wire = encode_udp_packet(self.method, self.master, spec_bytes,
                                 payload, self.rng)
        self.endpoint.send(self.server[0], self.server[1], wire)

    def _from_server(self, dgram) -> None:
        try:
            plaintext = decode_udp_packet(self.method, self.master,
                                          dgram.payload)
        except (AuthenticationError, ValueError):
            return
        result = parse_target(plaintext)
        if not result.ok:
            return
        payload = plaintext[result.consumed :]
        self.replies.append((result.spec.host, result.spec.port, payload))
        self.on_reply(result.spec.host, result.spec.port, payload)

    def close(self) -> None:
        self.endpoint.close()
