"""Builtin protocol registrations: Shadowsocks, VMess, and Tor/obfs.

Each factory delegates to the underlying constructors with exactly the
arguments direct construction uses, so registry-built stacks are
byte-identical to hand-built ones (property-tested across every builtin
scenario).  Protocol packages are imported lazily inside the factories:
``repro.protocols`` stays importable without pulling in every stack.
"""

from __future__ import annotations

from typing import Any, Dict

from .base import ProxyProtocol, register_protocol

__all__ = ["ObfsProtocol", "ShadowsocksProtocol", "VmessProtocol"]


@register_protocol
class ShadowsocksProtocol(ProxyProtocol):
    """The paper's protocol: AEAD/stream Shadowsocks with behaviour profiles."""

    kind = "shadowsocks"
    probe_behavior = "shadowsocks"

    def __init__(self, password: str = "pw",
                 method: str = "chacha20-ietf-poly1305",
                 profile: str = "ss-libev-3.3.1"):
        self.password = password
        self.method = method
        self.profile = profile

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "password": self.password,
                "method": self.method, "profile": self.profile}

    def make_server(self, host, port, *, profile=None, rng=None, **kwargs):
        from ..shadowsocks import ShadowsocksServer

        return ShadowsocksServer(host, port, self.password, self.method,
                                 profile if profile is not None else self.profile,
                                 rng=rng, **kwargs)

    def make_client(self, host, server_ip, server_port, *, rng=None, **kwargs):
        from ..shadowsocks import ShadowsocksClient

        return ShadowsocksClient(host, server_ip, server_port, self.password,
                                 self.method, rng=rng, **kwargs)

    def describe(self) -> str:
        return f"shadowsocks ({self.method}, {self.profile})"


@register_protocol
class VmessProtocol(ProxyProtocol):
    """Legacy VMess (§9 future work) with its disclosed probing weaknesses."""

    kind = "vmess"
    # VMess endpoints face the same replay-probing playbook: the 2020
    # disclosures are replay-within-auth-window attacks.
    probe_behavior = "shadowsocks"

    def __init__(self, user_id: str = "000102030405060708090a0b0c0d0e0f",
                 profile: str = "v2ray-legacy"):
        # Hex in the spec (JSON-able), bytes on the wire.
        self.user_id = user_id
        self.profile = profile

    @property
    def user_id_bytes(self) -> bytes:
        return bytes.fromhex(self.user_id)

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "user_id": self.user_id,
                "profile": self.profile}

    def make_server(self, host, port, *, profile=None, rng=None, **kwargs):
        from ..vmess import VmessServer

        return VmessServer(host, port, self.user_id_bytes,
                           profile if profile is not None else self.profile,
                           rng=rng, **kwargs)

    def make_client(self, host, server_ip, server_port, *, rng=None, **kwargs):
        from ..vmess import VmessClient

        return VmessClient(host, server_ip, server_port, self.user_id_bytes,
                           rng=rng, **kwargs)

    def describe(self) -> str:
        return f"vmess ({self.profile})"


@register_protocol
class ObfsProtocol(ProxyProtocol):
    """Tor bridge transports: vanilla Tor, obfs3-style, obfs4-style.

    The profile picks the handshake the bridge speaks — and therefore
    which of the GFW's Tor probes it answers (see repro.obfs.server).
    Flagged flows route to the ``"tor"`` probing playbook: garbage +
    forged-VERSIONS probes with batched block rollout.
    """

    kind = "obfs"
    probe_behavior = "tor"

    def __init__(self, node_id: str = "bridge", profile: str = "obfs4"):
        self.node_id = node_id
        self.profile = profile

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "node_id": self.node_id,
                "profile": self.profile}

    def make_server(self, host, port, *, profile=None, rng=None, **kwargs):
        from ..obfs import ObfsServer

        return ObfsServer(host, port, self.node_id,
                          profile if profile is not None else self.profile,
                          rng=rng, **kwargs)

    def make_client(self, host, server_ip, server_port, *, rng=None, **kwargs):
        from ..obfs import ObfsClient

        return ObfsClient(host, server_ip, server_port, self.node_id,
                          profile=self.profile, rng=rng, **kwargs)

    def describe(self) -> str:
        return f"obfs ({self.profile})"
