"""Protocol plane: registry-driven proxy stacks (see base.py)."""

from .base import (
    ProxyProtocol,
    build_protocol,
    get_protocol,
    protocol_kinds,
    register_protocol,
)
from .builtin import ObfsProtocol, ShadowsocksProtocol, VmessProtocol

__all__ = [
    "ObfsProtocol",
    "ProxyProtocol",
    "ShadowsocksProtocol",
    "VmessProtocol",
    "build_protocol",
    "get_protocol",
    "protocol_kinds",
    "register_protocol",
]
