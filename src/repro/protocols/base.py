"""The :class:`ProxyProtocol` interface and the protocol registry.

A *protocol* bundles everything a scenario needs to stand up one proxy
stack: a server factory, a client factory, the session/record layer
(every client exposes ``open(target_host, target_port, payload,
on_reply)``), the server behaviour-profile knob, and the name of the
censor's probing playbook for flagged flows of this protocol.

The registry mirrors the detector-stage registry (PR 5): JSON-able
specs, ``register_protocol`` / ``build_protocol`` / ``protocol_kinds``,
so scenario configs, the CLI (``run --protocol``), and the service can
construct stacks by name without importing protocol packages directly.

Spec grammar::

    "shadowsocks"                                   # bare kind
    {"kind": "shadowsocks", "method": "aes-256-gcm"}
    {"kind": "obfs", "profile": "obfs3"}

Determinism contract: factories must delegate to the underlying
client/server constructors with exactly the arguments direct
construction would use — the builtin defaults are property-tested
byte-identical to direct construction on every builtin scenario.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Union

__all__ = [
    "ProxyProtocol",
    "build_protocol",
    "get_protocol",
    "protocol_kinds",
    "register_protocol",
]

ProtocolSpec = Union[str, Mapping[str, Any], "ProxyProtocol"]


class ProxyProtocol:
    """One proxy protocol's client/server/session construction recipe."""

    kind: str = ""
    # Name of the censor-side probing playbook for flagged flows of this
    # protocol (see repro.gfw.probing); detectors that classify traffic
    # as this protocol route endpoints to that behaviour.
    probe_behavior: str = "shadowsocks"

    def spec(self) -> Dict[str, Any]:
        """JSON-able ``{"kind": ..., **params}`` rebuilding this protocol."""
        return {"kind": self.kind}

    # ------------------------------------------------------------ factories

    def make_server(self, host: Any, port: int, *,
                    profile: Any = None, rng: Any = None, **kwargs: Any) -> Any:
        """Attach this protocol's server to ``host``, listening on ``port``.

        ``profile`` overrides the protocol's default behaviour profile
        for this one server (a profile name, or a profile object for
        hardened variants); ``rng`` overrides the implementation's
        default seeded stream.
        """
        raise NotImplementedError

    def make_client(self, host: Any, server_ip: str, server_port: int, *,
                    rng: Any = None, **kwargs: Any) -> Any:
        """Attach this protocol's client to ``host``, aimed at a server."""
        raise NotImplementedError

    # ------------------------------------------------------- session layer

    def open_session(self, client: Any, target_host: str, target_port: int,
                     payload: bytes = b"",
                     on_reply: Optional[Callable[[bytes], None]] = None) -> Any:
        """Open one proxied connection through ``client``.

        Every builtin client already exposes this exact signature as
        ``open`` (the contract :class:`~repro.workloads.CurlDriver`
        drives); the hook exists so protocols with a different session
        API can adapt without touching workload drivers.
        """
        return client.open(target_host, target_port, payload, on_reply)

    def describe(self) -> str:
        """One-line human-readable summary (CLI listings)."""
        return self.kind


_PROTOCOLS: Dict[str, Callable[..., ProxyProtocol]] = {}


def register_protocol(cls):
    """Class decorator: make a protocol constructible from its ``kind``."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must define a non-empty kind")
    _PROTOCOLS[cls.kind] = cls
    return cls


def protocol_kinds() -> List[str]:
    return sorted(_PROTOCOLS)


def build_protocol(spec: ProtocolSpec) -> ProxyProtocol:
    """Construct a protocol from a JSON-able spec (see module doc)."""
    if isinstance(spec, ProxyProtocol):
        return spec
    if isinstance(spec, str):
        spec = {"kind": spec}
    if not isinstance(spec, Mapping):
        raise TypeError(f"protocol spec must be a string or mapping, got {spec!r}")
    params = dict(spec)
    kind = params.pop("kind", None)
    if kind is None:
        raise ValueError(f"protocol spec {spec!r} has no 'kind'")
    try:
        cls = _PROTOCOLS[kind]
    except KeyError:
        known = ", ".join(protocol_kinds()) or "(none)"
        raise KeyError(f"unknown protocol kind {kind!r}; registered: {known}")
    return cls(**params)


def get_protocol(kind: str) -> ProxyProtocol:
    """A default-configured instance of the named protocol."""
    return build_protocol(kind)
