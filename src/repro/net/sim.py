"""Deterministic discrete-event simulator.

All timing in the reproduction — TCP handshakes, server timeouts, the
GFW's probe delays, multi-week experiment timelines — runs on this clock.
Events at the same timestamp fire in scheduling order, so runs are
bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..runtime.events import EventBus

__all__ = ["Event", "Simulator"]


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = None

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Minimal event loop: ``schedule``, ``run``, ``now``."""

    def __init__(self, start_time: float = 0.0, bus: Optional[EventBus] = None):
        self.now = start_time
        self._queue: list = []
        self._counter = itertools.count()
        self._processed = 0
        # Live (scheduled, not-yet-cancelled, not-yet-run) event count,
        # maintained incrementally so ``pending`` is O(1) instead of a
        # full heap scan per call.
        self._live = 0
        # The instrumentation bus: any component holding the simulator can
        # emit typed counters/samples without further plumbing.
        self.bus = bus if bus is not None else EventBus()

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.now + delay, next(self._counter), fn, args)
        event._sim = self
        self._live += 1
        heapq.heappush(self._queue, event)
        return event

    def at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(time - self.now, fn, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the number of events processed by *this* call (the
        lifetime total stays available as :attr:`processed`).
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._live -= 1
            self.now = event.time
            event.fn(*event.args)
            processed += 1
            self._processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self.now < until:
            self.now = until
        if processed:
            self.bus.incr("sim.events", processed)
        return processed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue completely; return events processed.

        Unlike ``run(until=...)`` there is no time horizon: the loop stops
        only when nothing is scheduled (or ``max_events`` is hit), which is
        the right call for workloads whose duration depends on data volume
        rather than wall-clock schedules (e.g. a bulk transfer through a
        one-byte receive window).
        """
        return self.run(until=None, max_events=max_events)

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    @property
    def processed(self) -> int:
        return self._processed
