"""Deterministic discrete-event simulator.

All timing in the reproduction — TCP handshakes, server timeouts, the
GFW's probe delays, multi-week experiment timelines — runs on this clock.
Events at the same timestamp fire in scheduling order, so runs are
bit-for-bit reproducible.

Internally the queue is a *calendar queue* specialised for simulation
workloads: a dict of exact-timestamp buckets (each bucket a FIFO list of
events) plus a min-heap of the distinct timestamps.  Scheduling into an
existing bucket — the overwhelmingly common case on the datapath, where
a whole burst of deliveries lands on one ``now + latency`` instant — is
a single dict lookup and list append, O(1) with no heap traffic and no
``Event.__lt__`` comparisons.  Because the scheduling counter is
monotonic, append order within a bucket *is* (time, seq) order, so the
execution order is identical to the classic heapq implementation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..runtime.events import EventBus

__all__ = ["Event", "Simulator"]


class Event:
    """Handle for a scheduled callback; supports cancellation.

    ``weight`` is the number of logical events this callback stands for:
    a batched burst delivery carries ``weight=len(burst)`` so the
    ``sim.events`` counter — part of deterministic run snapshots — stays
    byte-identical with the per-segment datapath.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "consumed",
                 "weight", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple,
                 weight: int = 1):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Set once the callback has run: a late ``cancel()`` (e.g. a TCP
        # endpoint tearing down a retransmission timer whose RTO already
        # fired) must not decrement the live-event count a second time.
        self.consumed = False
        self.weight = weight
        self._sim = None

    def cancel(self) -> None:
        if not self.cancelled and not self.consumed:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Minimal event loop: ``schedule``, ``run``, ``now``."""

    def __init__(self, start_time: float = 0.0, bus: Optional[EventBus] = None):
        self.now = start_time
        # Calendar queue: exact-timestamp buckets + a heap of the
        # distinct bucket times.  ``_cursor`` is the consumed prefix of
        # the earliest bucket (only the head bucket is ever partially
        # consumed, so one cursor suffices).
        self._buckets: dict = {}
        self._times: list = []
        self._cursor = 0
        self._counter = itertools.count()
        self._processed = 0
        # Live (scheduled, not-yet-cancelled, not-yet-run) event count,
        # maintained incrementally so ``pending`` is O(1) instead of a
        # full queue scan per call.
        self._live = 0
        # The instrumentation bus: any component holding the simulator can
        # emit typed counters/samples without further plumbing.
        self.bus = bus if bus is not None else EventBus()

    def schedule(self, delay: float, fn: Callable, *args: Any,
                 weight: int = 1) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``weight`` is the logical event count the callback represents
        (see :class:`Event`); it only affects the ``sim.events`` counter.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        # Inline Event construction: ``schedule`` runs once per segment
        # (or burst) on the datapath, and the slot stores beat a
        # delegated ``__init__`` call there.
        event = Event.__new__(Event)
        event.time = time
        event.seq = next(self._counter)
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.consumed = False
        event.weight = weight
        event._sim = self
        self._live += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        return event

    def schedule_fire(self, delay: float, fn: Callable, arg: Any,
                      weight: int = 1) -> None:
        """Fire-and-forget :meth:`schedule` for the datapath.

        No :class:`Event` handle is built (the bucket entry is a plain
        ``(weight, fn, arg)`` tuple), so the call cannot be cancelled —
        exactly the contract of packet deliveries, which are never
        withdrawn once scheduled.  Execution order relative to
        :meth:`schedule` is unchanged: entries run in append order
        within their timestamp bucket either way.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        next(self._counter)
        self._live += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(weight, fn, arg)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((weight, fn, arg))

    def at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        return self.schedule(time - self.now, fn, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the number of callbacks processed by *this* call (the
        lifetime total stays available as :attr:`processed`).  The
        ``sim.events`` bus counter advances by the *weighted* total, so
        batched and per-segment datapaths report identical event counts.
        """
        processed = 0
        weighted = 0
        times = self._times
        buckets = self._buckets
        stop = False
        while times and not stop:
            t = times[0]
            if until is not None and t > until:
                break
            bucket = buckets[t]
            i = self._cursor
            if i >= len(bucket):
                # Head bucket exhausted: reclaim it and move on.  (New
                # same-time events appended while it was current were
                # already picked up by the inner loop below.)
                heapq.heappop(times)
                del buckets[t]
                self._cursor = 0
                continue
            self.now = t
            # The bucket may grow while we iterate — an executing event
            # scheduling at delay 0 appends here, which is the O(1)
            # same-time fast path — so re-check the length every pass.
            while i < len(bucket):
                event = bucket[i]
                i += 1
                self._cursor = i
                if type(event) is tuple:
                    # Fire-and-forget entry from ``schedule_fire``.
                    self._live -= 1
                    event[1](event[2])
                    weighted += event[0]
                else:
                    if event.cancelled:
                        continue
                    event.consumed = True
                    self._live -= 1
                    event.fn(*event.args)
                    weighted += event.weight
                processed += 1
                self._processed += 1
                if max_events is not None and processed >= max_events:
                    stop = True
                    break
        if until is not None and self.now < until:
            # Advance the clock to the horizon — but never past events
            # still queued at or before it (we may have stopped early on
            # ``max_events``): time must not jump over pending work.
            next_time = self._next_event_time()
            if next_time is None or next_time > until:
                self.now = until
        if weighted:
            self.bus.incr("sim.events", weighted)
        return processed

    def _next_event_time(self) -> Optional[float]:
        """Time of the earliest live (not-run, not-cancelled) event.

        Reclaims dead head buckets (all-consumed / all-cancelled) as a
        side effect; returns ``None`` when nothing live is queued.
        """
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            for i in range(self._cursor, len(bucket)):
                e = bucket[i]
                if type(e) is tuple or not e.cancelled:
                    return t
            heapq.heappop(times)
            del buckets[t]
            self._cursor = 0
        return None

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue completely; return events processed.

        Unlike ``run(until=...)`` there is no time horizon: the loop stops
        only when nothing is scheduled (or ``max_events`` is hit), which is
        the right call for workloads whose duration depends on data volume
        rather than wall-clock schedules (e.g. a bulk transfer through a
        one-byte receive window).
        """
        return self.run(until=None, max_events=max_events)

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    @property
    def processed(self) -> int:
        return self._processed
