"""The network fabric: delivery, latency, hops, and on-path middleboxes.

Middleboxes (the GFW, brdgrd) sit on the path and may observe, modify,
drop, or replace segments in flight.  Delivery is in-order and lossless
by default; attaching an :class:`~repro.net.impairment.Impairment`
(globally or per address pair) makes the delivery leg lossy, reordering,
duplicating, jittery, or subject to scheduled blackouts.  Per-pair
latency and hop counts are configurable so that arrival TTLs can
reproduce the measured prober fingerprint (TTL 46-50 at the server).

Impairments apply at delivery scheduling, *after* the middlebox chain:
the GFW, being on-path at the border, observes every segment an endpoint
actually transmitted (retransmissions included) while the faults land on
the remaining leg to the destination.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .impairment import Impairment
from .packet import Segment, SegmentBurst

__all__ = ["Network", "Middlebox"]


class Middlebox:
    """Base class for on-path devices.

    ``process`` returns the list of segments to forward (commonly
    ``[seg]``); an empty list drops the segment.  A middlebox may also
    originate traffic by calling :meth:`Network.inject`.
    ``process_datagram`` is the UDP analogue; the default passes
    datagrams through untouched.

    ``process_burst`` is the batched entry: it receives a same-flow
    segment list and returns the segments to forward, in order.  The
    default delegates to ``process`` one segment at a time, so existing
    middleboxes behave identically under the batched datapath;
    middleboxes with per-burst hoistable work (the GFW's border
    predicate, flow lookup) override it.
    """

    def process(self, seg: Segment, network: "Network") -> List[Segment]:
        return [seg]

    def process_burst(self, segs: List[Segment],
                      network: "Network") -> List[Segment]:
        out: List[Segment] = []
        for seg in segs:
            out.extend(self.process(seg, network))
        return out

    def process_datagram(self, dgram, network: "Network") -> list:
        return [dgram]


class Network:
    """Connects hosts and routes segments through middleboxes."""

    DEFAULT_LATENCY = 0.025  # one-way seconds
    DEFAULT_HOPS = 14

    def __init__(self, sim, unreachable_policy: str = "refuse", *,
                 impairment: Optional[Impairment] = None,
                 rng: Optional[random.Random] = None):
        if unreachable_policy not in ("refuse", "drop"):
            raise ValueError(f"bad unreachable_policy {unreachable_policy!r}")
        self.sim = sim
        self._hosts: Dict[str, object] = {}
        self.middleboxes: List[Middlebox] = []
        self._latency: Dict[Tuple[str, str], float] = {}
        self._hops: Dict[Tuple[str, str], int] = {}
        # Fault injection: a network-wide default profile plus per-pair
        # overrides.  Inactive (all-zero) profiles are discarded so the
        # pristine delivery fast path — and the TCP endpoints' choice to
        # skip retransmission machinery — is preserved exactly.
        self._impairment = impairment if impairment and impairment.active else None
        self._pair_impairments: Dict[Tuple[str, str], Impairment] = {}
        # Per-(src, dst) datapath cache: (latency, hops, impairment, host)
        # resolved in one dict probe on the delivery legs.  Purely derived
        # state — every topology mutation (attach, set_latency, set_hops,
        # set_impairment) clears it wholesale.
        self._path_cache: Dict[Tuple[str, str], tuple] = {}
        self.rng = rng or random.Random(0x1A7E7)
        self.segments_delivered = 0
        self.segments_dropped = 0
        # UDP bookkeeping is separate: datagram drops used to be folded
        # into ``segments_dropped``, muddling TCP accounting.
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0
        self.impairment_drops = 0
        # "refuse": SYNs to unattached addresses bounce with RST (fast
        # failure, the common case on the real Internet); "drop": silence,
        # leaving the connector hanging in SYN_SENT (the slow-failure path
        # §5.2.1 mentions).
        self.unreachable_policy = unreachable_policy
        # Toy DNS: hostname -> IP.  Unregistered names fail to resolve,
        # which is what happens to the garbage hostnames random probes
        # decrypt to.
        self.dns: Dict[str, str] = {}

    def register_name(self, name: str, ip: str) -> None:
        self.dns[name] = ip

    def resolve(self, name: str) -> Optional[str]:
        return self.dns.get(name)

    # ------------------------------------------------------------- topology

    def attach(self, host) -> None:
        if host.ip in self._hosts:
            raise ValueError(f"IP {host.ip} already attached")
        self._hosts[host.ip] = host
        self._path_cache.clear()

    def register_extra_ip(self, host, ip: str) -> None:
        """Bind an additional address (e.g. one prober IP) to a host."""
        if ip in self._hosts:
            raise ValueError(f"IP {ip} already attached")
        self._hosts[ip] = host
        host.extra_ips.add(ip)
        self._path_cache.clear()

    def add_middlebox(self, mbox: Middlebox) -> None:
        self.middleboxes.append(mbox)

    def remove_middlebox(self, mbox: Middlebox) -> None:
        self.middleboxes.remove(mbox)

    def set_latency(self, src_ip: str, dst_ip: str, seconds: float, symmetric: bool = True) -> None:
        self._latency[(src_ip, dst_ip)] = seconds
        if symmetric:
            self._latency[(dst_ip, src_ip)] = seconds
        self._path_cache.clear()

    def set_hops(self, src_ip: str, dst_ip: str, hops: int, symmetric: bool = True) -> None:
        """Set the hop count; ``dst_ip`` may be "*" for all destinations."""
        self._hops[(src_ip, dst_ip)] = hops
        if symmetric and dst_ip != "*":
            self._hops[(dst_ip, src_ip)] = hops
        self._path_cache.clear()

    def set_impairment(self, src_ip: str, dst_ip: str,
                       impairment: Optional[Impairment],
                       symmetric: bool = True) -> None:
        """Attach a fault profile to one path (``None`` clears it)."""
        keys = [(src_ip, dst_ip)] + ([(dst_ip, src_ip)] if symmetric else [])
        for key in keys:
            if impairment is None or not impairment.active:
                self._pair_impairments.pop(key, None)
            else:
                self._pair_impairments[key] = impairment
        self._path_cache.clear()

    def set_default_impairment(self, impairment: Optional[Impairment]) -> None:
        """Set the network-wide fault profile (``None`` clears it)."""
        self._impairment = (
            impairment if impairment and impairment.active else None
        )
        self._path_cache.clear()

    def impairment_for(self, src_ip: str, dst_ip: str) -> Optional[Impairment]:
        exact = self._pair_impairments.get((src_ip, dst_ip))
        return exact if exact is not None else self._impairment

    @property
    def reliable(self) -> bool:
        """True while no active impairment is attached anywhere.

        TCP endpoints sample this at connection setup: on a reliable
        network they keep the historical no-retransmission machinery
        (and its exact traces); on an unreliable one they arm
        retransmission timers and sequence-checked receive.  Configure
        impairments before opening connections.
        """
        return self._impairment is None and not self._pair_impairments

    def latency(self, src_ip: str, dst_ip: str) -> float:
        return self._latency.get((src_ip, dst_ip), self.DEFAULT_LATENCY)

    def hops(self, src_ip: str, dst_ip: str) -> int:
        exact = self._hops.get((src_ip, dst_ip))
        if exact is not None:
            return exact
        return self._hops.get((src_ip, "*"), self.DEFAULT_HOPS)

    def _path(self, src_ip: str, dst_ip: str) -> tuple:
        """Resolved ``(latency, hops, impairment, host)`` for one pair.

        The datapath's per-delivery lookups collapse into a single dict
        probe once a pair is warm.  Entries for unattached destinations
        are not cached (a host attached later must be seen); every
        topology mutation clears the cache outright.
        """
        key = (src_ip, dst_ip)
        entry = self._path_cache.get(key)
        if entry is None:
            entry = (
                self._latency.get(key, self.DEFAULT_LATENCY),
                self.hops(src_ip, dst_ip),
                self.impairment_for(src_ip, dst_ip),
                self._hosts.get(dst_ip),
            )
            if entry[3] is not None:
                self._path_cache[key] = entry
        return entry

    # -------------------------------------------------------------- routing

    def send_segment(self, seg: Segment) -> None:
        """Route one segment from a host through the middlebox chain."""
        seg.timestamp = self.sim.now
        # Specialized for the overwhelmingly common topologies — no
        # middlebox, or exactly one that neither fans out nor drops —
        # before falling back to the general fan-out walk.  The pristine
        # scheduling leg (``_schedule_delivery``'s common branch) is
        # inlined for both.
        mboxes = self.middleboxes
        if mboxes:
            if len(mboxes) > 1:
                self._through_middleboxes(seg, index=0)
                return
            forwarded = mboxes[0].process(seg, self)
            if len(forwarded) != 1:
                if not forwarded:
                    self.segments_dropped += 1
                else:
                    for s in forwarded:
                        self._schedule_delivery(s)
                return
            seg = forwarded[0]
        delay, _, impairment, _ = self._path(seg.src_ip, seg.dst_ip)
        if impairment is None:
            self.sim.schedule_fire(delay, self._deliver_pristine, seg)
        else:
            self._schedule_impaired(seg, delay, impairment)

    def send_segment_burst(self, burst: SegmentBurst) -> None:
        """Route a same-flow burst through the middlebox chain as one unit.

        The burst traverses every middlebox in emission order and is
        delivered by a single scheduled event (per-segment events on
        impaired paths, so each copy keeps its own fault draws — see
        :meth:`_schedule_delivery_burst`).  Byte-identical to calling
        :meth:`send_segment` once per member.
        """
        now = self.sim.now
        for seg in burst.segments:
            seg.timestamp = now
        current = burst.segments
        for mbox in self.middleboxes:
            before = len(current)
            current = mbox.process_burst(current, self)
            if len(current) < before:
                # Exact when no middlebox fans out inside a burst (none
                # of the built-ins do); a fanning-out middlebox should
                # route singles through ``process`` for exact accounting.
                self.segments_dropped += before - len(current)
            if not current:
                return
        # Inlined _schedule_delivery_burst, pristine branch first.
        if len(current) == 1:
            self._schedule_delivery(current[0])
            return
        first = current[0]
        delay, _, impairment, _ = self._path(first.src_ip, first.dst_ip)
        if impairment is None:
            self.sim.schedule_fire(delay, self._deliver_burst, current,
                                   weight=len(current))
            return
        for seg in current:
            self._schedule_impaired(seg, delay, impairment)

    def inject(self, seg: Segment, skip_middleboxes: bool = False) -> None:
        """Originate a segment from a middlebox (e.g. a GFW prober SYN)."""
        if skip_middleboxes:
            seg.timestamp = self.sim.now
            self._schedule_delivery(seg)
        else:
            # Identical routing to a host transmission (timestamp, full
            # middlebox walk, delivery scheduling), including its
            # single-middlebox specialization — probe traffic is hot
            # enough for the general fan-out walk to show up.
            self.send_segment(seg)

    def _through_middleboxes(self, seg: Segment, index: int) -> None:
        current = [seg]
        for i in range(index, len(self.middleboxes)):
            mbox = self.middleboxes[i]
            next_round: List[Segment] = []
            for s in current:
                forwarded = mbox.process(s, self)
                if forwarded:
                    next_round.extend(forwarded)
                else:
                    # Count every segment a middlebox swallowed — also
                    # under fan-out, where a partially dropped round
                    # previously went uncounted and a fully dropped one
                    # counted as a single loss.
                    self.segments_dropped += 1
            current = next_round
            if not current:
                return
        for s in current:
            self._schedule_delivery(s)

    def _schedule_delivery(self, seg: Segment) -> None:
        delay, _, impairment, _ = self._path(seg.src_ip, seg.dst_ip)
        if impairment is None:
            # Pristine path: exactly one delivery of this object, so the
            # arrival clone can be elided (see ``_deliver_pristine``) and
            # the uncancellable fire-and-forget scheduling lane used.
            self.sim.schedule_fire(delay, self._deliver_pristine, seg)
            return
        self._schedule_impaired(seg, delay, impairment)

    def _schedule_impaired(self, seg: Segment, delay: float,
                           impairment: Impairment) -> None:
        delays = self._impaired_delays(impairment, "net")
        if not delays:
            self.segments_dropped += 1
            self.impairment_drops += 1
        for extra in delays:
            self.sim.schedule(delay + extra, self._deliver, seg)

    def _schedule_delivery_burst(self, segs: List[Segment]) -> None:
        if len(segs) == 1:
            self._schedule_delivery(segs[0])
            return
        first = segs[0]
        delay, _, impairment, _ = self._path(first.src_ip, first.dst_ip)
        if impairment is None:
            # Pristine path: one delivery event for the whole burst,
            # weighted so the ``sim.events`` counter matches the
            # per-segment datapath exactly.
            self.sim.schedule_fire(delay, self._deliver_burst, segs,
                                   weight=len(segs))
            return
        # Impaired path: fall back to one event per copy, drawing each
        # segment's faults in burst (= emission) order — the identical
        # RNG stream the per-segment datapath consumes, so seeded
        # impaired runs stay reproducible under batching.
        for seg in segs:
            delays = self._impaired_delays(impairment, "net")
            if not delays:
                self.segments_dropped += 1
                self.impairment_drops += 1
            for extra in delays:
                self.sim.schedule(delay + extra, self._deliver, seg)

    def _impaired_delays(self, impairment: Impairment, layer: str) -> List[float]:
        """Extra delivery delays under a fault profile ([] means dropped).

        One entry per copy to deliver; every random draw comes from the
        network's own RNG so impaired runs remain seed-reproducible.
        The caller owns drop-counter attribution (TCP vs UDP); the bus
        counters are emitted here under the caller's ``layer`` prefix.
        """
        bus = self.sim.bus
        if impairment.is_down(self.sim.now):
            bus.incr(f"{layer}.flap.drop")
            return []
        if impairment.loss and self.rng.random() < impairment.loss:
            bus.incr(f"{layer}.loss")
            return []
        extra = 0.0
        if impairment.jitter:
            extra += self.rng.uniform(0.0, impairment.jitter)
        if impairment.reorder and self.rng.random() < impairment.reorder:
            extra += impairment.reorder_skew
            bus.incr(f"{layer}.reorder")
        delays = [extra]
        if impairment.duplicate and self.rng.random() < impairment.duplicate:
            delays.append(extra + impairment.duplicate_gap)
            bus.incr(f"{layer}.duplicate")
        return delays

    def _deliver(self, seg: Segment) -> None:
        _, hops, _, host = self._path(seg.src_ip, seg.dst_ip)
        if host is None:
            self.segments_dropped += 1
            if self.unreachable_policy == "refuse" and not seg.flags & 0x04:  # not RST
                self._refuse_unreachable(seg)
            return
        ttl = seg.ttl - hops
        if ttl <= 0:
            # Hop count exhausted the TTL: real routers discard such
            # packets, so fail loudly instead of delivering an impossible
            # arrival TTL.
            self.segments_dropped += 1
            self.sim.bus.incr("net.ttl.expired")
            return
        self.segments_delivered += 1
        arrived = seg.arrived(ttl, self.sim.now)
        # Stock hosts take the fused dispatch (one call instead of the
        # deliver -> _deliver_one chain); overridden hooks — class-level
        # (``_stock_delivery``) or instance-level monkeypatches (the
        # ``__dict__`` probes) — keep the dynamic ``deliver`` dispatch.
        d = host.__dict__
        if host._stock_delivery and "deliver" not in d and "_deliver_one" not in d:
            host._deliver_fast(arrived)
        else:
            host.deliver(arrived)

    def _deliver_pristine(self, seg: Segment) -> None:
        """:meth:`_deliver` for unimpaired paths: arrival without a clone.

        On a pristine path a segment object is scheduled for delivery
        exactly once (no duplicate copies, no retransmission reuse — TCP
        rebuilds retransmits from its queue of payload tuples), so the
        TTL decrement and arrival timestamp can be written in place
        instead of paying the 14-slot arrival clone.  Capture records on
        both ends alias the same object either way; the serialized
        outputs are byte-identical (pinned by the scenario-identity
        suite).  Impaired paths — where duplicates make the same object
        deliverable twice — keep the cloning :meth:`_deliver`.
        """
        _, hops, _, host = self._path(seg.src_ip, seg.dst_ip)
        if host is None:
            self.segments_dropped += 1
            if self.unreachable_policy == "refuse" and not seg.flags & 0x04:
                self._refuse_unreachable(seg)
            return
        ttl = seg.ttl - hops
        if ttl <= 0:
            self.segments_dropped += 1
            self.sim.bus.incr("net.ttl.expired")
            return
        self.segments_delivered += 1
        seg.ttl = ttl
        seg.timestamp = self.sim.now
        d = host.__dict__
        if host._stock_delivery and "deliver" not in d and "_deliver_one" not in d:
            host._deliver_fast(seg)
        else:
            host.deliver(seg)

    def _deliver_burst(self, segs: List[Segment]) -> None:
        first = segs[0]
        _, hops, _, host = self._path(first.src_ip, first.dst_ip)
        if host is None:
            self.segments_dropped += len(segs)
            if self.unreachable_policy == "refuse":
                for seg in segs:
                    if not seg.flags & 0x04:  # not RST
                        self._refuse_unreachable(seg)
            return
        now = self.sim.now
        # Bursts only ride pristine paths (impaired paths fall back to
        # per-segment ``_deliver``), so arrival is in-place here too —
        # same contract as ``_deliver_pristine``.
        arrived: List[Segment] = []
        for seg in segs:
            ttl = seg.ttl - hops
            if ttl <= 0:
                self.segments_dropped += 1
                self.sim.bus.incr("net.ttl.expired")
                continue
            seg.ttl = ttl
            seg.timestamp = now
            arrived.append(seg)
        if not arrived:
            return
        self.segments_delivered += len(arrived)
        host.deliver_burst(arrived)

    # ------------------------------------------------------------------ UDP

    def send_datagram(self, dgram) -> None:
        dgram.timestamp = self.sim.now
        current = [dgram]
        for mbox in self.middleboxes:
            next_round = []
            for d in current:
                forwarded = mbox.process_datagram(d, self)
                if forwarded:
                    next_round.extend(forwarded)
                else:
                    self.datagrams_dropped += 1
            current = next_round
            if not current:
                return
        for d in current:
            delay = self.latency(d.src_ip, d.dst_ip)
            impairment = self.impairment_for(d.src_ip, d.dst_ip)
            if impairment is None:
                self.sim.schedule(delay, self._deliver_datagram, d)
                continue
            delays = self._impaired_delays(impairment, "net.udp")
            if not delays:
                self.datagrams_dropped += 1
                self.impairment_drops += 1
            for extra in delays:
                self.sim.schedule(delay + extra, self._deliver_datagram, d)

    def _deliver_datagram(self, dgram) -> None:
        host = self._hosts.get(dgram.dst_ip)
        if host is None:
            self.datagrams_dropped += 1
            return
        ttl = dgram.ttl - self.hops(dgram.src_ip, dgram.dst_ip)
        if ttl <= 0:
            self.datagrams_dropped += 1
            self.sim.bus.incr("net.ttl.expired")
            return
        arrived = dgram.copy(ttl=ttl, timestamp=self.sim.now)
        self.datagrams_delivered += 1
        host.deliver_datagram(arrived)

    def _refuse_unreachable(self, seg: Segment) -> None:
        from .packet import Flags

        rst = Segment(
            src_ip=seg.dst_ip,
            dst_ip=seg.src_ip,
            src_port=seg.dst_port,
            dst_port=seg.src_port,
            flags=Flags.RST | Flags.ACK,
            seq=0,
            ack=(seg.seq + len(seg.payload) + (1 if seg.is_syn else 0)) & 0xFFFFFFFF,
        )
        # The RST comes from "the far side"; skip middleboxes to avoid
        # the GFW reacting to its own synthetic traffic.
        self.inject(rst, skip_middleboxes=True)
