"""The network fabric: delivery, latency, hops, and on-path middleboxes.

Middleboxes (the GFW, brdgrd) sit on the path and may observe, modify,
drop, or replace segments in flight.  Delivery is in-order and lossless;
per-pair latency and hop counts are configurable so that arrival TTLs can
reproduce the measured prober fingerprint (TTL 46-50 at the server).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .packet import Segment

__all__ = ["Network", "Middlebox"]


class Middlebox:
    """Base class for on-path devices.

    ``process`` returns the list of segments to forward (commonly
    ``[seg]``); an empty list drops the segment.  A middlebox may also
    originate traffic by calling :meth:`Network.inject`.
    ``process_datagram`` is the UDP analogue; the default passes
    datagrams through untouched.
    """

    def process(self, seg: Segment, network: "Network") -> List[Segment]:
        return [seg]

    def process_datagram(self, dgram, network: "Network") -> list:
        return [dgram]


class Network:
    """Connects hosts and routes segments through middleboxes."""

    DEFAULT_LATENCY = 0.025  # one-way seconds
    DEFAULT_HOPS = 14

    def __init__(self, sim, unreachable_policy: str = "refuse"):
        if unreachable_policy not in ("refuse", "drop"):
            raise ValueError(f"bad unreachable_policy {unreachable_policy!r}")
        self.sim = sim
        self._hosts: Dict[str, object] = {}
        self.middleboxes: List[Middlebox] = []
        self._latency: Dict[Tuple[str, str], float] = {}
        self._hops: Dict[Tuple[str, str], int] = {}
        self.segments_delivered = 0
        self.segments_dropped = 0
        # "refuse": SYNs to unattached addresses bounce with RST (fast
        # failure, the common case on the real Internet); "drop": silence,
        # leaving the connector hanging in SYN_SENT (the slow-failure path
        # §5.2.1 mentions).
        self.unreachable_policy = unreachable_policy
        # Toy DNS: hostname -> IP.  Unregistered names fail to resolve,
        # which is what happens to the garbage hostnames random probes
        # decrypt to.
        self.dns: Dict[str, str] = {}

    def register_name(self, name: str, ip: str) -> None:
        self.dns[name] = ip

    def resolve(self, name: str) -> Optional[str]:
        return self.dns.get(name)

    # ------------------------------------------------------------- topology

    def attach(self, host) -> None:
        if host.ip in self._hosts:
            raise ValueError(f"IP {host.ip} already attached")
        self._hosts[host.ip] = host

    def register_extra_ip(self, host, ip: str) -> None:
        """Bind an additional address (e.g. one prober IP) to a host."""
        if ip in self._hosts:
            raise ValueError(f"IP {ip} already attached")
        self._hosts[ip] = host
        host.extra_ips.add(ip)

    def add_middlebox(self, mbox: Middlebox) -> None:
        self.middleboxes.append(mbox)

    def remove_middlebox(self, mbox: Middlebox) -> None:
        self.middleboxes.remove(mbox)

    def set_latency(self, src_ip: str, dst_ip: str, seconds: float, symmetric: bool = True) -> None:
        self._latency[(src_ip, dst_ip)] = seconds
        if symmetric:
            self._latency[(dst_ip, src_ip)] = seconds

    def set_hops(self, src_ip: str, dst_ip: str, hops: int, symmetric: bool = True) -> None:
        """Set the hop count; ``dst_ip`` may be "*" for all destinations."""
        self._hops[(src_ip, dst_ip)] = hops
        if symmetric and dst_ip != "*":
            self._hops[(dst_ip, src_ip)] = hops

    def latency(self, src_ip: str, dst_ip: str) -> float:
        return self._latency.get((src_ip, dst_ip), self.DEFAULT_LATENCY)

    def hops(self, src_ip: str, dst_ip: str) -> int:
        exact = self._hops.get((src_ip, dst_ip))
        if exact is not None:
            return exact
        return self._hops.get((src_ip, "*"), self.DEFAULT_HOPS)

    # -------------------------------------------------------------- routing

    def send_segment(self, seg: Segment) -> None:
        """Route one segment from a host through the middlebox chain."""
        seg.timestamp = self.sim.now
        self._through_middleboxes(seg, index=0)

    def inject(self, seg: Segment, skip_middleboxes: bool = False) -> None:
        """Originate a segment from a middlebox (e.g. a GFW prober SYN)."""
        seg.timestamp = self.sim.now
        if skip_middleboxes:
            self._schedule_delivery(seg)
        else:
            self._through_middleboxes(seg, index=0)

    def _through_middleboxes(self, seg: Segment, index: int) -> None:
        current = [seg]
        for i in range(index, len(self.middleboxes)):
            next_round: List[Segment] = []
            for s in current:
                next_round.extend(self.middleboxes[i].process(s, self))
            current = next_round
            if not current:
                self.segments_dropped += 1
                return
        for s in current:
            self._schedule_delivery(s)

    def _schedule_delivery(self, seg: Segment) -> None:
        delay = self.latency(seg.src_ip, seg.dst_ip)
        self.sim.schedule(delay, self._deliver, seg)

    def _deliver(self, seg: Segment) -> None:
        host = self._hosts.get(seg.dst_ip)
        if host is None:
            self.segments_dropped += 1
            if self.unreachable_policy == "refuse" and not seg.flags & 0x04:  # not RST
                self._refuse_unreachable(seg)
            return
        arrived = seg.copy(
            ttl=max(0, seg.ttl - self.hops(seg.src_ip, seg.dst_ip)),
            timestamp=self.sim.now,
        )
        self.segments_delivered += 1
        host.deliver(arrived)

    # ------------------------------------------------------------------ UDP

    def send_datagram(self, dgram) -> None:
        dgram.timestamp = self.sim.now
        current = [dgram]
        for mbox in self.middleboxes:
            next_round = []
            for d in current:
                next_round.extend(mbox.process_datagram(d, self))
            current = next_round
            if not current:
                self.segments_dropped += 1
                return
        for d in current:
            delay = self.latency(d.src_ip, d.dst_ip)
            self.sim.schedule(delay, self._deliver_datagram, d)

    def _deliver_datagram(self, dgram) -> None:
        host = self._hosts.get(dgram.dst_ip)
        if host is None:
            self.segments_dropped += 1
            return
        import dataclasses

        arrived = dataclasses.replace(
            dgram,
            ttl=max(0, dgram.ttl - self.hops(dgram.src_ip, dgram.dst_ip)),
        )
        arrived.timestamp = self.sim.now
        self.segments_delivered += 1
        host.deliver_datagram(arrived)

    def _refuse_unreachable(self, seg: Segment) -> None:
        from .packet import Flags

        rst = Segment(
            src_ip=seg.dst_ip,
            dst_ip=seg.src_ip,
            src_port=seg.dst_port,
            dst_port=seg.src_port,
            flags=Flags.RST | Flags.ACK,
            seq=0,
            ack=(seg.seq + len(seg.payload) + (1 if seg.is_syn else 0)) & 0xFFFFFFFF,
        )
        # The RST comes from "the far side"; skip middleboxes to avoid
        # the GFW reacting to its own synthetic traffic.
        self.inject(rst, skip_middleboxes=True)
