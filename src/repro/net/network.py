"""The network fabric: delivery, latency, hops, and on-path middleboxes.

Middleboxes (the GFW, brdgrd) sit on the path and may observe, modify,
drop, or replace segments in flight.  Delivery is in-order and lossless
by default; attaching an :class:`~repro.net.impairment.Impairment`
(globally or per address pair) makes the delivery leg lossy, reordering,
duplicating, jittery, or subject to scheduled blackouts.  Per-pair
latency and hop counts are configurable so that arrival TTLs can
reproduce the measured prober fingerprint (TTL 46-50 at the server).

Impairments apply at delivery scheduling, *after* the middlebox chain:
the GFW, being on-path at the border, observes every segment an endpoint
actually transmitted (retransmissions included) while the faults land on
the remaining leg to the destination.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .impairment import Impairment
from .packet import Segment

__all__ = ["Network", "Middlebox"]


class Middlebox:
    """Base class for on-path devices.

    ``process`` returns the list of segments to forward (commonly
    ``[seg]``); an empty list drops the segment.  A middlebox may also
    originate traffic by calling :meth:`Network.inject`.
    ``process_datagram`` is the UDP analogue; the default passes
    datagrams through untouched.
    """

    def process(self, seg: Segment, network: "Network") -> List[Segment]:
        return [seg]

    def process_datagram(self, dgram, network: "Network") -> list:
        return [dgram]


class Network:
    """Connects hosts and routes segments through middleboxes."""

    DEFAULT_LATENCY = 0.025  # one-way seconds
    DEFAULT_HOPS = 14

    def __init__(self, sim, unreachable_policy: str = "refuse", *,
                 impairment: Optional[Impairment] = None,
                 rng: Optional[random.Random] = None):
        if unreachable_policy not in ("refuse", "drop"):
            raise ValueError(f"bad unreachable_policy {unreachable_policy!r}")
        self.sim = sim
        self._hosts: Dict[str, object] = {}
        self.middleboxes: List[Middlebox] = []
        self._latency: Dict[Tuple[str, str], float] = {}
        self._hops: Dict[Tuple[str, str], int] = {}
        # Fault injection: a network-wide default profile plus per-pair
        # overrides.  Inactive (all-zero) profiles are discarded so the
        # pristine delivery fast path — and the TCP endpoints' choice to
        # skip retransmission machinery — is preserved exactly.
        self._impairment = impairment if impairment and impairment.active else None
        self._pair_impairments: Dict[Tuple[str, str], Impairment] = {}
        self.rng = rng or random.Random(0x1A7E7)
        self.segments_delivered = 0
        self.segments_dropped = 0
        self.impairment_drops = 0
        # "refuse": SYNs to unattached addresses bounce with RST (fast
        # failure, the common case on the real Internet); "drop": silence,
        # leaving the connector hanging in SYN_SENT (the slow-failure path
        # §5.2.1 mentions).
        self.unreachable_policy = unreachable_policy
        # Toy DNS: hostname -> IP.  Unregistered names fail to resolve,
        # which is what happens to the garbage hostnames random probes
        # decrypt to.
        self.dns: Dict[str, str] = {}

    def register_name(self, name: str, ip: str) -> None:
        self.dns[name] = ip

    def resolve(self, name: str) -> Optional[str]:
        return self.dns.get(name)

    # ------------------------------------------------------------- topology

    def attach(self, host) -> None:
        if host.ip in self._hosts:
            raise ValueError(f"IP {host.ip} already attached")
        self._hosts[host.ip] = host

    def register_extra_ip(self, host, ip: str) -> None:
        """Bind an additional address (e.g. one prober IP) to a host."""
        if ip in self._hosts:
            raise ValueError(f"IP {ip} already attached")
        self._hosts[ip] = host
        host.extra_ips.add(ip)

    def add_middlebox(self, mbox: Middlebox) -> None:
        self.middleboxes.append(mbox)

    def remove_middlebox(self, mbox: Middlebox) -> None:
        self.middleboxes.remove(mbox)

    def set_latency(self, src_ip: str, dst_ip: str, seconds: float, symmetric: bool = True) -> None:
        self._latency[(src_ip, dst_ip)] = seconds
        if symmetric:
            self._latency[(dst_ip, src_ip)] = seconds

    def set_hops(self, src_ip: str, dst_ip: str, hops: int, symmetric: bool = True) -> None:
        """Set the hop count; ``dst_ip`` may be "*" for all destinations."""
        self._hops[(src_ip, dst_ip)] = hops
        if symmetric and dst_ip != "*":
            self._hops[(dst_ip, src_ip)] = hops

    def set_impairment(self, src_ip: str, dst_ip: str,
                       impairment: Optional[Impairment],
                       symmetric: bool = True) -> None:
        """Attach a fault profile to one path (``None`` clears it)."""
        keys = [(src_ip, dst_ip)] + ([(dst_ip, src_ip)] if symmetric else [])
        for key in keys:
            if impairment is None or not impairment.active:
                self._pair_impairments.pop(key, None)
            else:
                self._pair_impairments[key] = impairment

    def set_default_impairment(self, impairment: Optional[Impairment]) -> None:
        """Set the network-wide fault profile (``None`` clears it)."""
        self._impairment = (
            impairment if impairment and impairment.active else None
        )

    def impairment_for(self, src_ip: str, dst_ip: str) -> Optional[Impairment]:
        exact = self._pair_impairments.get((src_ip, dst_ip))
        return exact if exact is not None else self._impairment

    @property
    def reliable(self) -> bool:
        """True while no active impairment is attached anywhere.

        TCP endpoints sample this at connection setup: on a reliable
        network they keep the historical no-retransmission machinery
        (and its exact traces); on an unreliable one they arm
        retransmission timers and sequence-checked receive.  Configure
        impairments before opening connections.
        """
        return self._impairment is None and not self._pair_impairments

    def latency(self, src_ip: str, dst_ip: str) -> float:
        return self._latency.get((src_ip, dst_ip), self.DEFAULT_LATENCY)

    def hops(self, src_ip: str, dst_ip: str) -> int:
        exact = self._hops.get((src_ip, dst_ip))
        if exact is not None:
            return exact
        return self._hops.get((src_ip, "*"), self.DEFAULT_HOPS)

    # -------------------------------------------------------------- routing

    def send_segment(self, seg: Segment) -> None:
        """Route one segment from a host through the middlebox chain."""
        seg.timestamp = self.sim.now
        self._through_middleboxes(seg, index=0)

    def inject(self, seg: Segment, skip_middleboxes: bool = False) -> None:
        """Originate a segment from a middlebox (e.g. a GFW prober SYN)."""
        seg.timestamp = self.sim.now
        if skip_middleboxes:
            self._schedule_delivery(seg)
        else:
            self._through_middleboxes(seg, index=0)

    def _through_middleboxes(self, seg: Segment, index: int) -> None:
        current = [seg]
        for i in range(index, len(self.middleboxes)):
            next_round: List[Segment] = []
            for s in current:
                next_round.extend(self.middleboxes[i].process(s, self))
            current = next_round
            if not current:
                self.segments_dropped += 1
                return
        for s in current:
            self._schedule_delivery(s)

    def _schedule_delivery(self, seg: Segment) -> None:
        delay = self.latency(seg.src_ip, seg.dst_ip)
        impairment = self.impairment_for(seg.src_ip, seg.dst_ip)
        if impairment is None:
            self.sim.schedule(delay, self._deliver, seg)
            return
        for extra in self._impaired_delays(impairment, "net"):
            self.sim.schedule(delay + extra, self._deliver, seg)

    def _impaired_delays(self, impairment: Impairment, layer: str) -> List[float]:
        """Extra delivery delays under a fault profile ([] means dropped).

        One entry per copy to deliver; every random draw comes from the
        network's own RNG so impaired runs remain seed-reproducible.
        """
        bus = self.sim.bus
        if impairment.is_down(self.sim.now):
            self.segments_dropped += 1
            self.impairment_drops += 1
            bus.incr(f"{layer}.flap.drop")
            return []
        if impairment.loss and self.rng.random() < impairment.loss:
            self.segments_dropped += 1
            self.impairment_drops += 1
            bus.incr(f"{layer}.loss")
            return []
        extra = 0.0
        if impairment.jitter:
            extra += self.rng.uniform(0.0, impairment.jitter)
        if impairment.reorder and self.rng.random() < impairment.reorder:
            extra += impairment.reorder_skew
            bus.incr(f"{layer}.reorder")
        delays = [extra]
        if impairment.duplicate and self.rng.random() < impairment.duplicate:
            delays.append(extra + impairment.duplicate_gap)
            bus.incr(f"{layer}.duplicate")
        return delays

    def _deliver(self, seg: Segment) -> None:
        host = self._hosts.get(seg.dst_ip)
        if host is None:
            self.segments_dropped += 1
            if self.unreachable_policy == "refuse" and not seg.flags & 0x04:  # not RST
                self._refuse_unreachable(seg)
            return
        ttl = seg.ttl - self.hops(seg.src_ip, seg.dst_ip)
        if ttl <= 0:
            # Hop count exhausted the TTL: real routers discard such
            # packets, so fail loudly instead of delivering an impossible
            # arrival TTL.
            self.segments_dropped += 1
            self.sim.bus.incr("net.ttl.expired")
            return
        arrived = seg.copy(ttl=ttl, timestamp=self.sim.now)
        self.segments_delivered += 1
        host.deliver(arrived)

    # ------------------------------------------------------------------ UDP

    def send_datagram(self, dgram) -> None:
        dgram.timestamp = self.sim.now
        current = [dgram]
        for mbox in self.middleboxes:
            next_round = []
            for d in current:
                next_round.extend(mbox.process_datagram(d, self))
            current = next_round
            if not current:
                self.segments_dropped += 1
                return
        for d in current:
            delay = self.latency(d.src_ip, d.dst_ip)
            impairment = self.impairment_for(d.src_ip, d.dst_ip)
            if impairment is None:
                self.sim.schedule(delay, self._deliver_datagram, d)
                continue
            for extra in self._impaired_delays(impairment, "net.udp"):
                self.sim.schedule(delay + extra, self._deliver_datagram, d)

    def _deliver_datagram(self, dgram) -> None:
        host = self._hosts.get(dgram.dst_ip)
        if host is None:
            self.segments_dropped += 1
            return
        ttl = dgram.ttl - self.hops(dgram.src_ip, dgram.dst_ip)
        if ttl <= 0:
            self.segments_dropped += 1
            self.sim.bus.incr("net.ttl.expired")
            return
        import dataclasses

        arrived = dataclasses.replace(dgram, ttl=ttl)
        arrived.timestamp = self.sim.now
        self.segments_delivered += 1
        host.deliver_datagram(arrived)

    def _refuse_unreachable(self, seg: Segment) -> None:
        from .packet import Flags

        rst = Segment(
            src_ip=seg.dst_ip,
            dst_ip=seg.src_ip,
            src_port=seg.dst_port,
            dst_port=seg.src_port,
            flags=Flags.RST | Flags.ACK,
            seq=0,
            ack=(seg.seq + len(seg.payload) + (1 if seg.is_syn else 0)) & 0xFFFFFFFF,
        )
        # The RST comes from "the far side"; skip middleboxes to avoid
        # the GFW reacting to its own synthetic traffic.
        self.inject(rst, skip_middleboxes=True)
