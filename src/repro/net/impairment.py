"""Path impairment model: loss, reordering, duplication, jitter, flaps.

The paper's measurements ran over the real China↔abroad Internet, where
packet loss, reordering, and link churn perturb exactly the feature the
GFW keys on — the *first data-carrying packet* of a flow.  An
:class:`Impairment` describes one path's fault profile; the
:class:`~repro.net.network.Network` applies it at delivery scheduling
time, drawing every random decision from the network's dedicated,
seed-derived RNG so impaired runs stay byte-reproducible.

Semantics (all independent per segment):

* ``loss`` — probability the segment is silently dropped in flight;
* ``reorder`` / ``reorder_skew`` — probability the segment is held back
  by an extra ``reorder_skew`` seconds, letting later segments overtake
  it (the classic multi-path reordering mechanism);
* ``duplicate`` — probability the segment is delivered twice (the copy
  trails by ``duplicate_gap`` seconds);
* ``jitter`` — uniform extra latency in ``[0, jitter)`` seconds;
* ``flaps`` — scheduled ``[start, end)`` blackout windows during which
  the link delivers nothing (link-level outages and prober churn).

An impairment with every rate at zero and no flap windows is *inactive*
and is treated exactly like no impairment at all: the network takes the
pristine fast path, draws nothing from its RNG, and TCP endpoints keep
their no-retransmission machinery — so zero-impairment runs are
byte-identical to runs that never heard of this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Impairment"]


@dataclass(frozen=True)
class Impairment:
    """Fault profile of one network path (probabilities per segment)."""

    loss: float = 0.0
    reorder: float = 0.0
    reorder_skew: float = 0.03      # seconds a reordered segment is held back
    duplicate: float = 0.0
    duplicate_gap: float = 0.001    # seconds between a segment and its copy
    jitter: float = 0.0             # uniform extra latency in [0, jitter)
    flaps: Tuple[Tuple[float, float], ...] = ()  # [start, end) blackouts

    def __post_init__(self) -> None:
        for name in ("loss", "reorder", "duplicate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        for name in ("reorder_skew", "duplicate_gap", "jitter"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        for window in self.flaps:
            start, end = window
            if not start < end:
                raise ValueError(f"bad flap window {window!r}")

    @property
    def active(self) -> bool:
        """Whether this impairment can affect any segment at all."""
        return bool(
            self.loss or self.reorder or self.duplicate or self.jitter
            or self.flaps
        )

    def is_down(self, t: float) -> bool:
        """Whether the link is inside a blackout window at time ``t``."""
        return any(start <= t < end for start, end in self.flaps)
