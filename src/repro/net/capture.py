"""Pcap-style packet capture with the query helpers the analysis needs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from .packet import Flags, Segment

__all__ = ["CaptureRecord", "Capture"]


@dataclass(slots=True)
class CaptureRecord:
    time: float
    sent: bool  # True if this host transmitted the segment
    segment: Segment


class Capture:
    """An append-only log of segments seen at one observation point.

    Two independent switches control what happens per segment:

    * ``enabled`` — master switch; off means the capture sees nothing
      (no buffering, no taps);
    * ``buffering`` — whether records are retained in ``records``.

    *Taps* registered with :meth:`subscribe` are invoked with every
    :class:`CaptureRecord` as it happens, independent of buffering —
    this is how the streaming analysis pipeline observes a host's
    traffic at constant memory: ``buffering = False`` keeps the taps
    firing while nothing accumulates.
    """

    def __init__(self):
        # Raw ``(time, sent, segment)`` tuples; ``records`` materializes
        # them into :class:`CaptureRecord` objects on first access.  The
        # datapath only ever pays a tuple build + list append per segment;
        # object construction is deferred to analysis time (outside any
        # timed region).  ``_materialized`` is always a prefix cache of
        # ``_raw`` — never mutated from outside this class.
        self._raw: list = []
        self._materialized: List[CaptureRecord] = []
        self.enabled = True
        self.buffering = True
        self.taps: List[Callable[[CaptureRecord], None]] = []

    @property
    def records(self) -> List[CaptureRecord]:
        raw = self._raw
        mat = self._materialized
        if len(mat) != len(raw):
            for i in range(len(mat), len(raw)):
                time, sent, seg = raw[i]
                rec = CaptureRecord.__new__(CaptureRecord)
                rec.time = time
                rec.sent = sent
                rec.segment = seg
                mat.append(rec)
        return mat

    def record(self, seg: Segment, time: float, sent: bool) -> None:
        if not self.enabled:
            return
        if not self.taps:
            if self.buffering:
                self._raw.append((time, sent, seg))
            return
        # Taps observe the stream live and need real record objects.
        rec = CaptureRecord.__new__(CaptureRecord)
        rec.time = time
        rec.sent = sent
        rec.segment = seg
        if self.buffering:
            # Keep the prefix invariant: materialize anything pending
            # before appending, so ``_materialized`` stays aligned.
            mat = self.records
            self._raw.append((time, sent, seg))
            mat.append(rec)
        for tap in self.taps:
            tap(rec)

    def subscribe(self, tap: Callable[[CaptureRecord], None]) -> None:
        """Register a live tap called with every record as it is captured."""
        self.taps.append(tap)

    def __len__(self) -> int:
        return len(self._raw)

    def __iter__(self) -> Iterator[CaptureRecord]:
        return iter(self.records)

    def clear(self) -> None:
        self._raw.clear()
        self._materialized.clear()

    # ------------------------------------------------------------- queries

    def filter(self, predicate: Callable[[CaptureRecord], bool]) -> List[CaptureRecord]:
        return [rec for rec in self.records if predicate(rec)]

    def received(self) -> List[CaptureRecord]:
        return self.filter(lambda rec: not rec.sent)

    def sent(self) -> List[CaptureRecord]:
        return self.filter(lambda rec: rec.sent)

    def syns_received(self) -> List[CaptureRecord]:
        return self.filter(lambda rec: not rec.sent and rec.segment.is_syn)

    def data_segments(self, received_only: bool = False) -> List[CaptureRecord]:
        return self.filter(
            lambda rec: rec.segment.is_data and (not received_only or not rec.sent)
        )

    def connections(self) -> dict:
        """Group records by direction-insensitive connection key."""
        groups: dict = {}
        for rec in self.records:
            groups.setdefault(rec.segment.conn_key(), []).append(rec)
        return groups

    def first_payload_from(self, src_ip: str, src_port: Optional[int] = None) -> Optional[bytes]:
        """First data payload received from a given remote endpoint."""
        for rec in self.records:
            seg = rec.segment
            if rec.sent or not seg.is_data:
                continue
            if seg.src_ip == src_ip and (src_port is None or seg.src_port == src_port):
                return seg.payload
        return None

    def flags_timeline(self, conn_key) -> List[str]:
        """Human-readable flag sequence for one connection (debug aid)."""
        out = []
        for rec in self.records:
            if rec.segment.conn_key() == conn_key:
                arrow = ">" if rec.sent else "<"
                out.append(f"{rec.time:.3f}{arrow}{Flags.render(rec.segment.flags)}"
                           f"({len(rec.segment.payload)})")
        return out
