"""Pcap-style packet capture with the query helpers the analysis needs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from .packet import Flags, Segment

__all__ = ["CaptureRecord", "Capture"]


@dataclass(slots=True)
class CaptureRecord:
    time: float
    sent: bool  # True if this host transmitted the segment
    segment: Segment


class Capture:
    """An append-only log of segments seen at one observation point.

    Two independent switches control what happens per segment:

    * ``enabled`` — master switch; off means the capture sees nothing
      (no buffering, no taps);
    * ``buffering`` — whether records are retained in ``records``.

    *Taps* registered with :meth:`subscribe` are invoked with every
    :class:`CaptureRecord` as it happens, independent of buffering —
    this is how the streaming analysis pipeline observes a host's
    traffic at constant memory: ``buffering = False`` keeps the taps
    firing while nothing accumulates.
    """

    def __init__(self):
        self.records: List[CaptureRecord] = []
        self.enabled = True
        self.buffering = True
        self.taps: List[Callable[[CaptureRecord], None]] = []

    def record(self, seg: Segment, time: float, sent: bool) -> None:
        if not self.enabled or (not self.buffering and not self.taps):
            return
        rec = CaptureRecord(time, sent, seg)
        if self.buffering:
            self.records.append(rec)
        for tap in self.taps:
            tap(rec)

    def subscribe(self, tap: Callable[[CaptureRecord], None]) -> None:
        """Register a live tap called with every record as it is captured."""
        self.taps.append(tap)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CaptureRecord]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------- queries

    def filter(self, predicate: Callable[[CaptureRecord], bool]) -> List[CaptureRecord]:
        return [rec for rec in self.records if predicate(rec)]

    def received(self) -> List[CaptureRecord]:
        return self.filter(lambda rec: not rec.sent)

    def sent(self) -> List[CaptureRecord]:
        return self.filter(lambda rec: rec.sent)

    def syns_received(self) -> List[CaptureRecord]:
        return self.filter(lambda rec: not rec.sent and rec.segment.is_syn)

    def data_segments(self, received_only: bool = False) -> List[CaptureRecord]:
        return self.filter(
            lambda rec: rec.segment.is_data and (not received_only or not rec.sent)
        )

    def connections(self) -> dict:
        """Group records by direction-insensitive connection key."""
        groups: dict = {}
        for rec in self.records:
            groups.setdefault(rec.segment.conn_key(), []).append(rec)
        return groups

    def first_payload_from(self, src_ip: str, src_port: Optional[int] = None) -> Optional[bytes]:
        """First data payload received from a given remote endpoint."""
        for rec in self.records:
            seg = rec.segment
            if rec.sent or not seg.is_data:
                continue
            if seg.src_ip == src_ip and (src_port is None or seg.src_port == src_port):
                return seg.payload
        return None

    def flags_timeline(self, conn_key) -> List[str]:
        """Human-readable flag sequence for one connection (debug aid)."""
        out = []
        for rec in self.records:
            if rec.segment.conn_key() == conn_key:
                arrow = ">" if rec.sent else "<"
                out.append(f"{rec.time:.3f}{arrow}{Flags.render(rec.segment.flags)}"
                           f"({len(rec.segment.payload)})")
        return out
