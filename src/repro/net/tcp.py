"""Simplified TCP connection state machine.

The underlying network is in-order and lossless, so there is no
retransmission machinery; what *is* modeled faithfully is everything the
paper's measurements observe:

* the 3-way handshake and who closes first with which flags
  (FIN/ACK vs RST vs neither — the reaction classes of Figure 10);
* byte-accurate sequence/ack numbers;
* sender-side sliding window honouring the peer's advertised receive
  window (the mechanism brdgrd exploits to fragment the first payload);
* TCP timestamps (TSval/TSecr) with pluggable timestamp sources
  (the prober fleet shares a handful of TSval processes — Figure 6);
* IP TTL and ID on every segment.
"""

from __future__ import annotations

from typing import Callable, Optional

from .packet import Flags, Segment

__all__ = ["TcpConnection", "TcpState"]


class TcpState:
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT = "FIN_WAIT"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"


class TcpConnection:
    """One endpoint of a TCP connection."""

    MSS = 1400

    def __init__(
        self,
        host,
        local_ip: str,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        *,
        ttl: Optional[int] = None,
        tsval_source: Optional[Callable[[float], int]] = None,
        rcv_window: int = 65535,
    ):
        self.host = host
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = TcpState.CLOSED
        self.ttl = ttl if ttl is not None else host.default_ttl
        self._tsval_source = tsval_source

        # Receive window we advertise.  brdgrd manipulates the *other*
        # side's view of this by rewriting segments in flight.
        self.rcv_window = rcv_window

        # Send-side state.
        self._isn = host.rng.randrange(1 << 32)
        self._snd_nxt = self._isn
        self._snd_una = self._isn
        self._peer_window = self.MSS  # updated from every ACK
        self._send_buffer = bytearray()
        self._fin_pending = False
        self._fin_sent = False

        # Receive-side state.
        self._rcv_nxt = 0
        self._last_tsval_seen: Optional[int] = None

        # Observable outcomes.
        self.fin_received = False
        self.fin_sent_first: Optional[bool] = None  # True if we FIN'd before peer
        self.reset_received = False
        self.reset_sent = False
        self.bytes_received = 0
        self.bytes_sent = 0

        # Application callbacks.
        self.on_connected: Callable[[], None] = lambda: None
        self.on_data: Callable[[bytes], None] = lambda data: None
        self.on_remote_fin: Callable[[], None] = lambda: None
        self.on_reset: Callable[[], None] = lambda: None
        self.on_closed: Callable[[], None] = lambda: None

    # ------------------------------------------------------------------ util

    def _tsval(self) -> int:
        if self._tsval_source is not None:
            return self._tsval_source(self.host.sim.now) & 0xFFFFFFFF
        return self.host.tsval_now()

    def _emit(self, flags: int, payload: bytes = b"", seq: Optional[int] = None) -> None:
        seg = Segment(
            src_ip=self.local_ip,
            dst_ip=self.remote_ip,
            src_port=self.local_port,
            dst_port=self.remote_port,
            flags=flags,
            seq=seq if seq is not None else self._snd_nxt,
            ack=self._rcv_nxt if flags & Flags.ACK else 0,
            payload=payload,
            window=self.rcv_window,
            ttl=self.ttl,
            ip_id=self.host.next_ip_id(),
            tsval=None if flags & Flags.RST else self._tsval(),
            tsecr=self._last_tsval_seen if flags & Flags.ACK else None,
        )
        self.host.transmit(seg)

    @property
    def is_open(self) -> bool:
        return self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    # ------------------------------------------------------------ public API

    def open(self) -> None:
        """Actively initiate the connection (client side)."""
        if self.state != TcpState.CLOSED:
            raise RuntimeError(f"cannot open connection in state {self.state}")
        self.state = TcpState.SYN_SENT
        self._emit(Flags.SYN)
        self._snd_nxt += 1  # SYN consumes one sequence number

    def send(self, data: bytes) -> None:
        """Queue application data; transmitted as the peer window allows."""
        if not data:
            return
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT, TcpState.SYN_SENT, TcpState.SYN_RCVD):
            raise RuntimeError(f"cannot send in state {self.state}")
        self._send_buffer.extend(data)
        self._pump()

    def close(self) -> None:
        """Graceful close: FIN once the send buffer drains."""
        if self.state in (TcpState.CLOSED, TcpState.FIN_WAIT, TcpState.LAST_ACK):
            return
        self._fin_pending = True
        self._pump()

    def abort(self) -> None:
        """Send RST and drop the connection."""
        if self.state == TcpState.CLOSED:
            return
        self.reset_sent = True
        self._emit(Flags.RST)
        self._enter_closed()

    # ------------------------------------------------------------- internals

    def _enter_closed(self) -> None:
        if self.state != TcpState.CLOSED:
            self.state = TcpState.CLOSED
            self.host.forget(self)
            self.on_closed()

    def _pump(self) -> None:
        """Send as much buffered data as the peer's window allows."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            return
        while self._send_buffer:
            in_flight = self._snd_nxt - self._snd_una
            room = self._peer_window - in_flight
            if room <= 0:
                break
            chunk = bytes(self._send_buffer[: min(self.MSS, room)])
            del self._send_buffer[: len(chunk)]
            self._emit(Flags.PSH | Flags.ACK, payload=chunk)
            self._snd_nxt += len(chunk)
            self.bytes_sent += len(chunk)
        if self._fin_pending and not self._send_buffer and not self._fin_sent:
            self._fin_sent = True
            if self.fin_sent_first is None:
                self.fin_sent_first = not self.fin_received
            self._emit(Flags.FIN | Flags.ACK)
            self._snd_nxt += 1  # FIN consumes one sequence number
            self.state = (
                TcpState.LAST_ACK if self.state == TcpState.CLOSE_WAIT else TcpState.FIN_WAIT
            )

    def handle_segment(self, seg: Segment) -> None:
        """Process one incoming segment (called by the host)."""
        if seg.tsval is not None:
            self._last_tsval_seen = seg.tsval

        if seg.has(Flags.RST):
            self.reset_received = True
            self.on_reset()
            self._enter_closed()
            return

        if self.state == TcpState.SYN_SENT:
            if seg.has(Flags.SYN) and seg.has(Flags.ACK):
                self._rcv_nxt = (seg.seq + 1) & 0xFFFFFFFF
                self._snd_una = seg.ack
                self._peer_window = seg.window
                self.state = TcpState.ESTABLISHED
                self._emit(Flags.ACK)
                self.on_connected()
                self._pump()
            return

        if self.state == TcpState.SYN_RCVD:
            if seg.has(Flags.ACK):
                self._snd_una = seg.ack
                self._peer_window = seg.window
                self.state = TcpState.ESTABLISHED
                self.on_connected()
                self._pump()
            # Fall through: the handshake ACK may carry data (it does not
            # in this model, but be permissive).
            if not seg.payload:
                return

        if seg.has(Flags.ACK):
            if seg.ack > self._snd_una:
                self._snd_una = seg.ack
            self._peer_window = seg.window
            if self.state == TcpState.LAST_ACK and self._snd_una >= self._snd_nxt:
                self._enter_closed()
                return
            self._pump()

        if seg.payload:
            self._rcv_nxt = (seg.seq + len(seg.payload)) & 0xFFFFFFFF
            self.bytes_received += len(seg.payload)
            self._emit(Flags.ACK)
            self.on_data(seg.payload)
            # on_data may have closed/aborted us; nothing further to do then.
            if self.state == TcpState.CLOSED:
                return

        if seg.has(Flags.FIN):
            self.fin_received = True
            if self.fin_sent_first is None:
                self.fin_sent_first = False
            self._rcv_nxt = (seg.seq + len(seg.payload) + 1) & 0xFFFFFFFF
            self._emit(Flags.ACK)
            self.on_remote_fin()
            if self.state == TcpState.FIN_WAIT:
                self._enter_closed()
            elif self.state == TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT
