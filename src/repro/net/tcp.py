"""Simplified TCP connection state machine.

On a pristine network (no :class:`~repro.net.impairment.Impairment`
attached) there is no retransmission machinery — delivery is in-order
and lossless, and the connection reproduces the historical traces
byte-for-byte.  What *is* always modeled faithfully is everything the
paper's measurements observe:

* the 3-way handshake and who closes first with which flags
  (FIN/ACK vs RST vs neither — the reaction classes of Figure 10);
* byte-accurate sequence/ack numbers;
* sender-side sliding window honouring the peer's advertised receive
  window (the mechanism brdgrd exploits to fragment the first payload);
* TCP timestamps (TSval/TSecr) with pluggable timestamp sources
  (the prober fleet shares a handful of TSval processes — Figure 6);
* IP TTL and ID on every segment.

When the network reports itself unreliable (``network.reliable`` is
False at connection setup), the endpoint additionally arms the minimum
machinery needed to survive loss, reordering, and duplication:

* a retransmission timer with exponential backoff over a queue of
  unacknowledged segments (SYN, data, FIN alike — so SYN retry and
  SYN/ACK retry fall out of the same mechanism);
* sequence-checked receive with an out-of-order buffer: duplicates are
  re-ACKed and dropped, future segments are held until the gap fills;
* connection give-up after ``SYN_RETRIES``/``DATA_RETRIES`` consecutive
  timeouts (``timed_out`` is set and the connection closes locally).

Retransmission events are counted on the simulator's bus
(``tcp.retransmit``, ``tcp.syn.retry``, ``tcp.ooo.buffered``,
``tcp.dup.dropped``, ``tcp.timeout``).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from .packet import Flags, Segment, flag_words, lengths

__all__ = ["TcpConnection", "TcpState"]

_SEQ_MASK = 0xFFFFFFFF
_HOST_TRANSMIT = None  # Host.transmit, resolved lazily (circular import)
# Both handshake bits set: the SYN/ACK test on the per-segment hot path.
_SYN_ACK_BOTH = Flags.SYN | Flags.ACK


def _seq_delta(a: int, b: int) -> int:
    """Signed serial-number difference ``a - b`` (RFC 1982 style)."""
    return ((a - b + 0x80000000) & _SEQ_MASK) - 0x80000000


def _noop(*_args) -> None:
    """Shared default for application callbacks (any arity)."""


class TcpState:
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT = "FIN_WAIT"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"


class TcpConnection:
    """One endpoint of a TCP connection.

    ``__slots__`` covers every attribute ``__init__`` assigns: thousands
    of connections churn through a blocking-fleet run, and the datapath
    touches these attributes on every segment.
    """

    __slots__ = (
        "host", "local_ip", "local_port", "remote_ip", "remote_port",
        "state", "ttl", "_tsval_source", "reliable", "rcv_window",
        "_isn", "_snd_nxt", "_snd_una", "_peer_window", "_send_buffer",
        "_fin_pending", "_fin_sent",
        "_retx_queue", "_retx_event", "_rto", "_retries",
        "_rcv_nxt", "_ooo", "_last_tsval_seen",
        "fin_received", "fin_sent_first", "reset_received", "reset_sent",
        "timed_out", "bytes_received", "bytes_sent", "retransmits",
        "on_connected", "on_data", "on_remote_fin", "on_reset", "on_closed",
        "on_data_run", "_grb", "_fast_tx",
    )

    MSS = 1400

    # Retransmission parameters (only used on unreliable networks).
    RTO_INITIAL = 1.0     # seconds; doubled on every consecutive timeout
    RTO_MAX = 60.0
    SYN_RETRIES = 5       # Linux tcp_syn_retries default
    DATA_RETRIES = 8      # give-up threshold for data/FIN segments

    def __init__(
        self,
        host,
        local_ip: str,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        *,
        ttl: Optional[int] = None,
        tsval_source: Optional[Callable[[float], int]] = None,
        rcv_window: int = 65535,
    ):
        self.host = host
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = TcpState.CLOSED
        self.ttl = ttl if ttl is not None else host.default_ttl
        self._tsval_source = tsval_source

        # Sampled once at setup: a reliable fabric keeps the historical
        # no-retransmission machinery and its exact traces.
        self.reliable = host.network.reliable

        # Receive window we advertise.  brdgrd manipulates the *other*
        # side's view of this by rewriting segments in flight.
        self.rcv_window = rcv_window

        # Send-side state.  The ISN draw inlines CPython's
        # ``randrange(1 << 32)`` reduction (``_randbelow`` via 33-bit
        # getrandbits with redraw) for stock RNGs — the identical seeded
        # stream without two wrapper frames per connection.
        rng = host.rng
        if type(rng) is random.Random:
            isn = rng.getrandbits(33)
            while isn >= 4294967296:
                isn = rng.getrandbits(33)
            self._isn = isn
        else:
            self._isn = rng.randrange(1 << 32)
        self._snd_nxt = self._isn
        self._snd_una = self._isn
        self._peer_window = self.MSS  # updated from every ACK
        self._send_buffer = bytearray()
        self._fin_pending = False
        self._fin_sent = False

        # Retransmission state (idle on reliable networks).
        # Queue entries: (seq, flags, payload, sequence-space consumed).
        self._retx_queue: List[Tuple[int, int, bytes, int]] = []
        self._retx_event = None
        self._rto = self.RTO_INITIAL
        self._retries = 0

        # Receive-side state.
        self._rcv_nxt = 0
        self._ooo: Dict[int, Segment] = {}  # seq -> buffered future segment
        self._last_tsval_seen: Optional[int] = None

        # Observable outcomes.
        self.fin_received = False
        self.fin_sent_first: Optional[bool] = None  # True if we FIN'd before peer
        self.reset_received = False
        self.reset_sent = False
        self.timed_out = False
        self.bytes_received = 0
        self.bytes_sent = 0
        self.retransmits = 0

        # Application callbacks (shared no-ops: one closure per *class*,
        # not five per connection — accepts on the probe-heavy paths
        # construct thousands of connections per scenario).
        self.on_connected: Callable[[], None] = _noop
        self.on_data: Callable[[bytes], None] = _noop
        self.on_remote_fin: Callable[[], None] = _noop
        self.on_reset: Callable[[], None] = _noop
        self.on_closed: Callable[[], None] = _noop
        # IP-ID fast path: for a stock ``random.Random``,
        # ``_randbelow(65536)`` is exactly ``getrandbits(17)`` redrawn
        # while >= 65536 (CPython's ``_randbelow_with_getrandbits``), so
        # the emit path can inline that loop against the bound C method —
        # the identical draw stream without the Python-level call.
        # Subclassed RNGs (which may override the reduction) keep the
        # ``_randbelow`` delegation.
        self._grb = (host.rng.getrandbits
                     if type(host.rng) is random.Random else None)
        # Transmit fast path: with a stock (class-level) ``transmit``,
        # ``_emit`` inlines the capture stamp + buffer/send dispatch.
        # Instance-level monkeypatches are re-checked per emission.
        # (Lazy Host lookup: host.py imports this module at load time,
        # so the reverse import must happen at runtime.)
        global _HOST_TRANSMIT
        if _HOST_TRANSMIT is None:
            from .host import Host
            _HOST_TRANSMIT = Host.transmit
        self._fast_tx = type(host).transmit is _HOST_TRANSMIT
        # Opt-in burst delivery: when set, the batched receive path hands
        # an in-order data run to the app as ONE call with the list of
        # payloads instead of one ``on_data`` per segment (the ACKs are
        # still emitted per segment, so the wire trace is unchanged).
        # Only safe for apps whose data handler makes no host RNG draws
        # and emits nothing mid-run — e.g. a client draining replies into
        # a buffer, or a record layer batch-opening ciphertext chunks.
        self.on_data_run: Optional[Callable[[List[bytes]], None]] = None

    # ------------------------------------------------------------------ util

    def _tsval(self) -> int:
        if self._tsval_source is not None:
            return self._tsval_source(self.host.sim.now) & 0xFFFFFFFF
        return self.host.tsval_now()

    def _emit(self, flags: int, payload: bytes = b"", seq: Optional[int] = None) -> None:
        # Slot-store construction: one segment is emitted per ACK/data
        # chunk/handshake step, and skipping the generated dataclass
        # ``__init__`` (14 keyword slots) plus the ``_tsval``/
        # ``next_ip_id`` delegations measurably trims the hot path.
        # Field values are identical to the historical keyword form.
        host = self.host
        if flags & Flags.RST:
            tsval = None
        else:
            source = self._tsval_source
            tsval = (int(host._tsval_offset
                         + host.tsval_rate * host.sim.now) & 0xFFFFFFFF
                     if source is None
                     else source(host.sim.now) & 0xFFFFFFFF)
        grb = self._grb
        if grb is not None:
            ip_id = grb(17)
            while ip_id >= 65536:
                ip_id = grb(17)
        else:
            ip_id = host.rng._randbelow(65536)
        acked = flags & Flags.ACK
        seg = object.__new__(Segment)
        seg.src_ip = self.local_ip
        seg.dst_ip = self.remote_ip
        seg.src_port = self.local_port
        seg.dst_port = self.remote_port
        seg.flags = flags
        seg.seq = seq if seq is not None else self._snd_nxt
        seg.ack = self._rcv_nxt if acked else 0
        seg.payload = payload
        seg.window = self.rcv_window
        seg.ttl = self.ttl
        seg.ip_id = ip_id
        seg.tsval = tsval
        seg.tsecr = self._last_tsval_seen if acked else None
        seg.timestamp = 0.0
        # Inlined Host.transmit for stock hosts (see _fast_tx): capture
        # stamp, then buffer under an open tx batch or send immediately.
        if self._fast_tx and "transmit" not in host.__dict__:
            cap = host.capture
            if cap.enabled:
                if cap.taps:
                    cap.record(seg, host.sim.now, sent=True)
                elif cap.buffering:
                    cap._raw.append((host.sim.now, True, seg))
            if host._tx_depth:
                host._tx_buffer.append(seg)
            else:
                host.network.send_segment(seg)
        else:
            host.transmit(seg)

    @property
    def is_open(self) -> bool:
        return self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    # ------------------------------------------------------------ public API

    def open(self) -> None:
        """Actively initiate the connection (client side)."""
        if self.state != TcpState.CLOSED:
            raise RuntimeError(f"cannot open connection in state {self.state}")
        self.state = TcpState.SYN_SENT
        self._emit(Flags.SYN)
        self._queue_retx(Flags.SYN, b"", self._snd_nxt, 1)
        self._snd_nxt += 1  # SYN consumes one sequence number

    def send(self, data: bytes) -> None:
        """Queue application data; transmitted as the peer window allows.

        The pump runs inside a host transmit batch: every MSS chunk it
        emits in this call leaves as one per-flow burst (a single
        delivery event) instead of one network event per segment.
        """
        if not data:
            return
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT, TcpState.SYN_SENT, TcpState.SYN_RCVD):
            raise RuntimeError(f"cannot send in state {self.state}")
        self._send_buffer.extend(data)
        host = self.host
        host.begin_tx_batch()
        try:
            self._pump()
        finally:
            host.end_tx_batch()

    def close(self) -> None:
        """Graceful close: FIN once the send buffer drains."""
        if self.state in (TcpState.CLOSED, TcpState.FIN_WAIT, TcpState.LAST_ACK):
            return
        self._fin_pending = True
        host = self.host
        host.begin_tx_batch()
        try:
            self._pump()
        finally:
            host.end_tx_batch()

    def abort(self) -> None:
        """Send RST and drop the connection."""
        if self.state == TcpState.CLOSED:
            return
        self.reset_sent = True
        self._emit(Flags.RST)
        self._enter_closed()

    # ------------------------------------------------- retransmission timer

    def _queue_retx(self, flags: int, payload: bytes, seq: int, consumed: int) -> None:
        """Track an in-flight segment for retransmission (unreliable only)."""
        if self.reliable:
            return
        self._retx_queue.append((seq, flags, payload, consumed))
        self._arm_retx()

    def _arm_retx(self) -> None:
        if self._retx_event is None:
            self._retx_event = self.host.sim.schedule(self._rto, self._on_rto)

    def _cancel_retx(self) -> None:
        if self._retx_event is not None:
            self._retx_event.cancel()
            self._retx_event = None

    def _on_rto(self) -> None:
        self._retx_event = None
        if self.state == TcpState.CLOSED or not self._retx_queue:
            return
        seq, flags, payload, consumed = self._retx_queue[0]
        limit = self.SYN_RETRIES if flags & Flags.SYN else self.DATA_RETRIES
        if self._retries >= limit:
            # The path is gone (blackout, persistent loss, silent drop):
            # give up locally rather than retrying forever.
            self.timed_out = True
            self.host.sim.bus.incr("tcp.timeout")
            self._enter_closed()
            return
        self._retries += 1
        self.retransmits += 1
        pure_syn = bool(flags & Flags.SYN) and not flags & Flags.ACK
        self.host.sim.bus.incr("tcp.syn.retry" if pure_syn else "tcp.retransmit")
        self._emit(flags, payload=payload, seq=seq)
        self._rto = min(self._rto * 2.0, self.RTO_MAX)
        self._arm_retx()

    def _ack_advance(self, ack: int) -> None:
        """Fold one cumulative ACK into the send state."""
        if self.reliable:
            if ack > self._snd_una:
                self._snd_una = ack
            return
        if _seq_delta(ack, self._snd_una) <= 0:
            return
        self._snd_una = ack
        while self._retx_queue:
            seq, _flags, _payload, consumed = self._retx_queue[0]
            if _seq_delta(ack, seq + consumed) >= 0:
                self._retx_queue.pop(0)
            else:
                break
        # Forward progress: restart the timer at the base RTO for
        # whatever is still outstanding.
        self._retries = 0
        self._rto = self.RTO_INITIAL
        self._cancel_retx()
        if self._retx_queue:
            self._arm_retx()

    # ------------------------------------------------------------- internals

    def _enter_closed(self) -> None:
        if self.state != TcpState.CLOSED:
            self.state = TcpState.CLOSED
            self._cancel_retx()
            self.host.forget(self)
            self.on_closed()

    def _pump(self) -> None:
        """Send as much buffered data as the peer's window allows."""
        # Common case on the receive path: an ACK arrives with nothing
        # buffered and no FIN to send — bail before the state tests.
        if not self._send_buffer and (self._fin_sent or not self._fin_pending):
            return
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            return
        while self._send_buffer:
            in_flight = (
                self._snd_nxt - self._snd_una if self.reliable
                else _seq_delta(self._snd_nxt, self._snd_una)
            )
            room = self._peer_window - in_flight
            if room <= 0:
                break
            chunk = bytes(self._send_buffer[: min(self.MSS, room)])
            del self._send_buffer[: len(chunk)]
            self._emit(Flags.PSH | Flags.ACK, payload=chunk)
            self._queue_retx(Flags.PSH | Flags.ACK, chunk, self._snd_nxt, len(chunk))
            self._snd_nxt += len(chunk)
            self.bytes_sent += len(chunk)
        if self._fin_pending and not self._send_buffer and not self._fin_sent:
            self._fin_sent = True
            if self.fin_sent_first is None:
                self.fin_sent_first = not self.fin_received
            self._emit(Flags.FIN | Flags.ACK)
            self._queue_retx(Flags.FIN | Flags.ACK, b"", self._snd_nxt, 1)
            self._snd_nxt += 1  # FIN consumes one sequence number
            self.state = (
                TcpState.LAST_ACK if self.state == TcpState.CLOSE_WAIT else TcpState.FIN_WAIT
            )

    def handle_segment(self, seg: Segment) -> None:
        """Process one incoming segment (called by the host)."""
        # Flag tests are inlined as bit ops on a local — this method runs
        # for every delivered segment that misses the batched fast path.
        flags = seg.flags
        if seg.tsval is not None:
            self._last_tsval_seen = seg.tsval

        if flags & Flags.RST:
            self.reset_received = True
            self.on_reset()
            self._enter_closed()
            return

        if self.state == TcpState.SYN_SENT:
            if flags & _SYN_ACK_BOTH == _SYN_ACK_BOTH:
                self._rcv_nxt = (seg.seq + 1) & 0xFFFFFFFF
                self._ack_advance(seg.ack)
                self._peer_window = seg.window
                self.state = TcpState.ESTABLISHED
                self._emit(Flags.ACK)
                self.on_connected()
                self._pump()
            return

        if self.state == TcpState.SYN_RCVD:
            if not self.reliable and seg.is_syn:
                # The peer retried its SYN: our SYN/ACK was lost.
                self.retransmits += 1
                self.host.sim.bus.incr("tcp.retransmit")
                self._emit(Flags.SYN | Flags.ACK, seq=self._isn)
                return
            if flags & Flags.ACK:
                self._ack_advance(seg.ack)
                self._peer_window = seg.window
                self.state = TcpState.ESTABLISHED
                self.on_connected()
                self._pump()
            # Fall through: the handshake ACK may carry data (it does not
            # in this model, but be permissive).
            if not seg.payload:
                return

        if not self.reliable and flags & _SYN_ACK_BOTH == _SYN_ACK_BOTH:
            # Duplicate SYN/ACK (our handshake ACK was lost): re-ACK so
            # the peer leaves SYN_RCVD.
            self._emit(Flags.ACK)
            return

        if flags & Flags.ACK:
            # Reliable-fabric ACK fold and the _pump early-out are inlined
            # (identical semantics) — this is the hottest branch of the
            # per-segment receive path.
            if self.reliable:
                if seg.ack > self._snd_una:
                    self._snd_una = seg.ack
            else:
                self._ack_advance(seg.ack)
            self._peer_window = seg.window
            if self.state == TcpState.LAST_ACK and self._snd_una >= self._snd_nxt:
                self._enter_closed()
                return
            if self._send_buffer or (self._fin_pending and not self._fin_sent):
                self._pump()

        if not self.reliable:
            if seg.payload or flags & Flags.FIN:
                self._receive_sequenced(seg)
            return

        if seg.payload:
            self._rcv_nxt = (seg.seq + len(seg.payload)) & 0xFFFFFFFF
            self.bytes_received += len(seg.payload)
            self._emit(Flags.ACK)
            self.on_data(seg.payload)
            # on_data may have closed/aborted us; nothing further to do then.
            if self.state == TcpState.CLOSED:
                return

        if flags & Flags.FIN:
            self.fin_received = True
            if self.fin_sent_first is None:
                self.fin_sent_first = False
            self._rcv_nxt = (seg.seq + len(seg.payload) + 1) & 0xFFFFFFFF
            self._emit(Flags.ACK)
            self.on_remote_fin()
            if self.state == TcpState.FIN_WAIT:
                self._enter_closed()
            elif self.state == TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT

    # ----------------------------------------------- batched receive path

    # States in which the batched receive path may run: the handshake is
    # done, and the only state transition an incoming non-flag segment
    # can cause (LAST_ACK close) is excluded.
    _BURST_STATES = (TcpState.ESTABLISHED, TcpState.FIN_WAIT,
                     TcpState.CLOSE_WAIT)

    def _burst_quiescent(self) -> bool:
        """True while per-segment processing is provably branch-free.

        With nothing buffered to send and no FIN waiting to go out,
        ``_pump`` is a no-op for every segment of a run, so ACK handling
        reduces to the cumulative fold ``handle_burst`` performs.
        """
        return (self.state in self._BURST_STATES
                and not self._send_buffer
                and not (self._fin_pending and not self._fin_sent))

    def handle_burst(self, segs: List[Segment]) -> int:
        """Consume a qualifying prefix of a same-flow burst in one call.

        Byte-identical to calling :meth:`handle_segment` per segment —
        the fast path only engages while that equivalence is provable:

        * reliable fabric (impaired networks keep the sequence-checked
          per-segment receive and its fault handling);
        * stock timestamp source (a stateful ``tsval_source`` could
          observe the per-emission call pattern);
        * handshake complete, send buffer empty, no un-sent FIN pending
          (so the per-ACK ``_pump`` is a no-op) — re-checked after every
          app callback, since ``on_data`` may send, close, or abort;
        * data runs must be exactly in-order (``seq == rcv_nxt``,
          contiguous) with plain ACK/PSH flags; anything else — OOO,
          retransmits, SYN/FIN/RST, unexpected flag combos — ends the
          prefix and falls back to ``handle_segment``.

        Per data segment the loop still records the arrival capture,
        advances ``rcv_nxt``, and emits the cumulative ACK (same fields,
        same ``ip_id`` RNG draw), so captures, analyzer taps, and every
        downstream byte are unchanged.  Returns the number of segments
        consumed; the host routes the remainder per segment.
        """
        if not self.reliable or self._tsval_source is not None:
            return 0
        n = len(segs)
        fw = flag_words(segs)
        ln = lengths(segs)
        ack_bit = Flags.ACK
        bad_bits = Flags.SYN | Flags.FIN | Flags.RST
        i = 0
        while i < n:
            if not self._burst_quiescent():
                break
            f = fw[i]
            if f == ack_bit and not ln[i]:
                i = self._rx_ack_run(segs, fw, ln, i, n)
            elif ln[i] and f & ack_bit and not f & bad_bits:
                j = self._rx_data_run(segs, fw, ln, i, n)
                if j == i:
                    break
                i = j
            else:
                break
        return i

    def _rx_ack_run(self, segs, fw, ln, i: int, n: int) -> int:
        """Fold a run of pure ACKs (no payload, no other flags) at once.

        Sequential per-segment handling would do: update the tsval echo,
        fold the cumulative ACK (a running max on a reliable fabric),
        take the peer window, and run a no-op ``_pump``.  Folding keeps
        the last tsval/window and the max ACK — identical final state —
        while each arrival is still captured in order.
        """
        ack_bit = Flags.ACK
        j = i
        while j < n and fw[j] == ack_bit and not ln[j]:
            j += 1
        host = self.host
        cap = host.capture
        # Inlined Capture.record fast path (see Host.transmit).
        raw = (cap._raw if cap.enabled and not cap.taps and cap.buffering
               else None)
        record = cap.record if raw is None and cap.enabled else None
        now = host.sim.now
        best = self._snd_una
        for k in range(i, j):
            seg = segs[k]
            if raw is not None:
                raw.append((now, False, seg))
            elif record is not None:
                record(seg, now, False)
            tsv = seg.tsval
            if tsv is not None:
                self._last_tsval_seen = tsv
            a = seg.ack
            if a > best:
                best = a
        self._snd_una = best
        self._peer_window = segs[j - 1].window
        return j

    def _rx_data_run(self, segs, fw, ln, i: int, n: int) -> int:
        """Process an exactly-in-order data run; returns the new index.

        Emits one cumulative ACK per segment with the identical field
        values and RNG draws the per-segment path produces (they leave
        as one coalesced return burst when the host's transmit batch
        flushes), then hands payloads to the app — per segment via
        ``on_data``, or as one concatenated run via ``on_data_run`` when
        the app opted in.
        """
        seq_mask = _SEQ_MASK
        ack_bit = Flags.ACK
        bad_bits = Flags.SYN | Flags.FIN | Flags.RST
        # Classify: longest contiguous in-sequence data prefix.
        expect = self._rcv_nxt
        j = i
        while j < n:
            f = fw[j]
            if not ln[j] or not f & ack_bit or f & bad_bits:
                break
            if segs[j].seq != expect:
                break
            expect = (expect + ln[j]) & seq_mask
            j += 1
        if j == i:
            return i
        host = self.host
        cap = host.capture
        # Inlined Capture.record fast path (see Host.transmit).
        raw = (cap._raw if cap.enabled and not cap.taps and cap.buffering
               else None)
        record = cap.record if raw is None and cap.enabled else None
        transmit = host.transmit
        fast_tx = self._fast_tx and "transmit" not in host.__dict__
        txbuf = host._tx_buffer
        grb = self._grb
        randbelow = host.rng._randbelow if grb is None else None
        now = host.sim.now
        tsval_now = int(host._tsval_offset
                        + host.tsval_rate * now) & 0xFFFFFFFF
        on_run = self.on_data_run
        chunks: Optional[List[bytes]] = [] if on_run is not None else None
        k = i
        while k < j:
            seg = segs[k]
            if raw is not None:
                raw.append((now, False, seg))
            elif record is not None:
                record(seg, now, False)
            tsv = seg.tsval
            if tsv is not None:
                self._last_tsval_seen = tsv
            a = seg.ack
            if a > self._snd_una:
                self._snd_una = a
            self._peer_window = seg.window
            nxt = (seg.seq + ln[k]) & seq_mask
            self._rcv_nxt = nxt
            self.bytes_received += ln[k]
            ack = object.__new__(Segment)
            ack.src_ip = self.local_ip
            ack.dst_ip = self.remote_ip
            ack.src_port = self.local_port
            ack.dst_port = self.remote_port
            ack.flags = ack_bit
            ack.seq = self._snd_nxt
            ack.ack = nxt
            ack.payload = b""
            ack.window = self.rcv_window
            ack.ttl = self.ttl
            if grb is not None:
                ip_id = grb(17)
                while ip_id >= 65536:
                    ip_id = grb(17)
            else:
                ip_id = randbelow(65536)
            ack.ip_id = ip_id
            ack.tsval = tsval_now
            ack.tsecr = self._last_tsval_seen
            ack.timestamp = 0.0
            # Inlined Host.transmit (same dispatch as ``_emit``): the TX
            # capture stamp shares this capture's fast-path locals.
            if fast_tx:
                if raw is not None:
                    raw.append((now, True, ack))
                elif record is not None:
                    record(ack, now, True)
                if host._tx_depth:
                    txbuf.append(ack)
                else:
                    host.network.send_segment(ack)
            else:
                transmit(ack)
            k += 1
            if chunks is not None:
                chunks.append(seg.payload)
            else:
                self.on_data(seg.payload)
                if not self._burst_quiescent():
                    break
        if chunks is not None:
            on_run(chunks)
        return k

    # ------------------------------------------ sequence-checked receive

    def _receive_sequenced(self, seg: Segment) -> None:
        """Receive path on unreliable networks: dedup, reorder, reassemble."""
        end = seg.seq + len(seg.payload) + (1 if seg.has(Flags.FIN) else 0)
        bus = self.host.sim.bus
        if _seq_delta(end, self._rcv_nxt) <= 0:
            # Wholly duplicate (a retransmission or a network-level copy):
            # re-ACK so the sender can clear its queue.
            bus.incr("tcp.dup.dropped")
            self._emit(Flags.ACK)
            return
        if _seq_delta(seg.seq, self._rcv_nxt) > 0:
            # Future segment: hold it until the gap fills, and dup-ACK to
            # advertise where the hole is.
            if seg.seq not in self._ooo:
                self._ooo[seg.seq] = seg
                bus.incr("tcp.ooo.buffered")
            self._emit(Flags.ACK)
            return
        self._deliver_in_order(seg)
        if self.state != TcpState.CLOSED:
            self._drain_ooo()

    def _deliver_in_order(self, seg: Segment) -> None:
        """Deliver a segment starting at or before ``rcv_nxt`` (trims overlap)."""
        payload = seg.payload
        offset = _seq_delta(self._rcv_nxt, seg.seq)
        if offset > 0:
            payload = payload[offset:]
        if payload:
            self._rcv_nxt = (seg.seq + len(seg.payload)) & 0xFFFFFFFF
            self.bytes_received += len(payload)
            self._emit(Flags.ACK)
            self.on_data(payload)
            if self.state == TcpState.CLOSED:
                return
        if seg.has(Flags.FIN):
            self.fin_received = True
            if self.fin_sent_first is None:
                self.fin_sent_first = False
            self._rcv_nxt = (seg.seq + len(seg.payload) + 1) & 0xFFFFFFFF
            self._emit(Flags.ACK)
            self.on_remote_fin()
            if self.state == TcpState.FIN_WAIT:
                self._enter_closed()
            elif self.state == TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT

    def _drain_ooo(self) -> None:
        """Deliver buffered future segments made contiguous by new data."""
        progressed = True
        while progressed and self._ooo and self.state != TcpState.CLOSED:
            progressed = False
            for seq in sorted(self._ooo, key=lambda s: _seq_delta(s, self._rcv_nxt)):
                seg = self._ooo[seq]
                end = seq + len(seg.payload) + (1 if seg.has(Flags.FIN) else 0)
                if _seq_delta(end, self._rcv_nxt) <= 0:
                    del self._ooo[seq]      # overtaken: wholly duplicate now
                    progressed = True
                elif _seq_delta(seq, self._rcv_nxt) <= 0:
                    del self._ooo[seq]
                    self._deliver_in_order(seg)
                    progressed = True
                    break                   # rcv_nxt moved; rescan
