"""Simplified TCP connection state machine.

On a pristine network (no :class:`~repro.net.impairment.Impairment`
attached) there is no retransmission machinery — delivery is in-order
and lossless, and the connection reproduces the historical traces
byte-for-byte.  What *is* always modeled faithfully is everything the
paper's measurements observe:

* the 3-way handshake and who closes first with which flags
  (FIN/ACK vs RST vs neither — the reaction classes of Figure 10);
* byte-accurate sequence/ack numbers;
* sender-side sliding window honouring the peer's advertised receive
  window (the mechanism brdgrd exploits to fragment the first payload);
* TCP timestamps (TSval/TSecr) with pluggable timestamp sources
  (the prober fleet shares a handful of TSval processes — Figure 6);
* IP TTL and ID on every segment.

When the network reports itself unreliable (``network.reliable`` is
False at connection setup), the endpoint additionally arms the minimum
machinery needed to survive loss, reordering, and duplication:

* a retransmission timer with exponential backoff over a queue of
  unacknowledged segments (SYN, data, FIN alike — so SYN retry and
  SYN/ACK retry fall out of the same mechanism);
* sequence-checked receive with an out-of-order buffer: duplicates are
  re-ACKed and dropped, future segments are held until the gap fills;
* connection give-up after ``SYN_RETRIES``/``DATA_RETRIES`` consecutive
  timeouts (``timed_out`` is set and the connection closes locally).

Retransmission events are counted on the simulator's bus
(``tcp.retransmit``, ``tcp.syn.retry``, ``tcp.ooo.buffered``,
``tcp.dup.dropped``, ``tcp.timeout``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .packet import Flags, Segment

__all__ = ["TcpConnection", "TcpState"]

_SEQ_MASK = 0xFFFFFFFF


def _seq_delta(a: int, b: int) -> int:
    """Signed serial-number difference ``a - b`` (RFC 1982 style)."""
    return ((a - b + 0x80000000) & _SEQ_MASK) - 0x80000000


class TcpState:
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT = "FIN_WAIT"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"


class TcpConnection:
    """One endpoint of a TCP connection.

    ``__slots__`` covers every attribute ``__init__`` assigns: thousands
    of connections churn through a blocking-fleet run, and the datapath
    touches these attributes on every segment.
    """

    __slots__ = (
        "host", "local_ip", "local_port", "remote_ip", "remote_port",
        "state", "ttl", "_tsval_source", "reliable", "rcv_window",
        "_isn", "_snd_nxt", "_snd_una", "_peer_window", "_send_buffer",
        "_fin_pending", "_fin_sent",
        "_retx_queue", "_retx_event", "_rto", "_retries",
        "_rcv_nxt", "_ooo", "_last_tsval_seen",
        "fin_received", "fin_sent_first", "reset_received", "reset_sent",
        "timed_out", "bytes_received", "bytes_sent", "retransmits",
        "on_connected", "on_data", "on_remote_fin", "on_reset", "on_closed",
    )

    MSS = 1400

    # Retransmission parameters (only used on unreliable networks).
    RTO_INITIAL = 1.0     # seconds; doubled on every consecutive timeout
    RTO_MAX = 60.0
    SYN_RETRIES = 5       # Linux tcp_syn_retries default
    DATA_RETRIES = 8      # give-up threshold for data/FIN segments

    def __init__(
        self,
        host,
        local_ip: str,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        *,
        ttl: Optional[int] = None,
        tsval_source: Optional[Callable[[float], int]] = None,
        rcv_window: int = 65535,
    ):
        self.host = host
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = TcpState.CLOSED
        self.ttl = ttl if ttl is not None else host.default_ttl
        self._tsval_source = tsval_source

        # Sampled once at setup: a reliable fabric keeps the historical
        # no-retransmission machinery and its exact traces.
        self.reliable = host.network.reliable

        # Receive window we advertise.  brdgrd manipulates the *other*
        # side's view of this by rewriting segments in flight.
        self.rcv_window = rcv_window

        # Send-side state.
        self._isn = host.rng.randrange(1 << 32)
        self._snd_nxt = self._isn
        self._snd_una = self._isn
        self._peer_window = self.MSS  # updated from every ACK
        self._send_buffer = bytearray()
        self._fin_pending = False
        self._fin_sent = False

        # Retransmission state (idle on reliable networks).
        # Queue entries: (seq, flags, payload, sequence-space consumed).
        self._retx_queue: List[Tuple[int, int, bytes, int]] = []
        self._retx_event = None
        self._rto = self.RTO_INITIAL
        self._retries = 0

        # Receive-side state.
        self._rcv_nxt = 0
        self._ooo: Dict[int, Segment] = {}  # seq -> buffered future segment
        self._last_tsval_seen: Optional[int] = None

        # Observable outcomes.
        self.fin_received = False
        self.fin_sent_first: Optional[bool] = None  # True if we FIN'd before peer
        self.reset_received = False
        self.reset_sent = False
        self.timed_out = False
        self.bytes_received = 0
        self.bytes_sent = 0
        self.retransmits = 0

        # Application callbacks.
        self.on_connected: Callable[[], None] = lambda: None
        self.on_data: Callable[[bytes], None] = lambda data: None
        self.on_remote_fin: Callable[[], None] = lambda: None
        self.on_reset: Callable[[], None] = lambda: None
        self.on_closed: Callable[[], None] = lambda: None

    # ------------------------------------------------------------------ util

    def _tsval(self) -> int:
        if self._tsval_source is not None:
            return self._tsval_source(self.host.sim.now) & 0xFFFFFFFF
        return self.host.tsval_now()

    def _emit(self, flags: int, payload: bytes = b"", seq: Optional[int] = None) -> None:
        seg = Segment(
            src_ip=self.local_ip,
            dst_ip=self.remote_ip,
            src_port=self.local_port,
            dst_port=self.remote_port,
            flags=flags,
            seq=seq if seq is not None else self._snd_nxt,
            ack=self._rcv_nxt if flags & Flags.ACK else 0,
            payload=payload,
            window=self.rcv_window,
            ttl=self.ttl,
            ip_id=self.host.next_ip_id(),
            tsval=None if flags & Flags.RST else self._tsval(),
            tsecr=self._last_tsval_seen if flags & Flags.ACK else None,
        )
        self.host.transmit(seg)

    @property
    def is_open(self) -> bool:
        return self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    # ------------------------------------------------------------ public API

    def open(self) -> None:
        """Actively initiate the connection (client side)."""
        if self.state != TcpState.CLOSED:
            raise RuntimeError(f"cannot open connection in state {self.state}")
        self.state = TcpState.SYN_SENT
        self._emit(Flags.SYN)
        self._queue_retx(Flags.SYN, b"", self._snd_nxt, 1)
        self._snd_nxt += 1  # SYN consumes one sequence number

    def send(self, data: bytes) -> None:
        """Queue application data; transmitted as the peer window allows.

        The pump runs inside a host transmit batch: every MSS chunk it
        emits in this call leaves as one per-flow burst (a single
        delivery event) instead of one network event per segment.
        """
        if not data:
            return
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT, TcpState.SYN_SENT, TcpState.SYN_RCVD):
            raise RuntimeError(f"cannot send in state {self.state}")
        self._send_buffer.extend(data)
        host = self.host
        host.begin_tx_batch()
        try:
            self._pump()
        finally:
            host.end_tx_batch()

    def close(self) -> None:
        """Graceful close: FIN once the send buffer drains."""
        if self.state in (TcpState.CLOSED, TcpState.FIN_WAIT, TcpState.LAST_ACK):
            return
        self._fin_pending = True
        host = self.host
        host.begin_tx_batch()
        try:
            self._pump()
        finally:
            host.end_tx_batch()

    def abort(self) -> None:
        """Send RST and drop the connection."""
        if self.state == TcpState.CLOSED:
            return
        self.reset_sent = True
        self._emit(Flags.RST)
        self._enter_closed()

    # ------------------------------------------------- retransmission timer

    def _queue_retx(self, flags: int, payload: bytes, seq: int, consumed: int) -> None:
        """Track an in-flight segment for retransmission (unreliable only)."""
        if self.reliable:
            return
        self._retx_queue.append((seq, flags, payload, consumed))
        self._arm_retx()

    def _arm_retx(self) -> None:
        if self._retx_event is None:
            self._retx_event = self.host.sim.schedule(self._rto, self._on_rto)

    def _cancel_retx(self) -> None:
        if self._retx_event is not None:
            self._retx_event.cancel()
            self._retx_event = None

    def _on_rto(self) -> None:
        self._retx_event = None
        if self.state == TcpState.CLOSED or not self._retx_queue:
            return
        seq, flags, payload, consumed = self._retx_queue[0]
        limit = self.SYN_RETRIES if flags & Flags.SYN else self.DATA_RETRIES
        if self._retries >= limit:
            # The path is gone (blackout, persistent loss, silent drop):
            # give up locally rather than retrying forever.
            self.timed_out = True
            self.host.sim.bus.incr("tcp.timeout")
            self._enter_closed()
            return
        self._retries += 1
        self.retransmits += 1
        pure_syn = bool(flags & Flags.SYN) and not flags & Flags.ACK
        self.host.sim.bus.incr("tcp.syn.retry" if pure_syn else "tcp.retransmit")
        self._emit(flags, payload=payload, seq=seq)
        self._rto = min(self._rto * 2.0, self.RTO_MAX)
        self._arm_retx()

    def _ack_advance(self, ack: int) -> None:
        """Fold one cumulative ACK into the send state."""
        if self.reliable:
            if ack > self._snd_una:
                self._snd_una = ack
            return
        if _seq_delta(ack, self._snd_una) <= 0:
            return
        self._snd_una = ack
        while self._retx_queue:
            seq, _flags, _payload, consumed = self._retx_queue[0]
            if _seq_delta(ack, seq + consumed) >= 0:
                self._retx_queue.pop(0)
            else:
                break
        # Forward progress: restart the timer at the base RTO for
        # whatever is still outstanding.
        self._retries = 0
        self._rto = self.RTO_INITIAL
        self._cancel_retx()
        if self._retx_queue:
            self._arm_retx()

    # ------------------------------------------------------------- internals

    def _enter_closed(self) -> None:
        if self.state != TcpState.CLOSED:
            self.state = TcpState.CLOSED
            self._cancel_retx()
            self.host.forget(self)
            self.on_closed()

    def _pump(self) -> None:
        """Send as much buffered data as the peer's window allows."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            return
        while self._send_buffer:
            in_flight = (
                self._snd_nxt - self._snd_una if self.reliable
                else _seq_delta(self._snd_nxt, self._snd_una)
            )
            room = self._peer_window - in_flight
            if room <= 0:
                break
            chunk = bytes(self._send_buffer[: min(self.MSS, room)])
            del self._send_buffer[: len(chunk)]
            self._emit(Flags.PSH | Flags.ACK, payload=chunk)
            self._queue_retx(Flags.PSH | Flags.ACK, chunk, self._snd_nxt, len(chunk))
            self._snd_nxt += len(chunk)
            self.bytes_sent += len(chunk)
        if self._fin_pending and not self._send_buffer and not self._fin_sent:
            self._fin_sent = True
            if self.fin_sent_first is None:
                self.fin_sent_first = not self.fin_received
            self._emit(Flags.FIN | Flags.ACK)
            self._queue_retx(Flags.FIN | Flags.ACK, b"", self._snd_nxt, 1)
            self._snd_nxt += 1  # FIN consumes one sequence number
            self.state = (
                TcpState.LAST_ACK if self.state == TcpState.CLOSE_WAIT else TcpState.FIN_WAIT
            )

    def handle_segment(self, seg: Segment) -> None:
        """Process one incoming segment (called by the host)."""
        if seg.tsval is not None:
            self._last_tsval_seen = seg.tsval

        if seg.has(Flags.RST):
            self.reset_received = True
            self.on_reset()
            self._enter_closed()
            return

        if self.state == TcpState.SYN_SENT:
            if seg.has(Flags.SYN) and seg.has(Flags.ACK):
                self._rcv_nxt = (seg.seq + 1) & 0xFFFFFFFF
                self._ack_advance(seg.ack)
                self._peer_window = seg.window
                self.state = TcpState.ESTABLISHED
                self._emit(Flags.ACK)
                self.on_connected()
                self._pump()
            return

        if self.state == TcpState.SYN_RCVD:
            if not self.reliable and seg.is_syn:
                # The peer retried its SYN: our SYN/ACK was lost.
                self.retransmits += 1
                self.host.sim.bus.incr("tcp.retransmit")
                self._emit(Flags.SYN | Flags.ACK, seq=self._isn)
                return
            if seg.has(Flags.ACK):
                self._ack_advance(seg.ack)
                self._peer_window = seg.window
                self.state = TcpState.ESTABLISHED
                self.on_connected()
                self._pump()
            # Fall through: the handshake ACK may carry data (it does not
            # in this model, but be permissive).
            if not seg.payload:
                return

        if not self.reliable and seg.has(Flags.SYN) and seg.has(Flags.ACK):
            # Duplicate SYN/ACK (our handshake ACK was lost): re-ACK so
            # the peer leaves SYN_RCVD.
            self._emit(Flags.ACK)
            return

        if seg.has(Flags.ACK):
            self._ack_advance(seg.ack)
            self._peer_window = seg.window
            if self.state == TcpState.LAST_ACK and self._snd_una >= self._snd_nxt:
                self._enter_closed()
                return
            self._pump()

        if not self.reliable:
            if seg.payload or seg.has(Flags.FIN):
                self._receive_sequenced(seg)
            return

        if seg.payload:
            self._rcv_nxt = (seg.seq + len(seg.payload)) & 0xFFFFFFFF
            self.bytes_received += len(seg.payload)
            self._emit(Flags.ACK)
            self.on_data(seg.payload)
            # on_data may have closed/aborted us; nothing further to do then.
            if self.state == TcpState.CLOSED:
                return

        if seg.has(Flags.FIN):
            self.fin_received = True
            if self.fin_sent_first is None:
                self.fin_sent_first = False
            self._rcv_nxt = (seg.seq + len(seg.payload) + 1) & 0xFFFFFFFF
            self._emit(Flags.ACK)
            self.on_remote_fin()
            if self.state == TcpState.FIN_WAIT:
                self._enter_closed()
            elif self.state == TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT

    # ------------------------------------------ sequence-checked receive

    def _receive_sequenced(self, seg: Segment) -> None:
        """Receive path on unreliable networks: dedup, reorder, reassemble."""
        end = seg.seq + len(seg.payload) + (1 if seg.has(Flags.FIN) else 0)
        bus = self.host.sim.bus
        if _seq_delta(end, self._rcv_nxt) <= 0:
            # Wholly duplicate (a retransmission or a network-level copy):
            # re-ACK so the sender can clear its queue.
            bus.incr("tcp.dup.dropped")
            self._emit(Flags.ACK)
            return
        if _seq_delta(seg.seq, self._rcv_nxt) > 0:
            # Future segment: hold it until the gap fills, and dup-ACK to
            # advertise where the hole is.
            if seg.seq not in self._ooo:
                self._ooo[seg.seq] = seg
                bus.incr("tcp.ooo.buffered")
            self._emit(Flags.ACK)
            return
        self._deliver_in_order(seg)
        if self.state != TcpState.CLOSED:
            self._drain_ooo()

    def _deliver_in_order(self, seg: Segment) -> None:
        """Deliver a segment starting at or before ``rcv_nxt`` (trims overlap)."""
        payload = seg.payload
        offset = _seq_delta(self._rcv_nxt, seg.seq)
        if offset > 0:
            payload = payload[offset:]
        if payload:
            self._rcv_nxt = (seg.seq + len(seg.payload)) & 0xFFFFFFFF
            self.bytes_received += len(payload)
            self._emit(Flags.ACK)
            self.on_data(payload)
            if self.state == TcpState.CLOSED:
                return
        if seg.has(Flags.FIN):
            self.fin_received = True
            if self.fin_sent_first is None:
                self.fin_sent_first = False
            self._rcv_nxt = (seg.seq + len(seg.payload) + 1) & 0xFFFFFFFF
            self._emit(Flags.ACK)
            self.on_remote_fin()
            if self.state == TcpState.FIN_WAIT:
                self._enter_closed()
            elif self.state == TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT

    def _drain_ooo(self) -> None:
        """Deliver buffered future segments made contiguous by new data."""
        progressed = True
        while progressed and self._ooo and self.state != TcpState.CLOSED:
            progressed = False
            for seq in sorted(self._ooo, key=lambda s: _seq_delta(s, self._rcv_nxt)):
                seg = self._ooo[seq]
                end = seq + len(seg.payload) + (1 if seg.has(Flags.FIN) else 0)
                if _seq_delta(end, self._rcv_nxt) <= 0:
                    del self._ooo[seq]      # overtaken: wholly duplicate now
                    progressed = True
                elif _seq_delta(seq, self._rcv_nxt) <= 0:
                    del self._ooo[seq]
                    self._deliver_in_order(seg)
                    progressed = True
                    break                   # rcv_nxt moved; rescan
