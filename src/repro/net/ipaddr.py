"""Small IPv4 helpers used throughout the network model."""

from __future__ import annotations

import random
from typing import Tuple

__all__ = ["ip_to_int", "int_to_ip", "parse_cidr", "random_ip_in", "in_cidr"]


def ip_to_int(ip: str) -> int:
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_cidr(cidr: str) -> Tuple[int, int]:
    """Return (network_int, prefix_len)."""
    addr, _, plen = cidr.partition("/")
    prefix = int(plen) if plen else 32
    if not 0 <= prefix <= 32:
        raise ValueError(f"bad prefix length in {cidr!r}")
    base = ip_to_int(addr)
    mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
    return base & mask, prefix


def in_cidr(ip: str, cidr: str) -> bool:
    base, prefix = parse_cidr(cidr)
    mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
    return (ip_to_int(ip) & mask) == base


def random_ip_in(cidr: str, rng: random.Random) -> str:
    """Sample a host address uniformly from a CIDR block."""
    base, prefix = parse_cidr(cidr)
    span = 1 << (32 - prefix)
    return int_to_ip(base + rng.randrange(span))
