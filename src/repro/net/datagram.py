"""UDP datagram support for the network substrate.

The paper's measurements are TCP-only (and so is the GFW model), but the
Shadowsocks protocol includes a UDP relay; the library implements it for
completeness.  Datagrams are routed by the same Network with the same
latency model; middleboxes may inspect them via ``process_datagram``
(default: pass through untouched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Datagram", "UdpEndpoint"]


@dataclass
class Datagram:
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    payload: bytes
    ttl: int = 64
    timestamp: float = field(default=0.0, compare=False)

    @property
    def source(self) -> Tuple[str, int]:
        return (self.src_ip, self.src_port)

    def copy(self, **changes) -> "Datagram":
        new = Datagram(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload=self.payload,
            ttl=self.ttl,
            timestamp=self.timestamp,
        )
        for name, value in changes.items():
            if name not in _DATAGRAM_FIELDS:
                raise TypeError(f"copy() got an unexpected field {name!r}")
            setattr(new, name, value)
        return new

    def __repr__(self) -> str:
        return (f"<UDP {self.src_ip}:{self.src_port} > "
                f"{self.dst_ip}:{self.dst_port} len={len(self.payload)}>")


_DATAGRAM_FIELDS = frozenset(Datagram.__dataclass_fields__)


class UdpEndpoint:
    """A bound UDP port on a host."""

    def __init__(self, host, port: int):
        self.host = host
        self.port = port
        self.on_datagram: Callable[[Datagram], None] = lambda dgram: None
        self.received: int = 0
        self.sent: int = 0

    def send(self, dst_ip: str, dst_port: int, payload: bytes) -> None:
        dgram = Datagram(
            src_ip=self.host.ip,
            dst_ip=dst_ip,
            src_port=self.port,
            dst_port=dst_port,
            payload=payload,
            ttl=self.host.default_ttl,
        )
        self.sent += 1
        self.host.udp_log.append((self.host.sim.now, True, dgram))
        self.host.network.send_datagram(dgram)

    def deliver(self, dgram: Datagram) -> None:
        self.received += 1
        self.host.udp_log.append((self.host.sim.now, False, dgram))
        self.on_datagram(dgram)

    def close(self) -> None:
        self.host.udp_unbind(self.port)
