"""TCP/IP segment model.

A :class:`Segment` carries exactly the header fields the paper fingerprints:
IP TTL and ID, TCP ports, flags, sequence/ack numbers, receive window, and
the TCP timestamp option (TSval/TSecr).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

__all__ = ["Flags", "Segment", "SegmentBurst",
           "flag_words", "seqs", "lengths", "payloads"]


class Flags:
    """TCP flag bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    @staticmethod
    def render(flags: int) -> str:
        names = []
        for bit, name in ((0x02, "SYN"), (0x10, "ACK"), (0x08, "PSH"),
                          (0x01, "FIN"), (0x04, "RST")):
            if flags & bit:
                names.append(name)
        return "/".join(names) if names else "-"


@dataclass(slots=True)
class Segment:
    """One TCP segment with the IP fields the analysis cares about.

    ``slots=True``: segments are the most-allocated objects in a run
    (one per delivery, plus copies at every TTL/impairment mutation), so
    dropping the per-instance ``__dict__`` measurably cuts allocation
    and attribute-access cost on the datapath.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    flags: int
    seq: int = 0
    ack: int = 0
    payload: bytes = b""
    window: int = 65535
    ttl: int = 64
    ip_id: int = 0
    tsval: Optional[int] = None
    tsecr: Optional[int] = None
    # Capture timestamp, stamped by the network at delivery points.
    timestamp: float = field(default=0.0, compare=False)

    def has(self, flag_bits: int) -> bool:
        return bool(self.flags & flag_bits)

    @property
    def is_syn(self) -> bool:
        return self.has(Flags.SYN) and not self.has(Flags.ACK)

    @property
    def is_data(self) -> bool:
        return len(self.payload) > 0

    def copy(self, **changes) -> "Segment":
        # Hand-rolled clone: ``dataclasses.replace`` re-enters the
        # generated ``__init__`` through keyword plumbing and is one of
        # the hottest calls on the datapath (one copy per delivery).
        new = object.__new__(Segment)
        new.src_ip = self.src_ip
        new.dst_ip = self.dst_ip
        new.src_port = self.src_port
        new.dst_port = self.dst_port
        new.flags = self.flags
        new.seq = self.seq
        new.ack = self.ack
        new.payload = self.payload
        new.window = self.window
        new.ttl = self.ttl
        new.ip_id = self.ip_id
        new.tsval = self.tsval
        new.tsecr = self.tsecr
        new.timestamp = self.timestamp
        for name, value in changes.items():
            if name not in _SEGMENT_FIELDS:
                raise TypeError(f"copy() got an unexpected field {name!r}")
            setattr(new, name, value)
        return new

    def arrived(self, ttl: int, timestamp: float) -> "Segment":
        """Arrival clone: :meth:`copy` specialized for the delivery leg.

        Every delivered segment is cloned exactly once with a new TTL and
        timestamp; skipping ``copy``'s keyword-validation loop keeps that
        per-delivery cost to plain slot stores.
        """
        new = object.__new__(Segment)
        new.src_ip = self.src_ip
        new.dst_ip = self.dst_ip
        new.src_port = self.src_port
        new.dst_port = self.dst_port
        new.flags = self.flags
        new.seq = self.seq
        new.ack = self.ack
        new.payload = self.payload
        new.window = self.window
        new.ttl = ttl
        new.ip_id = self.ip_id
        new.tsval = self.tsval
        new.tsecr = self.tsecr
        new.timestamp = timestamp
        return new

    def flow(self):
        """4-tuple identifying the direction-sensitive flow."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    def reverse_flow(self):
        return (self.dst_ip, self.dst_port, self.src_ip, self.src_port)

    def conn_key(self):
        """Direction-insensitive connection key."""
        return tuple(sorted((self.flow(), self.reverse_flow())))

    def __repr__(self) -> str:  # compact, capture-log friendly
        return (
            f"<{self.src_ip}:{self.src_port} > {self.dst_ip}:{self.dst_port} "
            f"[{Flags.render(self.flags)}] seq={self.seq} ack={self.ack} "
            f"len={len(self.payload)} win={self.window} ttl={self.ttl}>"
        )


_SEGMENT_FIELDS = frozenset(Segment.__dataclass_fields__)


# -------------------------------------------------- struct-of-arrays views
#
# Column views over any segment sequence.  The batched datapath classifies
# a burst by scanning these flat lists (C-speed comprehensions) instead of
# re-touching each Segment object per predicate; SegmentBurst's methods
# delegate here so producers (transmit bursts) and consumers (the
# receive-side classifier in Host.deliver_burst/TcpConnection.handle_burst)
# share one definition.

def flag_words(segs) -> List[int]:
    """Flag words of a segment run, in order."""
    return [seg.flags for seg in segs]


def seqs(segs) -> List[int]:
    """Sequence numbers of a segment run, in order."""
    return [seg.seq for seg in segs]


def lengths(segs) -> List[int]:
    """Payload lengths of a segment run, in order."""
    return [len(seg.payload) for seg in segs]


def payloads(segs) -> List[bytes]:
    """Payloads of a segment run, in order."""
    return [seg.payload for seg in segs]


class SegmentBurst:
    """A burst of same-flow segments moved through the datapath as one unit.

    Endpoints emit one burst per flow per event (e.g. every MSS chunk a
    TCP pump produces in one callback); the network routes the burst
    through the middlebox chain and schedules a single delivery event for
    it.  The shared path scalars (the directional 4-tuple) live once on
    the burst; ``seqs``/``lengths``/``flag_words``/``payloads`` are lazy
    struct-of-arrays views over the member segments for vector-style
    consumers (detector features, benchmarks).

    Segments are stored in emission order, which the whole datapath
    preserves — burst processing is byte-identical to per-segment
    processing.
    """

    __slots__ = ("src_ip", "dst_ip", "src_port", "dst_port", "segments")

    def __init__(self, segments: List[Segment]):
        if not segments:
            raise ValueError("a SegmentBurst needs at least one segment")
        first = segments[0]
        self.src_ip = first.src_ip
        self.dst_ip = first.dst_ip
        self.src_port = first.src_port
        self.dst_port = first.dst_port
        self.segments = segments

    def append(self, seg: Segment) -> None:
        self.segments.append(seg)

    def flow(self):
        """The shared direction-sensitive flow 4-tuple."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    # ------------------------------------------------ struct-of-arrays views

    def seqs(self) -> List[int]:
        return seqs(self.segments)

    def lengths(self) -> List[int]:
        return lengths(self.segments)

    def flag_words(self) -> List[int]:
        return flag_words(self.segments)

    def payloads(self) -> List[bytes]:
        return payloads(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __getitem__(self, index):
        return self.segments[index]

    def __repr__(self) -> str:
        return (f"<burst {self.src_ip}:{self.src_port} > "
                f"{self.dst_ip}:{self.dst_port} n={len(self.segments)}>")
