"""TCP/IP segment model.

A :class:`Segment` carries exactly the header fields the paper fingerprints:
IP TTL and ID, TCP ports, flags, sequence/ack numbers, receive window, and
the TCP timestamp option (TSval/TSecr).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["Flags", "Segment"]


class Flags:
    """TCP flag bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    @staticmethod
    def render(flags: int) -> str:
        names = []
        for bit, name in ((0x02, "SYN"), (0x10, "ACK"), (0x08, "PSH"),
                          (0x01, "FIN"), (0x04, "RST")):
            if flags & bit:
                names.append(name)
        return "/".join(names) if names else "-"


@dataclass(slots=True)
class Segment:
    """One TCP segment with the IP fields the analysis cares about.

    ``slots=True``: segments are the most-allocated objects in a run
    (one per delivery, plus copies at every TTL/impairment mutation), so
    dropping the per-instance ``__dict__`` measurably cuts allocation
    and attribute-access cost on the datapath.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    flags: int
    seq: int = 0
    ack: int = 0
    payload: bytes = b""
    window: int = 65535
    ttl: int = 64
    ip_id: int = 0
    tsval: Optional[int] = None
    tsecr: Optional[int] = None
    # Capture timestamp, stamped by the network at delivery points.
    timestamp: float = field(default=0.0, compare=False)

    def has(self, flag_bits: int) -> bool:
        return bool(self.flags & flag_bits)

    @property
    def is_syn(self) -> bool:
        return self.has(Flags.SYN) and not self.has(Flags.ACK)

    @property
    def is_data(self) -> bool:
        return len(self.payload) > 0

    def copy(self, **changes) -> "Segment":
        return replace(self, **changes)

    def flow(self):
        """4-tuple identifying the direction-sensitive flow."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    def reverse_flow(self):
        return (self.dst_ip, self.dst_port, self.src_ip, self.src_port)

    def conn_key(self):
        """Direction-insensitive connection key."""
        return tuple(sorted((self.flow(), self.reverse_flow())))

    def __repr__(self) -> str:  # compact, capture-log friendly
        return (
            f"<{self.src_ip}:{self.src_port} > {self.dst_ip}:{self.dst_port} "
            f"[{Flags.render(self.flags)}] seq={self.seq} ack={self.ack} "
            f"len={len(self.payload)} win={self.window} ttl={self.ttl}>"
        )
