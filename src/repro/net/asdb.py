"""Autonomous-system database for the prober address space.

Encodes the AS mix the paper measured (Table 3): AS4837 and AS4134 carry
the bulk of probes, with a long tail of smaller Chinese ASes.  Prefixes
are chosen to contain the specific high-frequency prober addresses of
Table 2 so those exact IPs resolve to the right AS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .ipaddr import in_cidr, random_ip_in

__all__ = ["ASInfo", "AS_TABLE", "PAPER_AS_COUNTS", "lookup_asn", "ASDatabase"]


@dataclass(frozen=True)
class ASInfo:
    asn: int
    name: str
    prefixes: Tuple[str, ...]


# The measured per-AS probe counts from Table 3 of the paper.
PAPER_AS_COUNTS: Dict[int, int] = {
    4837: 6262,
    4134: 5188,
    17622: 315,
    17621: 263,
    17816: 104,
    4847: 101,
    58563: 44,
    17638: 17,
    9808: 2,
    4812: 1,
    24400: 1,
    56046: 1,
    56047: 1,
}

AS_TABLE: List[ASInfo] = [
    ASInfo(4837, "CHINA169-BACKBONE CNCGROUP China169 Backbone",
           ("175.42.0.0/16", "124.234.0.0/15", "125.32.0.0/13")),
    ASInfo(4134, "CHINANET-BACKBONE No.31, Jin-rong Street",
           ("113.128.0.0/15", "221.212.0.0/15", "112.80.0.0/13", "116.252.0.0/15")),
    ASInfo(17622, "CNCGROUP-GZ China Unicom Guangzhou network",
           ("58.248.0.0/13",)),
    ASInfo(17621, "CNCGROUP-SH China Unicom Shanghai network",
           ("223.166.0.0/15",)),
    ASInfo(17816, "CHINA169-GZ China Unicom IP network China169 Guangdong",
           ("119.120.0.0/13",)),
    ASInfo(4847, "CNIX-AP China Networks Inter-Exchange",
           ("210.51.0.0/16",)),
    ASInfo(58563, "CHINANET-HUBEI-IDC Hubei province",
           ("111.47.0.0/16",)),
    ASInfo(17638, "CHINATELECOM-TJ Tianjin",
           ("60.24.0.0/13",)),
    ASInfo(9808, "CMNET-GD Guangdong Mobile",
           ("120.196.0.0/14",)),
    ASInfo(4812, "CHINANET-SH-AP China Telecom Shanghai",
           ("116.224.0.0/12",)),
    ASInfo(24400, "CMNET-SH Shanghai Mobile",
           ("117.184.0.0/14",)),
    ASInfo(56046, "CMNET-JS Jiangsu Mobile",
           ("223.64.0.0/11",)),
    ASInfo(56047, "CMNET-HN Hunan Mobile",
           ("223.144.0.0/12",)),
]

_BY_ASN: Dict[int, ASInfo] = {info.asn: info for info in AS_TABLE}


def lookup_asn(ip: str) -> Optional[int]:
    """Longest-prefix-free lookup (prefixes here are disjoint)."""
    for info in AS_TABLE:
        for prefix in info.prefixes:
            if in_cidr(ip, prefix):
                return info.asn
    return None


class ASDatabase:
    """Sampler over the prober address space with the Table 3 AS weights."""

    def __init__(self, weights: Optional[Dict[int, int]] = None):
        self.weights = dict(weights or PAPER_AS_COUNTS)
        unknown = set(self.weights) - set(_BY_ASN)
        if unknown:
            raise ValueError(f"no prefix data for ASNs {sorted(unknown)}")
        self._asns = sorted(self.weights)
        self._cum = []
        total = 0
        for asn in self._asns:
            total += self.weights[asn]
            self._cum.append(total)
        self._total = total

    def sample_asn(self, rng: random.Random) -> int:
        point = rng.randrange(self._total)
        for asn, cum in zip(self._asns, self._cum):
            if point < cum:
                return asn
        raise AssertionError("unreachable")

    def sample_ip(self, rng: random.Random, asn: Optional[int] = None) -> str:
        """Sample one address, optionally pinned to a specific AS."""
        chosen = asn if asn is not None else self.sample_asn(rng)
        info = _BY_ASN[chosen]
        prefix = rng.choice(info.prefixes)
        return random_ip_in(prefix, rng)

    def info(self, asn: int) -> ASInfo:
        return _BY_ASN[asn]
