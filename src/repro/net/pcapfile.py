"""Export captures to (and re-import from) real libpcap files.

Segments are serialized as IPv4+TCP packets (LINKTYPE_RAW), with correct
header checksums and the TCP timestamp option when present, so a capture
from the simulator opens cleanly in Wireshark/tcpdump — handy for
inspecting what the GFW's probes actually look like on the wire.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Tuple

from .capture import Capture, CaptureRecord
from .ipaddr import int_to_ip, ip_to_int
from .packet import Flags, Segment

__all__ = ["segment_to_packet", "packet_to_segment", "write_pcap", "read_pcap"]

_PCAP_MAGIC = 0xA1B2C3D4
_LINKTYPE_RAW = 101  # raw IPv4/IPv6
_TCP_PROTO = 6


def _checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f">{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def segment_to_packet(seg: Segment) -> bytes:
    """Serialize one segment as an IPv4+TCP packet."""
    # TCP options: timestamps (kind 8) padded to a 4-byte boundary.
    options = b""
    if seg.tsval is not None:
        options = b"\x01\x01" + struct.pack(
            ">BBII", 8, 10, seg.tsval & 0xFFFFFFFF, (seg.tsecr or 0) & 0xFFFFFFFF
        )
    data_offset = (20 + len(options)) // 4
    tcp_header = struct.pack(
        ">HHIIBBHHH",
        seg.src_port, seg.dst_port,
        seg.seq & 0xFFFFFFFF, seg.ack & 0xFFFFFFFF,
        data_offset << 4, seg.flags & 0x3F,
        min(seg.window, 0xFFFF), 0, 0,
    ) + options
    pseudo = struct.pack(
        ">IIBBH", ip_to_int(seg.src_ip), ip_to_int(seg.dst_ip), 0, _TCP_PROTO,
        len(tcp_header) + len(seg.payload),
    )
    tcp_checksum = _checksum(pseudo + tcp_header + seg.payload)
    tcp_header = tcp_header[:16] + struct.pack(">H", tcp_checksum) + tcp_header[18:]

    total_len = 20 + len(tcp_header) + len(seg.payload)
    ip_header = struct.pack(
        ">BBHHHBBHII",
        0x45, 0, total_len,
        seg.ip_id & 0xFFFF, 0,
        seg.ttl & 0xFF, _TCP_PROTO, 0,
        ip_to_int(seg.src_ip), ip_to_int(seg.dst_ip),
    )
    ip_checksum = _checksum(ip_header)
    ip_header = ip_header[:10] + struct.pack(">H", ip_checksum) + ip_header[12:]
    return ip_header + tcp_header + seg.payload


def packet_to_segment(packet: bytes, timestamp: float = 0.0) -> Segment:
    """Parse an IPv4+TCP packet back into a Segment."""
    if len(packet) < 40:
        raise ValueError("packet too short for IPv4+TCP")
    version_ihl = packet[0]
    if version_ihl >> 4 != 4:
        raise ValueError("not an IPv4 packet")
    ihl = (version_ihl & 0x0F) * 4
    total_len, ip_id = struct.unpack(">HH", packet[2:6])
    ttl, proto = packet[8], packet[9]
    if proto != _TCP_PROTO:
        raise ValueError(f"not TCP (protocol {proto})")
    src_ip = int_to_ip(struct.unpack(">I", packet[12:16])[0])
    dst_ip = int_to_ip(struct.unpack(">I", packet[16:20])[0])

    tcp = packet[ihl:total_len]
    src_port, dst_port, seq, ack = struct.unpack(">HHII", tcp[:12])
    data_offset = (tcp[12] >> 4) * 4
    flags = tcp[13] & 0x3F
    window = struct.unpack(">H", tcp[14:16])[0]
    tsval = tsecr = None
    options = tcp[20:data_offset]
    i = 0
    while i < len(options):
        kind = options[i]
        if kind == 0:
            break
        if kind == 1:
            i += 1
            continue
        if i + 1 >= len(options):
            break
        length = options[i + 1]
        if kind == 8 and length == 10:
            tsval, tsecr = struct.unpack(">II", options[i + 2 : i + 10])
        i += max(length, 2)
    return Segment(
        src_ip=src_ip, dst_ip=dst_ip, src_port=src_port, dst_port=dst_port,
        flags=flags, seq=seq, ack=ack, payload=tcp[data_offset:],
        window=window, ttl=ttl, ip_id=ip_id, tsval=tsval,
        tsecr=tsecr if tsval is not None else None, timestamp=timestamp,
    )


def write_pcap(path, records: Iterable[CaptureRecord]) -> int:
    """Write capture records to a pcap file; returns the packet count."""
    count = 0
    with open(path, "wb") as f:
        f.write(struct.pack(">IHHiIII", _PCAP_MAGIC, 2, 4, 0, 0, 65535,
                            _LINKTYPE_RAW))
        for rec in records:
            packet = segment_to_packet(rec.segment)
            seconds = int(rec.time)
            micros = int(round((rec.time - seconds) * 1_000_000))
            f.write(struct.pack(">IIII", seconds, micros, len(packet),
                                len(packet)))
            f.write(packet)
            count += 1
    return count


def read_pcap(path) -> List[Tuple[float, Segment]]:
    """Read a pcap file written by :func:`write_pcap`."""
    out: List[Tuple[float, Segment]] = []
    with open(path, "rb") as f:
        header = f.read(24)
        if len(header) < 24:
            raise ValueError("truncated pcap header")
        magic = struct.unpack(">I", header[:4])[0]
        if magic != _PCAP_MAGIC:
            raise ValueError(f"bad pcap magic {magic:#x}")
        linktype = struct.unpack(">I", header[20:24])[0]
        if linktype != _LINKTYPE_RAW:
            raise ValueError(f"unsupported linktype {linktype}")
        while True:
            rec_header = f.read(16)
            if len(rec_header) < 16:
                break
            seconds, micros, caplen, _ = struct.unpack(">IIII", rec_header)
            packet = f.read(caplen)
            time = seconds + micros / 1_000_000
            out.append((time, packet_to_segment(packet, time)))
    return out


def export_capture(path, capture: Capture, received_only: bool = False) -> int:
    """Convenience wrapper: dump a host's capture to disk."""
    records = capture.received() if received_only else capture.records
    return write_pcap(path, records)
