"""Simulated hosts: endpoints that own TCP connections.

A host can hold many IP addresses (``extra_ips``), which is how the GFW's
prober fleet — thousands of source addresses driven by a handful of
centralized processes — is modeled without thousands of host objects.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, Optional, Tuple

from .capture import Capture
from .packet import Flags, Segment, SegmentBurst
from .tcp import TcpConnection, TcpState

__all__ = ["Host"]

# Default Linux ephemeral port range (net.ipv4.ip_local_port_range); the
# paper observes ~90% of probes within it (Figure 5).
LINUX_EPHEMERAL_RANGE = (32768, 60999)


class Host:
    """A network endpoint with its own clock, ports, and capture."""

    # Burst the transmit side (see ``begin_tx_batch``).  Class-level so
    # equivalence tests — and ``REPRO_NET_BATCH=0`` — can force the
    # historical one-event-per-segment datapath; both paths produce
    # byte-identical runs (property-tested), batching is purely faster.
    tx_batching = os.environ.get("REPRO_NET_BATCH", "1") not in ("0", "false", "no")

    def __init__(
        self,
        sim,
        network,
        ip: str,
        name: Optional[str] = None,
        *,
        default_ttl: int = 64,
        tsval_rate: float = 1000.0,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.network = network
        self.ip = ip
        self.name = name or ip
        self.default_ttl = default_ttl
        self.rng = rng or random.Random(hash(ip) & 0xFFFFFFFF)
        self.capture = Capture()

        # TCP timestamp clock: value = (boot_offset + rate * now) mod 2^32.
        self.tsval_rate = tsval_rate
        self._tsval_offset = self.rng.randrange(1 << 32)

        self._connections: Dict[Tuple, TcpConnection] = {}
        self._listeners: Dict[int, Callable[[TcpConnection], object]] = {}
        self._next_ephemeral = self.rng.randint(*LINUX_EPHEMERAL_RANGE)
        self.extra_ips: set = set()

        # Transmit batching: while a batch is open (depth-counted, so
        # contexts nest), outbound segments are buffered and flushed as
        # per-flow bursts when the outermost context closes.  Captures
        # are still recorded at the ``transmit`` call site, so trace
        # order is unchanged.
        self._tx_depth = 0
        self._tx_buffer: list = []

        # UDP: bound ports and a (time, sent, datagram) log.
        self._udp_ports: Dict[int, object] = {}
        self.udp_log: list = []

        network.attach(self)

    # ----------------------------------------------------------------- clock

    def tsval_now(self) -> int:
        return int(self._tsval_offset + self.tsval_rate * self.sim.now) & 0xFFFFFFFF

    def next_ip_id(self) -> int:
        # The paper finds "no clear pattern" in prober IP IDs; model as
        # random.  ``_randbelow`` is ``randrange(stop)`` minus the
        # argument-normalization wrapper: the identical draw stream (see
        # repro.randutil) at a fraction of the cost, and this runs once
        # per emitted segment.
        return self.rng._randbelow(1 << 16)

    def alloc_port(self) -> int:
        lo, hi = LINUX_EPHEMERAL_RANGE
        port = self._next_ephemeral
        self._next_ephemeral = port + 1 if port < hi else lo
        return port

    # ------------------------------------------------------------------- API

    def listen(self, port: int, app_factory: Callable[[TcpConnection], object]) -> None:
        """Accept connections on ``port``; ``app_factory(conn)`` wires an app."""
        if port in self._listeners:
            raise ValueError(f"port {port} already listening on {self.name}")
        self._listeners[port] = app_factory

    def unlisten(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        dst_ip: str,
        dst_port: int,
        *,
        src_ip: Optional[str] = None,
        src_port: Optional[int] = None,
        ttl: Optional[int] = None,
        tsval_source: Optional[Callable[[float], int]] = None,
    ) -> TcpConnection:
        """Create and open a client connection; returns immediately."""
        source = src_ip or self.ip
        if source != self.ip and source not in self.extra_ips:
            raise ValueError(f"{self.name} does not own source IP {source}")
        port = src_port if src_port is not None else self.alloc_port()
        conn = TcpConnection(
            self, source, port, dst_ip, dst_port, ttl=ttl, tsval_source=tsval_source
        )
        key = (source, port, dst_ip, dst_port)
        if key in self._connections:
            raise ValueError(f"connection collision on {key}")
        self._connections[key] = conn
        conn.open()
        return conn

    # ------------------------------------------------------------- transport

    def transmit(self, seg: Segment) -> None:
        """Hand a segment to the network (stamped by the sending capture)."""
        self.capture.record(seg, self.sim.now, sent=True)
        if self._tx_depth:
            self._tx_buffer.append(seg)
        else:
            self.network.send_segment(seg)

    def begin_tx_batch(self) -> None:
        """Open a transmit batch; segments buffer until the outermost
        :meth:`end_tx_batch` flushes them as per-flow bursts.

        A no-op when ``tx_batching`` is off — transmissions then hit the
        network immediately, one event per segment (the historical path).
        """
        if self.tx_batching:
            self._tx_depth += 1

    def end_tx_batch(self) -> None:
        if not self.tx_batching:
            return
        self._tx_depth -= 1
        if self._tx_depth == 0 and self._tx_buffer:
            self._flush_tx()

    def _flush_tx(self) -> None:
        """Hand buffered segments to the network, grouped into bursts.

        Consecutive runs sharing one directional flow 4-tuple become one
        burst — this preserves the *global* emission order exactly (no
        cross-flow reordering), so on-path observers see the identical
        segment sequence the unbatched datapath produced.
        """
        buffer = self._tx_buffer
        self._tx_buffer = []
        send = self.network.send_segment
        if len(buffer) == 1:
            send(buffer[0])
            return
        send_burst = self.network.send_segment_burst
        run: list = [buffer[0]]
        run_flow = buffer[0].flow()
        for seg in buffer[1:]:
            flow = seg.flow()
            if flow == run_flow:
                run.append(seg)
                continue
            if len(run) == 1:
                send(run[0])
            else:
                send_burst(SegmentBurst(run))
            run = [seg]
            run_flow = flow
        if len(run) == 1:
            send(run[0])
        else:
            send_burst(SegmentBurst(run))

    def deliver(self, seg: Segment) -> None:
        """Receive a segment from the network."""
        self.begin_tx_batch()
        try:
            self._deliver_one(seg)
        finally:
            self.end_tx_batch()

    def deliver_burst(self, segs) -> None:
        """Receive a same-flow burst (one delivery event) from the network.

        Routes through :meth:`deliver` per segment (batch contexts nest),
        so subclasses or tests overriding ``deliver`` see every arrival.
        """
        self.begin_tx_batch()
        try:
            for seg in segs:
                self.deliver(seg)
        finally:
            self.end_tx_batch()

    def _deliver_one(self, seg: Segment) -> None:
        self.capture.record(seg, self.sim.now, sent=False)
        key = (seg.dst_ip, seg.dst_port, seg.src_ip, seg.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(seg)
            return
        if seg.is_syn and seg.dst_port in self._listeners:
            self._accept(seg)
            return
        # Closed port: a real stack answers a stray SYN (or data) with RST.
        if not seg.has(Flags.RST):
            self._refuse(seg)

    def _accept(self, syn: Segment) -> None:
        conn = TcpConnection(
            self, syn.dst_ip, syn.dst_port, syn.src_ip, syn.src_port
        )
        conn.state = TcpState.SYN_RCVD
        conn._rcv_nxt = (syn.seq + 1) & 0xFFFFFFFF
        conn._peer_window = syn.window
        if syn.tsval is not None:
            conn._last_tsval_seen = syn.tsval
        key = (syn.dst_ip, syn.dst_port, syn.src_ip, syn.src_port)
        self._connections[key] = conn
        # Wire the application before the handshake completes so callbacks
        # set by the factory see every event.
        self._listeners[syn.dst_port](conn)
        syn_ack_seq = conn._snd_nxt
        conn._emit(Flags.SYN | Flags.ACK, seq=syn_ack_seq)
        conn._queue_retx(Flags.SYN | Flags.ACK, b"", syn_ack_seq, 1)
        conn._snd_nxt += 1

    def _refuse(self, seg: Segment) -> None:
        rst = Segment(
            src_ip=seg.dst_ip,
            dst_ip=seg.src_ip,
            src_port=seg.dst_port,
            dst_port=seg.src_port,
            flags=Flags.RST | Flags.ACK,
            seq=0,
            ack=(seg.seq + len(seg.payload) + (1 if seg.is_syn else 0)) & 0xFFFFFFFF,
            ttl=self.default_ttl,
            ip_id=self.next_ip_id(),
        )
        self.transmit(rst)

    # ------------------------------------------------------------------ UDP

    def udp_bind(self, port: Optional[int] = None):
        """Bind a UDP port; returns a :class:`UdpEndpoint`."""
        from .datagram import UdpEndpoint

        if port is None:
            port = self.alloc_port()
            while port in self._udp_ports:
                port = self.alloc_port()
        if port in self._udp_ports:
            raise ValueError(f"UDP port {port} already bound on {self.name}")
        endpoint = UdpEndpoint(self, port)
        self._udp_ports[port] = endpoint
        return endpoint

    def udp_unbind(self, port: int) -> None:
        self._udp_ports.pop(port, None)

    def deliver_datagram(self, dgram) -> None:
        endpoint = self._udp_ports.get(dgram.dst_port)
        if endpoint is not None:
            endpoint.deliver(dgram)
        # Unbound port: silently dropped (no ICMP model).

    def forget(self, conn: TcpConnection) -> None:
        key = (conn.local_ip, conn.local_port, conn.remote_ip, conn.remote_port)
        self._connections.pop(key, None)

    @property
    def active_connections(self) -> int:
        return len(self._connections)
