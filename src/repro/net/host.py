"""Simulated hosts: endpoints that own TCP connections.

A host can hold many IP addresses (``extra_ips``), which is how the GFW's
prober fleet — thousands of source addresses driven by a handful of
centralized processes — is modeled without thousands of host objects.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, Optional, Tuple

from .capture import Capture
from .packet import Flags, Segment, SegmentBurst
from .tcp import TcpConnection, TcpState

__all__ = ["Host"]

# Default Linux ephemeral port range (net.ipv4.ip_local_port_range); the
# paper observes ~90% of probes within it (Figure 5).
LINUX_EPHEMERAL_RANGE = (32768, 60999)

# Inlined pure-SYN test for the delivery fast path.
_SYN_ACK_MASK = Flags.SYN | Flags.ACK


class Host:
    """A network endpoint with its own clock, ports, and capture."""

    # Burst the transmit side (see ``begin_tx_batch``).  Class-level so
    # equivalence tests — and ``REPRO_NET_BATCH=0`` — can force the
    # historical one-event-per-segment datapath; both paths produce
    # byte-identical runs (property-tested), batching is purely faster.
    tx_batching = os.environ.get("REPRO_NET_BATCH", "1") not in ("0", "false", "no")

    # Burst the receive side (see ``deliver_burst``).  ``REPRO_NET_BATCH_RX=0``
    # is the kill switch forcing per-segment delivery; both paths are
    # byte-identical (property-tested).
    rx_batching = os.environ.get("REPRO_NET_BATCH_RX", "1") not in ("0", "false", "no")

    # Contract guard for the batched receive path.  ``deliver_burst``
    # historically promised that subclass/test overrides of ``deliver``
    # (or ``_deliver_one``) observe every arrival; the fast path hands a
    # whole run to the connection in one call, which would silently
    # bypass such hooks.  ``None`` means auto-detect in ``__init__``
    # (fast path only when both methods are the stock ones); a subclass
    # that overrides ``deliver`` but still wants batched receive can opt
    # in explicitly with ``batched_rx_ok = True``.
    batched_rx_ok: Optional[bool] = None

    def __init__(
        self,
        sim,
        network,
        ip: str,
        name: Optional[str] = None,
        *,
        default_ttl: int = 64,
        tsval_rate: float = 1000.0,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.network = network
        self.ip = ip
        self.name = name or ip
        self.default_ttl = default_ttl
        self.rng = rng or random.Random(hash(ip) & 0xFFFFFFFF)
        self.capture = Capture()

        # TCP timestamp clock: value = (boot_offset + rate * now) mod 2^32.
        self.tsval_rate = tsval_rate
        self._tsval_offset = self.rng.randrange(1 << 32)

        # Stock-delivery detection: when neither ``deliver`` nor
        # ``_deliver_one`` is overridden, the network may route arrivals
        # through the fused fast path (``_deliver_fast``) and the batched
        # receive path without bypassing any subclass/test hook.
        cls = type(self)
        self._stock_delivery = (cls.deliver is Host.deliver
                                and cls._deliver_one is Host._deliver_one)
        if self.batched_rx_ok is None:
            self.batched_rx_ok = self._stock_delivery

        self._connections: Dict[Tuple, TcpConnection] = {}
        self._listeners: Dict[int, Callable[[TcpConnection], object]] = {}
        self._next_ephemeral = self.rng.randint(*LINUX_EPHEMERAL_RANGE)
        self.extra_ips: set = set()

        # Transmit batching: while a batch is open (depth-counted, so
        # contexts nest), outbound segments are buffered and flushed as
        # per-flow bursts when the outermost context closes.  Captures
        # are still recorded at the ``transmit`` call site, so trace
        # order is unchanged.
        self._tx_depth = 0
        self._tx_buffer: list = []

        # UDP: bound ports and a (time, sent, datagram) log.
        self._udp_ports: Dict[int, object] = {}
        self.udp_log: list = []

        network.attach(self)

    # ----------------------------------------------------------------- clock

    def tsval_now(self) -> int:
        return int(self._tsval_offset + self.tsval_rate * self.sim.now) & 0xFFFFFFFF

    def next_ip_id(self) -> int:
        # The paper finds "no clear pattern" in prober IP IDs; model as
        # random.  ``_randbelow`` is ``randrange(stop)`` minus the
        # argument-normalization wrapper: the identical draw stream (see
        # repro.randutil) at a fraction of the cost, and this runs once
        # per emitted segment.
        return self.rng._randbelow(1 << 16)

    def alloc_port(self) -> int:
        lo, hi = LINUX_EPHEMERAL_RANGE
        port = self._next_ephemeral
        self._next_ephemeral = port + 1 if port < hi else lo
        return port

    # ------------------------------------------------------------------- API

    def listen(self, port: int, app_factory: Callable[[TcpConnection], object]) -> None:
        """Accept connections on ``port``; ``app_factory(conn)`` wires an app."""
        if port in self._listeners:
            raise ValueError(f"port {port} already listening on {self.name}")
        self._listeners[port] = app_factory

    def unlisten(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        dst_ip: str,
        dst_port: int,
        *,
        src_ip: Optional[str] = None,
        src_port: Optional[int] = None,
        ttl: Optional[int] = None,
        tsval_source: Optional[Callable[[float], int]] = None,
    ) -> TcpConnection:
        """Create and open a client connection; returns immediately."""
        source = src_ip or self.ip
        if source != self.ip and source not in self.extra_ips:
            raise ValueError(f"{self.name} does not own source IP {source}")
        port = src_port if src_port is not None else self.alloc_port()
        conn = TcpConnection(
            self, source, port, dst_ip, dst_port, ttl=ttl, tsval_source=tsval_source
        )
        key = (source, port, dst_ip, dst_port)
        if key in self._connections:
            raise ValueError(f"connection collision on {key}")
        self._connections[key] = conn
        conn.open()
        return conn

    # ------------------------------------------------------------- transport

    def transmit(self, seg: Segment) -> None:
        """Hand a segment to the network (stamped by the sending capture)."""
        # Inlined Capture.record fast path (tap-free buffering capture
        # appends one raw tuple); taps or disabled captures take the
        # full method.
        cap = self.capture
        if cap.enabled:
            if cap.taps:
                cap.record(seg, self.sim.now, sent=True)
            elif cap.buffering:
                cap._raw.append((self.sim.now, True, seg))
        if self._tx_depth:
            self._tx_buffer.append(seg)
        else:
            self.network.send_segment(seg)

    def begin_tx_batch(self) -> None:
        """Open a transmit batch; segments buffer until the outermost
        :meth:`end_tx_batch` flushes them as per-flow bursts.

        A no-op when ``tx_batching`` is off — transmissions then hit the
        network immediately, one event per segment (the historical path).
        """
        if self.tx_batching:
            self._tx_depth += 1

    def end_tx_batch(self) -> None:
        if not self.tx_batching:
            return
        self._tx_depth -= 1
        if self._tx_depth == 0 and self._tx_buffer:
            self._flush_tx()

    def _flush_tx(self) -> None:
        """Hand buffered segments to the network, grouped into bursts.

        Consecutive runs sharing one directional flow 4-tuple become one
        burst — this preserves the *global* emission order exactly (no
        cross-flow reordering), so on-path observers see the identical
        segment sequence the unbatched datapath produced.
        """
        buffer = self._tx_buffer
        self._tx_buffer = []
        send = self.network.send_segment
        if len(buffer) == 1:
            send(buffer[0])
            return
        send_burst = self.network.send_segment_burst
        head = buffer[0]
        run: list = [head]
        for seg in buffer[1:]:
            # Inline 4-tuple flow comparison (ports first: the cheapest
            # fields and the likeliest to differ between flows).
            if (seg.src_port == head.src_port
                    and seg.dst_port == head.dst_port
                    and seg.dst_ip == head.dst_ip
                    and seg.src_ip == head.src_ip):
                run.append(seg)
                continue
            if len(run) == 1:
                send(run[0])
            else:
                send_burst(SegmentBurst(run))
            head = seg
            run = [seg]
        if len(run) == 1:
            send(run[0])
        else:
            send_burst(SegmentBurst(run))

    def deliver(self, seg: Segment) -> None:
        """Receive a segment from the network.

        Inlines the begin/end transmit-batch bracket (identical
        semantics): delivery is the hottest caller of the batch context
        and the two extra method calls per segment showed up in
        profiles.
        """
        if not self.tx_batching:
            self._deliver_one(seg)
            return
        self._tx_depth += 1
        try:
            self._deliver_one(seg)
        finally:
            self._tx_depth -= 1
            if self._tx_depth == 0 and self._tx_buffer:
                self._flush_tx()

    def deliver_burst(self, segs) -> None:
        """Receive a same-flow burst (one delivery event) from the network.

        Fast path: when receive batching is on (``rx_batching``, kill
        switch ``REPRO_NET_BATCH_RX=0``) and this host's delivery hooks
        are stock (``batched_rx_ok``), the owning connection consumes a
        qualifying in-order prefix in one :meth:`TcpConnection.handle_burst`
        call — classification, ``rcv_nxt`` advance, and cumulative-ACK
        emission amortized across the run, with the ACKs leaving as one
        coalesced return burst when the transmit batch flushes.

        Everything else — no matching connection, overridden delivery
        hooks, or the unconsumed remainder of a burst (OOO data, FIN/RST
        tails, handshake segments) — routes through :meth:`deliver` per
        segment (batch contexts nest), so subclasses or tests overriding
        ``deliver`` see every arrival.  Both paths are byte-identical;
        batching is purely faster.
        """
        batching = self.tx_batching
        if batching:
            self._tx_depth += 1
        try:
            start = 0
            count = len(segs)
            # Instance-level monkeypatches of the delivery hooks (tests,
            # taps) force the dynamic per-segment path, same as class
            # overrides: every arrival must reach the patched hook.
            d = self.__dict__
            stock = ("deliver" not in d and "_deliver_one" not in d
                     and self._stock_delivery)
            if count > 1 and stock and self.rx_batching and self.batched_rx_ok:
                first = segs[0]
                conn = self._connections.get(
                    (first.dst_ip, first.dst_port, first.src_ip, first.src_port))
                if conn is not None:
                    start = conn.handle_burst(segs)
            if start < count:
                deliver = self._deliver_fast if stock else self.deliver
                for k in range(start, count):
                    deliver(segs[k])
        finally:
            if batching:
                self._tx_depth -= 1
                if self._tx_depth == 0 and self._tx_buffer:
                    self._flush_tx()

    def _deliver_fast(self, seg: Segment) -> None:
        """Fused ``deliver`` + ``_deliver_one`` for stock hosts.

        The network routes single-segment arrivals here when this host's
        delivery hooks are unoverridden (``_stock_delivery``), collapsing
        the dispatch chain to one call.  Semantics are identical to
        ``deliver``; hosts with overridden hooks always go through it.
        """
        batching = self.tx_batching
        if batching:
            self._tx_depth += 1
        try:
            cap = self.capture
            if cap.enabled:
                if cap.taps:
                    cap.record(seg, self.sim.now, sent=False)
                elif cap.buffering:
                    cap._raw.append((self.sim.now, False, seg))
            conn = self._connections.get(
                (seg.dst_ip, seg.dst_port, seg.src_ip, seg.src_port))
            if conn is not None:
                conn.handle_segment(seg)
            elif (seg.flags & _SYN_ACK_MASK == Flags.SYN
                  and seg.dst_port in self._listeners):
                self._accept(seg)
            elif not seg.flags & Flags.RST:
                self._refuse(seg)
        finally:
            if batching:
                self._tx_depth -= 1
                if self._tx_depth == 0 and self._tx_buffer:
                    self._flush_tx()

    def _deliver_one(self, seg: Segment) -> None:
        self.capture.record(seg, self.sim.now, sent=False)
        key = (seg.dst_ip, seg.dst_port, seg.src_ip, seg.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(seg)
            return
        if seg.is_syn and seg.dst_port in self._listeners:
            self._accept(seg)
            return
        # Closed port: a real stack answers a stray SYN (or data) with RST.
        if not seg.has(Flags.RST):
            self._refuse(seg)

    def _accept(self, syn: Segment) -> None:
        conn = TcpConnection(
            self, syn.dst_ip, syn.dst_port, syn.src_ip, syn.src_port
        )
        conn.state = TcpState.SYN_RCVD
        conn._rcv_nxt = (syn.seq + 1) & 0xFFFFFFFF
        conn._peer_window = syn.window
        if syn.tsval is not None:
            conn._last_tsval_seen = syn.tsval
        key = (syn.dst_ip, syn.dst_port, syn.src_ip, syn.src_port)
        self._connections[key] = conn
        # Wire the application before the handshake completes so callbacks
        # set by the factory see every event.
        self._listeners[syn.dst_port](conn)
        syn_ack_seq = conn._snd_nxt
        conn._emit(Flags.SYN | Flags.ACK, seq=syn_ack_seq)
        conn._queue_retx(Flags.SYN | Flags.ACK, b"", syn_ack_seq, 1)
        conn._snd_nxt += 1

    def _refuse(self, seg: Segment) -> None:
        rst = Segment(
            src_ip=seg.dst_ip,
            dst_ip=seg.src_ip,
            src_port=seg.dst_port,
            dst_port=seg.src_port,
            flags=Flags.RST | Flags.ACK,
            seq=0,
            ack=(seg.seq + len(seg.payload) + (1 if seg.is_syn else 0)) & 0xFFFFFFFF,
            ttl=self.default_ttl,
            ip_id=self.next_ip_id(),
        )
        self.transmit(rst)

    # ------------------------------------------------------------------ UDP

    def udp_bind(self, port: Optional[int] = None):
        """Bind a UDP port; returns a :class:`UdpEndpoint`."""
        from .datagram import UdpEndpoint

        if port is None:
            port = self.alloc_port()
            while port in self._udp_ports:
                port = self.alloc_port()
        if port in self._udp_ports:
            raise ValueError(f"UDP port {port} already bound on {self.name}")
        endpoint = UdpEndpoint(self, port)
        self._udp_ports[port] = endpoint
        return endpoint

    def udp_unbind(self, port: int) -> None:
        self._udp_ports.pop(port, None)

    def deliver_datagram(self, dgram) -> None:
        endpoint = self._udp_ports.get(dgram.dst_port)
        if endpoint is not None:
            endpoint.deliver(dgram)
        # Unbound port: silently dropped (no ICMP model).

    def forget(self, conn: TcpConnection) -> None:
        key = (conn.local_ip, conn.local_port, conn.remote_ip, conn.remote_port)
        self._connections.pop(key, None)

    @property
    def active_connections(self) -> int:
        return len(self._connections)
