"""Discrete-event network substrate: hosts, TCP, middleboxes, capture."""

from .asdb import AS_TABLE, ASDatabase, ASInfo, PAPER_AS_COUNTS, lookup_asn
from .capture import Capture, CaptureRecord
from .datagram import Datagram, UdpEndpoint
from .host import LINUX_EPHEMERAL_RANGE, Host
from .impairment import Impairment
from .ipaddr import in_cidr, int_to_ip, ip_to_int, parse_cidr, random_ip_in
from .network import Middlebox, Network
from .packet import Flags, Segment
from .pcapfile import export_capture, packet_to_segment, read_pcap, segment_to_packet, write_pcap
from .sim import Event, Simulator
from .tcp import TcpConnection, TcpState

__all__ = [
    "AS_TABLE",
    "ASDatabase",
    "ASInfo",
    "Capture",
    "CaptureRecord",
    "Datagram",
    "Event",
    "Flags",
    "Host",
    "Impairment",
    "LINUX_EPHEMERAL_RANGE",
    "Middlebox",
    "Network",
    "PAPER_AS_COUNTS",
    "Segment",
    "Simulator",
    "TcpConnection",
    "TcpState",
    "UdpEndpoint",
    "export_capture",
    "in_cidr",
    "int_to_ip",
    "ip_to_int",
    "lookup_asn",
    "packet_to_segment",
    "parse_cidr",
    "random_ip_in",
    "read_pcap",
    "segment_to_packet",
    "write_pcap",
]
