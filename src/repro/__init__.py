"""repro: reproduction of "How China Detects and Blocks Shadowsocks" (IMC 2020).

Subpackages:

* :mod:`repro.crypto` — pure-Python crypto substrate (AES/GCM, ChaCha20,
  Poly1305, HKDF, EVP_BytesToKey);
* :mod:`repro.net` — discrete-event network simulator with a simplified,
  byte-accurate TCP, middleboxes, and packet capture;
* :mod:`repro.shadowsocks` — the Shadowsocks protocol and per-version
  implementation behaviour models;
* :mod:`repro.gfw` — the Great Firewall model: passive detection, staged
  active probing, prober fleet, blocking;
* :mod:`repro.probesim` — the paper's prober simulator and the server
  identification attack;
* :mod:`repro.defense` — brdgrd and probing-resistance defenses;
* :mod:`repro.workloads` — traffic generators and measurement servers;
* :mod:`repro.analysis` — probe classification and fingerprinting;
* :mod:`repro.experiments` — turn-key harnesses for the paper's
  experiments.
"""

__version__ = "1.0.0"
