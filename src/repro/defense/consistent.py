"""Consistent-reaction hardening (§7.2, after Frolov et al.).

Censors fingerprint servers through *differential* reactions: RST vs
FIN/ACK vs timeout, and the thresholds at which they change.  The
defense is to make every error path look identical to the non-error
path: read forever, never reset, close only on the client's terms.

:func:`harden` rewrites any behaviour profile accordingly; the prober
simulator then shows a single TIMEOUT column for every probe length —
nothing left to distinguish.
"""

from __future__ import annotations

import dataclasses

from ..shadowsocks.implementations.base import BehaviorProfile, ErrorAction

__all__ = ["harden"]


def harden(profile: BehaviorProfile, *, add_replay_filter: bool = True) -> BehaviorProfile:
    """A copy of ``profile`` with every distinguishable reaction removed."""
    return dataclasses.replace(
        profile,
        name=profile.name + "-hardened",
        display=profile.display + " (hardened)",
        error_action=ErrorAction.TIMEOUT,
        finack_on_exact_header=False,
        rst_on_incomplete_spec=False,
        replay_filter=profile.replay_filter or add_replay_filter,
    )
