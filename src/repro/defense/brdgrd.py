"""brdgrd ("bridge guard") — the §7.1 traffic-shaping workaround.

Runs next to a protected server and rewrites the TCP window announced in
the server's SYN/ACK to a small value, forcing the client to fragment
its first write.  The GFW's passive classifier keys on the *first data
packet's* length (Figure 8), so a tiny first segment falls far outside
the 160–700-byte replay sweet spot and probing stops (Figure 11).

Limitations modeled, per the paper:

* the random window choice is itself a fingerprint
  (``fixed_window`` mitigates at the cost of another);
* the announced windows are unrealistically small for a real stack;
* implementations that demand a complete target spec in the first read
  (``rst_on_incomplete_spec`` profiles) RST the fragmented handshake,
  breaking the connection.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..net.network import Middlebox, Network
from ..net.packet import Flags, Segment

__all__ = ["Brdgrd"]


class Brdgrd(Middlebox):
    """Window-clamping middlebox guarding one server endpoint."""

    def __init__(
        self,
        server_ip: str,
        server_port: int,
        *,
        rng: Optional[random.Random] = None,
        window_low: int = 10,
        window_high: int = 40,
        fixed_window: Optional[int] = None,
        active: bool = True,
    ):
        if window_low < 1 or window_high < window_low:
            raise ValueError("bad window range")
        self.server_ip = server_ip
        self.server_port = server_port
        self.rng = rng or random.Random(0xB12D)
        self.window_low = window_low
        self.window_high = window_high
        self.fixed_window = fixed_window
        self.active = active
        self.rewritten = 0

    def enable(self) -> None:
        self.active = True

    def disable(self) -> None:
        self.active = False

    def _choose_window(self) -> int:
        if self.fixed_window is not None:
            return self.fixed_window
        return self.rng.randint(self.window_low, self.window_high)

    def process(self, seg: Segment, network: Network) -> List[Segment]:
        if not self.active:
            return [seg]
        if (
            seg.src_ip == self.server_ip
            and seg.src_port == self.server_port
            and seg.has(Flags.SYN)
            and seg.has(Flags.ACK)
        ):
            self.rewritten += 1
            return [seg.copy(window=self._choose_window())]
        return [seg]
