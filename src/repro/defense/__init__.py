"""Defenses: traffic shaping (brdgrd) and probing resistance."""

from ..shadowsocks.replay import NonceReplayFilter, TimedReplayFilter
from .brdgrd import Brdgrd
from .consistent import harden

__all__ = ["Brdgrd", "NonceReplayFilter", "TimedReplayFilter", "harden"]
