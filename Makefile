# Developer entry points.  Everything assumes an in-tree checkout; no
# install step is needed beyond the test extras (pytest, hypothesis,
# pytest-benchmark).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint typecheck bench bench-smoke bench-perf clean

test:                ## tier-1 suite (unit + integration + property)
	$(PYTHON) -m pytest tests/ -x -q

lint:                ## static checks (requires ruff)
	ruff check src tests benchmarks examples

typecheck:           ## mypy over the typed layers (requires mypy)
	mypy --ignore-missing-imports src/repro/analysis src/repro/runtime src/repro/gfw src/repro/service src/repro/protocols

bench:               ## every paper table/figure benchmark + ablations
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# One cached benchmark per layer: the runtime-backed ablation matrices
# (experiments -> GFW -> runtime cache), the impairment grid (fault
# paths + TCP retransmission), and one probesim figure.  Runs leave
# results + manifests under benchmarks/output/runs/.
bench-smoke:
	$(PYTHON) -m pytest \
	    benchmarks/ablations/test_defense_matrix.py \
	    benchmarks/ablations/test_detector_features.py \
	    benchmarks/ablations/test_impairment_matrix.py \
	    benchmarks/test_fig10b_aead_reactions.py \
	    --benchmark-only -q

# Perf regression gate: quick `repro bench` run compared against the
# committed baseline.  Tolerance is deliberately loose — hosts differ —
# so only order-of-magnitude regressions fail.
bench-perf:
	$(PYTHON) -m repro bench --quick --out-dir /tmp/bench-perf \
	    --compare benchmarks/baselines/bench_quick.json --tolerance 0.1

clean:
	rm -rf runs benchmarks/output .pytest_cache .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
