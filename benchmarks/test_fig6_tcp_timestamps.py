"""Figure 6: shared TCP timestamp sequences reveal centralized probers.

Paper shape: thousands of source IPs, but the TSvals of probe SYNs fall
on a handful of shared linear sequences — at least seven processes, with
slopes of almost exactly 250 Hz plus one small ~1009 Hz cluster, one
process accounting for the great majority of probes, and sequences that
wrap at 2^32.
"""

from repro.analysis import banner, cluster_tsval_sequences, render_table


def test_fig6_tcp_timestamps(benchmark, emit, ss_result):
    points = [(r.time_sent, r.tsval) for r in ss_result.probe_log]

    def build():
        return cluster_tsval_sequences(points)

    clusters = benchmark(build)
    big = [c for c in clusters if c.size >= 5]
    rows = [
        (i + 1, c.size, f"{c.rate_hz:g} Hz",
         f"{c.measured_rate():.1f} Hz" if c.measured_rate() else "-")
        for i, c in enumerate(big)
    ]
    unique_ips = len(set(ss_result.prober_ips))
    text = (
        banner("Figure 6: TSval processes behind the probes")
        + "\n" + render_table(
            ["cluster", "probes", "assigned rate", "measured slope"], rows)
        + f"\n\nunique source IPs: {unique_ips}; distinct TSval processes: "
          f"{len(big)} (paper: thousands of IPs, >=7 processes)"
    )
    emit("fig6_tcp_timestamps", text)

    # Far fewer processes than IPs: the centralization result.
    assert len(big) < unique_ips / 3
    assert 2 <= len(big) <= 8
    # The dominant process carries the majority of probes.
    assert big[0].size > len(points) * 0.5
    # Slopes are ~250 Hz, with the 1009 Hz cluster possible.
    for cluster in big:
        measured = cluster.measured_rate()
        assert measured is not None
        assert abs(measured - 250.0) < 5 or abs(measured - 1009.0) < 15
