"""Table 3: unique prober IP addresses per autonomous system.

Paper shape: AS4837 (China Unicom backbone) and AS4134 (Chinanet) carry
the overwhelming majority, with a long tail of smaller Chinese ASes.
"""

from collections import Counter

from repro.analysis import banner, render_table
from repro.net import PAPER_AS_COUNTS, lookup_asn


def test_table3_prober_ases(benchmark, emit, ss_result):
    def build():
        per_as = Counter()
        for ip in set(ss_result.prober_ips):
            asn = lookup_asn(ip)
            per_as[asn] += 1
        return per_as

    per_as = benchmark(build)
    assert None not in per_as, "prober IP outside the known AS pools"
    rows = [
        (f"AS{asn}", count, PAPER_AS_COUNTS.get(asn, "-"))
        for asn, count in per_as.most_common()
    ]
    text = (
        banner("Table 3: unique prober IPs per AS")
        + "\n" + render_table(["AS", "measured unique IPs", "paper"], rows)
    )
    emit("table3_prober_ases", text)

    ranked = [asn for asn, _ in per_as.most_common()]
    # The two backbone ASes lead, in the paper's order.
    assert ranked[0] == 4837
    assert ranked[1] == 4134
    total = sum(per_as.values())
    assert (per_as[4837] + per_as[4134]) / total > 0.85
