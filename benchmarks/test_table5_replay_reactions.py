"""Table 5: reactions to identical vs byte-changed replays.

Paper table:

| implementation           | mode   | identical | byte-changed |
| ss-libev v3.0.8-v3.2.5   | stream | R         | R/T/F        |
| ss-libev v3.0.8-v3.2.5   | AEAD   | R         | R            |
| ss-libev v3.3.1, v3.3.3  | stream | T         | T/F          |
| ss-libev v3.3.1, v3.3.3  | AEAD   | T         | T            |
| OutlineVPN               | AEAD   | D         | T            |
"""

from repro.analysis import banner, render_table
from repro.probesim import ReactionKind, build_replay_table

CASES = [
    ("ss-libev-3.1.3", "aes-256-ctr"),
    ("ss-libev-3.1.3", "aes-256-gcm"),
    ("ss-libev-3.3.1", "aes-256-ctr"),
    ("ss-libev-3.3.1", "aes-256-gcm"),
    ("outline-1.0.7", "chacha20-ietf-poly1305"),
]

PAPER = {
    ("ss-libev-3.1.3", "aes-256-ctr"): ("R", "R/T/F"),
    ("ss-libev-3.1.3", "aes-256-gcm"): ("R", "R"),
    ("ss-libev-3.3.1", "aes-256-ctr"): ("T", "T/F"),
    ("ss-libev-3.3.1", "aes-256-gcm"): ("T", "T"),
    ("outline-1.0.7", "chacha20-ietf-poly1305"): ("D", "T"),
}

_CODE = {ReactionKind.RST: "R", ReactionKind.TIMEOUT: "T",
         ReactionKind.FINACK: "F", ReactionKind.DATA: "D"}


def codes(counter):
    return "/".join(sorted({_CODE[r] for r in counter}))


def test_table5_replay_reactions(benchmark, emit):
    def build():
        return build_replay_table(CASES, trials=5, seed=41)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for (profile, method), reactions in table.items():
        paper_identical, paper_changed = PAPER[(profile, method)]
        rows.append((
            profile, method,
            codes(reactions["identical"]), paper_identical,
            codes(reactions["byte-changed"]), paper_changed,
        ))
    text = (
        banner("Table 5: reactions to identical vs byte-changed replays")
        + "\n" + render_table(
            ["profile", "method", "identical", "paper", "byte-changed", "paper"],
            rows)
        + "\n\nR: reset, T: timeout, F: FIN/ACK, D: data"
    )
    emit("table5_replay_reactions", text)

    for (profile, method), reactions in table.items():
        paper_identical, paper_changed = PAPER[(profile, method)]
        got_identical = set(codes(reactions["identical"]).split("/"))
        got_changed = set(codes(reactions["byte-changed"]).split("/"))
        assert got_identical == set(paper_identical.split("/")), (profile, method)
        # Byte-changed reactions must fall within the paper's set (the
        # R/T/F mixes are probabilistic; a small sample may not hit all).
        assert got_changed <= set(paper_changed.split("/")), (profile, method)
        assert got_changed & set(paper_changed.split("/"))
