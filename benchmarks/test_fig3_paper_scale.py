"""Figure 3 / Table 2 at the paper's full probe volume.

The network-level experiments run scaled down, but the fleet's identity
model can be exercised at the exact measured volume — 51,837 probes —
cheaply, with no packets.  At that scale the model must hit the paper's
absolute numbers: ~12,300 unique IPs, >75% reused, head around 30-45.
"""

import random

from repro.analysis import banner, render_table
from repro.gfw import ProberFleet
from repro.net import Host, Network, Simulator

PAPER_PROBES = 51_837
PAPER_UNIQUE = 12_300


def test_fig3_paper_scale(benchmark, emit):
    def build():
        sim = Simulator()
        net = Network(sim)
        host = Host(sim, net, "100.64.0.1", "fleet")
        fleet = ProberFleet(host, rng=random.Random(33))
        for _ in range(PAPER_PROBES):
            fleet.pick_ip()
        return fleet.use_counts

    counts = benchmark.pedantic(build, rounds=1, iterations=1)
    unique = len(counts)
    multi = sum(1 for c in counts.values() if c > 1)
    head = max(counts.values())
    rows = [
        ("probes", PAPER_PROBES, 51837),
        ("unique prober IPs", unique, 12300),
        ("share reused (>1 probe)", f"{multi / unique:.1%}", ">75%"),
        ("max probes from one IP", head, 44),
    ]
    text = (
        banner("Figure 3 at paper scale (fleet identity model only)")
        + "\n" + render_table(["metric", "measured", "paper"], rows)
    )
    emit("fig3_paper_scale", text)

    assert abs(unique - PAPER_UNIQUE) / PAPER_UNIQUE < 0.05
    assert multi / unique > 0.72
    assert 25 <= head <= 70
