"""Shared fixtures for the per-figure/table benchmarks.

Heavy experiments run once per session and are shared by every benchmark
that reads them (exactly as the paper's own §3.1 dataset feeds Figures
2-7 and Tables 2-3).  Every benchmark *prints* the rows/series its paper
counterpart shows and also writes them to ``benchmarks/output/<id>.txt``
so the run leaves an auditable record.
"""

import pathlib

import pytest

from repro.experiments import (
    BlockingExperimentConfig,
    BrdgrdExperimentConfig,
    ShadowsocksExperimentConfig,
    SinkExperimentConfig,
    run_blocking_experiment,
    run_brdgrd_experiment,
    run_shadowsocks_experiment,
    run_sink_experiment,
)

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def emit():
    """Print a benchmark's rendition and persist it under output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> str:
        print(text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _emit


@pytest.fixture(scope="session")
def ss_result():
    """The §3.1 Shadowsocks experiment at benchmark scale."""
    return run_shadowsocks_experiment(ShadowsocksExperimentConfig(
        connections_per_pair=700,
        duration=14 * 24 * 3600.0,
        seed=20,
    ))


@pytest.fixture(scope="session")
def sink_1a():
    """Exp 1.a: sink server, lengths 1-1000, entropy > 7."""
    return run_sink_experiment(
        SinkExperimentConfig.table4("1.a", connections=9000,
                                    duration=72 * 3600.0, seed=21)
    )


@pytest.fixture(scope="session")
def sink_2():
    """Exp 2: sink server, low entropy."""
    return run_sink_experiment(
        SinkExperimentConfig.table4("2", connections=4000,
                                    duration=48 * 3600.0, seed=22)
    )


@pytest.fixture(scope="session")
def sink_3():
    """Exp 3: sink server, lengths 1-2000, entropy 0-8."""
    return run_sink_experiment(
        SinkExperimentConfig.table4("3", connections=14000,
                                    duration=96 * 3600.0, seed=23)
    )


@pytest.fixture(scope="session")
def brdgrd_result():
    return run_brdgrd_experiment(BrdgrdExperimentConfig(seed=24))


@pytest.fixture(scope="session")
def blocking_result():
    return run_blocking_experiment(BlockingExperimentConfig(seed=25))
