"""Shared fixtures for the per-figure/table benchmarks.

Heavy experiments run once per session through the ``repro.runtime``
spine and are shared by every benchmark that reads them (exactly as the
paper's own §3.1 dataset feeds Figures 2-7 and Tables 2-3).  Each
fixture asks :func:`repro.runtime.run_artifact` for the live experiment
object, which also writes the structured result + manifest under
``benchmarks/output/runs/<scenario>/<key>/`` so every benchmark run
leaves an auditable, machine-readable record.

Every benchmark additionally *prints* the rows/series its paper
counterpart shows and writes them to ``benchmarks/output/<id>.txt``.
"""

import pathlib

import pytest

from repro.runtime import ResultCache, run_artifact

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def run_cache():
    """Result cache the benchmark session records its runs into."""
    return ResultCache(OUTPUT_DIR / "runs")


@pytest.fixture(scope="session")
def emit():
    """Print a benchmark's rendition and persist it under output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> str:
        print(text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _emit


@pytest.fixture(scope="session")
def ss_result(run_cache):
    """The §3.1 Shadowsocks experiment at benchmark scale."""
    _, artifact = run_artifact(
        "shadowsocks", seed=20,
        overrides={"connections_per_pair": 700,
                   "duration": 14 * 24 * 3600.0},
        cache=run_cache)
    return artifact


def _sink_artifact(run_cache, experiment, seed, connections, duration):
    from repro.experiments import TABLE4_EXPERIMENTS

    overrides = dict(TABLE4_EXPERIMENTS[experiment])
    overrides.pop("seed", None)
    overrides.update(connections=connections, duration=duration)
    _, artifact = run_artifact("sink", seed=seed, overrides=overrides,
                               cache=run_cache)
    return artifact


@pytest.fixture(scope="session")
def sink_1a(run_cache):
    """Exp 1.a: sink server, lengths 1-1000, entropy > 7."""
    return _sink_artifact(run_cache, "1.a", seed=21,
                          connections=9000, duration=72 * 3600.0)


@pytest.fixture(scope="session")
def sink_2(run_cache):
    """Exp 2: sink server, low entropy."""
    return _sink_artifact(run_cache, "2", seed=22,
                          connections=4000, duration=48 * 3600.0)


@pytest.fixture(scope="session")
def sink_3(run_cache):
    """Exp 3: sink server, lengths 1-2000, entropy 0-8."""
    return _sink_artifact(run_cache, "3", seed=23,
                          connections=14000, duration=96 * 3600.0)


@pytest.fixture(scope="session")
def brdgrd_result(run_cache):
    _, artifact = run_artifact("brdgrd", seed=24, cache=run_cache)
    return artifact


@pytest.fixture(scope="session")
def blocking_result(run_cache):
    _, artifact = run_artifact("blocking", seed=25, cache=run_cache)
    return artifact
