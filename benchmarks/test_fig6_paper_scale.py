"""Figure 6 at the paper's full probe volume (fleet model only).

51,837 probes spread over four simulated weeks, TSvals drawn from the
fleet's process model.  At this scale all seven processes — six at
250 Hz plus the small ~1009 Hz cluster — must be recoverable, with the
dominant process carrying the great majority.
"""

import random

from repro.analysis import banner, cluster_tsval_sequences, render_table
from repro.gfw import ProberFleet
from repro.net import Host, Network, Simulator

N_PROBES = 51_837
SPAN = 28 * 24 * 3600.0


def test_fig6_paper_scale(benchmark, emit):
    def build():
        sim = Simulator()
        net = Network(sim)
        host = Host(sim, net, "100.64.0.1", "fleet")
        fleet = ProberFleet(host, rng=random.Random(66))
        rng = random.Random(67)
        points = []
        for _ in range(N_PROBES):
            t = rng.uniform(0, SPAN)
            process = fleet.pick_process()
            points.append((t, process.tsval_at(t)))
        return cluster_tsval_sequences(points)

    clusters = benchmark.pedantic(build, rounds=1, iterations=1)
    big = [c for c in clusters if c.size >= 20]
    rows = [
        (i + 1, c.size, f"{c.measured_rate():.1f} Hz")
        for i, c in enumerate(big)
    ]
    text = (
        banner("Figure 6 at paper scale: recovered TSval processes")
        + "\n" + render_table(["process", "probes", "measured slope"], rows)
        + f"\n\n{N_PROBES} probes -> {len(big)} processes"
          " (paper: >=7, six at 250 Hz + one ~1009 Hz)"
    )
    emit("fig6_paper_scale", text)

    assert len(big) == 7
    rates = sorted(round(c.measured_rate()) for c in big)
    assert rates[:6] == [250] * 6
    assert abs(rates[6] - 1009) < 15
    # One process dominates (the fleet's 80% share).
    assert big[0].size > N_PROBES * 0.7
