"""Figure 10a: reactions of stream-cipher servers to random probes.

Paper shape, per (implementation generation, IV length) row:

* lengths 1..IV            -> TIMEOUT
* lengths IV+1..IV+6       -> RST (above 13/16) for v3.0.8-v3.2.5,
                              TIMEOUT for v3.3.1-v3.3.3
* lengths >= IV+7          -> RST ~13/16 with TIMEOUT/FIN-ACK below 3/16
                              (old) or TIMEOUT ~13/16 with FIN-ACK (new)
"""

from repro.analysis import banner, render_table
from repro.probesim import ReactionKind, build_random_probe_row, summarize_transitions

ROWS = [
    ("ss-libev-3.1.3", "chacha20", 8),        # 8-byte IV
    ("ss-libev-3.1.3", "chacha20-ietf", 12),  # 12-byte IV
    ("ss-libev-3.1.3", "aes-256-ctr", 16),    # 16-byte IV
    ("ss-libev-3.3.1", "chacha20", 8),
    ("ss-libev-3.3.1", "aes-256-ctr", 16),
]


def sweep_lengths(iv):
    return [1, iv - 1, iv, iv + 1, iv + 3, iv + 6, iv + 7, iv + 10, 33, 49, 221]


def test_fig10a_stream_reactions(benchmark, emit):
    def build():
        rows = []
        for profile, method, iv in ROWS:
            lengths = sorted(set(l for l in sweep_lengths(iv) if l >= 1))
            row = build_random_probe_row(profile, method, lengths, trials=10,
                                         seed=31)
            rows.append((profile, method, iv, row))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    render = []
    for profile, method, iv, row in rows:
        transitions = summarize_transitions(row)
        render.append((profile, method, iv,
                       "; ".join(f"{l}B:{lab}" for l, lab in transitions)))
    text = (
        banner("Figure 10a: stream-cipher server reactions (dominant, by length)")
        + "\n" + render_table(["profile", "method", "IV", "transitions"], render)
    )
    emit("fig10a_stream_reactions", text)

    for profile, method, iv, row in rows:
        old = profile < "ss-libev-3.3"
        # Through the IV: always TIMEOUT.
        assert row.cells[iv].dominant == ReactionKind.TIMEOUT
        # Just past the IV.
        just_past = row.cells[iv + 1]
        if old:
            assert just_past.fraction(ReactionKind.RST) > 0.6
        else:
            assert just_past.fraction(ReactionKind.RST) == 0.0
        # Far past the IV: FIN/ACK becomes possible, RST only for old.
        far = row.cells[221]
        if old:
            assert 0.6 < far.fraction(ReactionKind.RST) <= 1.0
        else:
            assert far.fraction(ReactionKind.RST) == 0.0
