"""Figure 10b: reactions of AEAD servers to random probes.

Paper shape, per row:

* Shadowsocks-libev v3.0.8-v3.2.5: TIMEOUT through salt+34, RST from
  salt+35 (salt 16 -> 51, salt 24 -> 59, salt 32 -> 67).
* Shadowsocks-libev v3.3.1-v3.3.3: TIMEOUT at every length.
* OutlineVPN v1.0.6 (salt 32): TIMEOUT below 50, FIN/ACK at exactly 50,
  RST above 50.
* OutlineVPN v1.0.7-v1.0.8: TIMEOUT at every length.
"""

from repro.analysis import banner, render_table
from repro.probesim import ReactionKind, build_random_probe_row, summarize_transitions

ROWS = [
    ("ss-libev-3.1.3", "aes-128-gcm", 16, 51),
    ("ss-libev-3.1.3", "aes-192-gcm", 24, 59),
    ("ss-libev-3.1.3", "aes-256-gcm", 32, 67),
    ("ss-libev-3.3.1", "aes-256-gcm", 32, None),
    ("outline-1.0.6", "chacha20-ietf-poly1305", 32, 51),
    ("outline-1.0.7", "chacha20-ietf-poly1305", 32, None),
]


def test_fig10b_aead_reactions(benchmark, emit):
    def build():
        rows = []
        for profile, method, salt, rst_at in ROWS:
            lengths = sorted({1, 49, 50, 51, salt + 34, salt + 35, 100, 221})
            row = build_random_probe_row(profile, method, lengths, trials=4,
                                         seed=37)
            rows.append((profile, method, salt, rst_at, row))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    render = []
    for profile, method, salt, rst_at, row in rows:
        transitions = summarize_transitions(row)
        render.append((profile, method, salt,
                       "; ".join(f"{l}B:{lab}" for l, lab in transitions)))
    text = (
        banner("Figure 10b: AEAD server reactions (dominant, by length)")
        + "\n" + render_table(["profile", "method", "salt", "transitions"], render)
    )
    emit("fig10b_aead_reactions", text)

    for profile, method, salt, rst_at, row in rows:
        if rst_at is None:
            for cell in row.cells.values():
                assert cell.dominant == ReactionKind.TIMEOUT, (profile, cell.length)
            continue
        if profile.startswith("outline"):
            assert row.cells[49].dominant == ReactionKind.TIMEOUT
            assert row.cells[50].fraction(ReactionKind.FINACK) == 1.0
            assert row.cells[51].fraction(ReactionKind.RST) == 1.0
        else:
            assert row.cells[rst_at - 1].dominant == ReactionKind.TIMEOUT
            assert row.cells[rst_at].fraction(ReactionKind.RST) == 1.0
        assert row.cells[221].fraction(ReactionKind.RST) == 1.0
